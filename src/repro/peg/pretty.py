"""Pretty-printer: render the IR back to ``.mg`` surface syntax.

The printer is the inverse of :mod:`repro.meta.parser` up to normalization:
``parse(print(g))`` composes to a grammar structurally equal to ``g`` (this
round-trip is exercised by the property tests).  It is also how grammar
statistics measure "lines of grammar" uniformly for composed grammars.
"""

from __future__ import annotations

from repro.peg.expr import (
    Action,
    AnyChar,
    Binding,
    CharClass,
    CharSwitch,
    Choice,
    Epsilon,
    Expression,
    Fail,
    Literal,
    Nonterminal,
    Not,
    Option,
    Regex,
    Repetition,
    Sequence,
    Text,
    Voided,
    And,
)
from repro.peg.grammar import Grammar
from repro.peg.production import Production, ValueKind

# Precedence levels, loosest to tightest.
_CHOICE, _SEQUENCE, _PREFIX, _SUFFIX, _PRIMARY = range(5)

_ESCAPES = {"\n": "\\n", "\r": "\\r", "\t": "\\t", "\f": "\\f", "\v": "\\v", "\\": "\\\\", '"': '\\"', "\0": "\\0"}
_CLASS_ESCAPES = {"\n": "\\n", "\r": "\\r", "\t": "\\t", "\f": "\\f", "\v": "\\v",
                  "\\": "\\\\", "-": "\\-", "]": "\\]", "^": "\\^", "\0": "\\0"}


def quote_literal(text: str) -> str:
    """Render ``text`` as a double-quoted ``.mg`` literal."""
    return '"' + "".join(_ESCAPES.get(ch, ch) for ch in text) + '"'


def format_char_class(expr: CharClass) -> str:
    parts: list[str] = []
    for lo, hi in expr.ranges:
        lo_s = _CLASS_ESCAPES.get(lo, lo)
        hi_s = _CLASS_ESCAPES.get(hi, hi)
        parts.append(lo_s if lo == hi else f"{lo_s}-{hi_s}")
    prefix = "^" if expr.negated else ""
    return f"[{prefix}{''.join(parts)}]"


def format_expression(expr: Expression, precedence: int = _CHOICE) -> str:
    """Render ``expr``; parenthesize when its own precedence is looser than
    the context's."""
    text, own = _format(expr)
    if own < precedence:
        return f"({text})"
    return text


def _format(expr: Expression) -> tuple[str, int]:
    if isinstance(expr, Literal):
        rendered = quote_literal(expr.text)
        if expr.ignore_case:
            rendered += "i"
        return rendered, _PRIMARY
    if isinstance(expr, CharClass):
        return format_char_class(expr), _PRIMARY
    if isinstance(expr, AnyChar):
        return "_", _PRIMARY
    if isinstance(expr, Nonterminal):
        return expr.name, _PRIMARY
    if isinstance(expr, Epsilon):
        return "/* empty */ \"\"?", _PRIMARY  # epsilon has no literal form; print as optional empty
    if isinstance(expr, Fail):
        return "![]" if not expr.message else f"![] /* {expr.message} */", _PRIMARY
    if isinstance(expr, Sequence):
        rendered = " ".join(format_expression(item, _PREFIX) for item in expr.items)
        return rendered, _SEQUENCE
    if isinstance(expr, Choice):
        rendered = " / ".join(format_expression(alt, _SEQUENCE) for alt in expr.alternatives)
        return rendered, _CHOICE
    if isinstance(expr, Repetition):
        suffix = "+" if expr.min == 1 else "*"
        return format_expression(expr.expr, _PRIMARY) + suffix, _SUFFIX
    if isinstance(expr, Option):
        return format_expression(expr.expr, _PRIMARY) + "?", _SUFFIX
    if isinstance(expr, And):
        return "&" + format_expression(expr.expr, _SUFFIX), _PREFIX
    if isinstance(expr, Not):
        return "!" + format_expression(expr.expr, _SUFFIX), _PREFIX
    if isinstance(expr, Binding):
        return f"{expr.name}:" + format_expression(expr.expr, _SUFFIX), _PREFIX
    if isinstance(expr, Voided):
        return "void:" + format_expression(expr.expr, _SUFFIX), _PREFIX
    if isinstance(expr, Text):
        return "text:" + format_expression(expr.expr, _SUFFIX), _PREFIX
    if isinstance(expr, Action):
        return "{ " + expr.code + " }", _PRIMARY
    if isinstance(expr, Regex):
        # Regex is internal; print the region it replaced (the pattern has
        # no .mg surface form, and the original is the equivalent grammar).
        return _format(expr.original)
    if isinstance(expr, CharSwitch):
        # CharSwitch is internal; print as the equivalent choice.
        alts = [format_expression(e, _SEQUENCE) for _, e in expr.cases]
        if not isinstance(expr.default, Fail):
            alts.append(format_expression(expr.default, _SEQUENCE))
        return " / ".join(alts), _CHOICE
    raise TypeError(f"cannot format {type(expr).__name__}")


_KIND_KEYWORD = {
    ValueKind.VOID: "void",
    ValueKind.TEXT: "String",
    ValueKind.GENERIC: "generic",
    ValueKind.OBJECT: "Object",
}

# Attribute order mirrors conventional .mg style.
_ATTRIBUTE_ORDER = ("public", "transient", "memo", "inline", "noinline", "nofuse", "withLocation")


def format_production(prod: Production) -> str:
    """Render one production as ``.mg`` text, one alternative per line."""
    attrs = [a for a in _ATTRIBUTE_ORDER if a in prod.attributes]
    header = " ".join(attrs + [_KIND_KEYWORD[prod.kind], prod.name, "="])
    lines = [header]
    for index, alt in enumerate(prod.alternatives):
        lead = "    " if index == 0 else "  / "
        label = f"<{alt.label}> " if alt.label else ""
        lines.append(f"{lead}{label}{format_expression(alt.expr, _SEQUENCE)}")
    lines.append("  ;")
    return "\n".join(lines)


def format_grammar(grammar: Grammar) -> str:
    """Render a whole (flat) grammar as a single pseudo-module."""
    lines = [f"module {grammar.name};", ""]
    for option in sorted(grammar.options):
        lines.append(f"option {option};")
    if grammar.options:
        lines.append("")
    for prod in grammar:
        lines.append(format_production(prod))
        lines.append("")
    return "\n".join(lines)
