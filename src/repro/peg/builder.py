"""Programmatic grammar construction.

The builder is the Pythonic front door for users who want to define grammars
in code rather than in ``.mg`` files:

.. code-block:: python

    from repro.peg.builder import GrammarBuilder, ref, lit, cc, star, alt

    b = GrammarBuilder("calc", start="Sum")
    b.generic("Sum",
              alt("Add", ref("Sum"), lit("+"), ref("Product")),
              alt("Base", ref("Product")))
    b.text("Number", [cc("0-9"), star(cc("0-9"))], transient=True)
    grammar = b.build()

Short combinator aliases (``ref``, ``lit``, ``cc``, ``star``, ``plus``,
``opt``, ``amp``, ``bang``, ``bind``, ``void``, ``text``, ``act``, ``any_``)
mirror the surface operators one for one.
"""

from __future__ import annotations

from typing import Iterable, Sequence as TypingSequence

from repro.errors import AnalysisError
from repro.peg.expr import (
    Action,
    AnyChar,
    And,
    Binding,
    CharClass,
    Epsilon,
    Expression,
    Literal,
    Nonterminal,
    Not,
    Option,
    Repetition,
    Text,
    Voided,
    char_class,
    choice,
    literal,
    seq,
)
from repro.peg.grammar import Grammar
from repro.peg.production import Alternative, Production, ValueKind


# -- combinators -------------------------------------------------------------

def ref(name: str) -> Nonterminal:
    """Reference the production called ``name``."""
    return Nonterminal(name)


def lit(text: str, ignore_case: bool = False) -> Expression:
    """Match literal ``text``."""
    return literal(text, ignore_case)


def cc(spec: str) -> CharClass:
    """Character class from a regex-like body, e.g. ``cc("a-zA-Z_")``."""
    return char_class(spec)


def any_() -> AnyChar:
    """Match any one character."""
    return AnyChar()


def star(*items: Expression) -> Repetition:
    """Zero-or-more repetition of the sequence ``items``."""
    return Repetition(seq(*items), 0)


def plus(*items: Expression) -> Repetition:
    """One-or-more repetition of the sequence ``items``."""
    return Repetition(seq(*items), 1)


def opt(*items: Expression) -> Option:
    """Optional sequence."""
    return Option(seq(*items))


def amp(*items: Expression) -> And:
    """Positive lookahead ``&e``."""
    return And(seq(*items))


def bang(*items: Expression) -> Not:
    """Negative lookahead ``!e``."""
    return Not(seq(*items))


def bind(name: str, *items: Expression) -> Binding:
    """Bind the sequence's value to ``name`` for use in actions."""
    return Binding(name, seq(*items))


def void(*items: Expression) -> Voided:
    """Match but discard the value."""
    return Voided(seq(*items))


def text(*items: Expression) -> Text:
    """Capture the exact matched text."""
    return Text(seq(*items))


def act(code: str) -> Action:
    """Semantic action: a Python expression over the alternative's bindings."""
    return Action(code)


def eps() -> Epsilon:
    """The empty match."""
    return Epsilon()


def alt(label: str | None, *items: Expression) -> Alternative:
    """A labeled alternative (pass ``None`` for no label)."""
    return Alternative(seq(*items), label)


AltSpec = Alternative | Expression | TypingSequence[Expression]


def _coerce_alternative(spec: AltSpec) -> Alternative:
    if isinstance(spec, Alternative):
        return spec
    if isinstance(spec, Expression):
        return Alternative(spec)
    return Alternative(seq(*spec))


# -- the builder --------------------------------------------------------------

_FLAG_NAMES = ("public", "transient", "memo", "inline", "noinline")


class GrammarBuilder:
    """Accumulate productions and build an immutable :class:`Grammar`."""

    def __init__(self, name: str, start: str, with_location: bool = False):
        self._name = name
        self._start = start
        self._with_location = with_location
        self._productions: list[Production] = []
        self._names: set[str] = set()

    def rule(
        self,
        name: str,
        *alternatives: AltSpec,
        kind: ValueKind = ValueKind.OBJECT,
        public: bool = False,
        transient: bool = False,
        memo: bool = False,
        inline: bool = False,
        noinline: bool = False,
        nofuse: bool = False,
    ) -> "GrammarBuilder":
        """Define a production; returns self for chaining."""
        if name in self._names:
            raise AnalysisError(f"production {name!r} already defined in builder")
        flags = {
            "public": public,
            "transient": transient,
            "memo": memo,
            "inline": inline,
            "noinline": noinline,
            "nofuse": nofuse,
        }
        attributes = frozenset(flag for flag, on in flags.items() if on)
        if self._with_location and kind is ValueKind.GENERIC:
            attributes |= {"withLocation"}
        production = Production(
            name=name,
            kind=kind,
            alternatives=tuple(_coerce_alternative(a) for a in alternatives),
            attributes=attributes,
        )
        self._names.add(name)
        self._productions.append(production)
        return self

    def generic(self, name: str, *alternatives: AltSpec, **flags) -> "GrammarBuilder":
        """Define a production whose value is an automatic ``GNode``."""
        return self.rule(name, *alternatives, kind=ValueKind.GENERIC, **flags)

    def text(self, name: str, *alternatives: AltSpec, **flags) -> "GrammarBuilder":
        """Define a production whose value is the matched text."""
        return self.rule(name, *alternatives, kind=ValueKind.TEXT, **flags)

    def void(self, name: str, *alternatives: AltSpec, **flags) -> "GrammarBuilder":
        """Define a valueless production (whitespace, punctuation, ...)."""
        return self.rule(name, *alternatives, kind=ValueKind.VOID, **flags)

    def object(self, name: str, *alternatives: AltSpec, **flags) -> "GrammarBuilder":
        """Define a production with action / pass-through value semantics."""
        return self.rule(name, *alternatives, kind=ValueKind.OBJECT, **flags)

    def build(self, validate: bool = True) -> Grammar:
        """Freeze into a :class:`Grammar`; checks for dangling references."""
        options = frozenset({"withLocation"} if self._with_location else set())
        grammar = Grammar(
            productions=tuple(self._productions),
            start=self._start,
            name=self._name,
            options=options,
        )
        if validate:
            grammar.validate()
        return grammar
