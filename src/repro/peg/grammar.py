"""Flat grammars: the unit consumed by analyses, optimizers and codegen.

A :class:`Grammar` is an ordered mapping from production names to
:class:`~repro.peg.production.Production` objects plus a designated start
production and grammar-wide options.  Grammars are produced either directly
through the builder API (:mod:`repro.peg.builder`) or by composing ``.mg``
modules (:mod:`repro.modules.compose`).

Grammars are *logically* immutable: mutating helpers return new grammars.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.errors import AnalysisError
from repro.peg.production import Production


@dataclass(frozen=True)
class Grammar:
    """An ordered collection of productions with a start symbol."""

    productions: tuple[Production, ...]
    start: str
    name: str = "grammar"
    options: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for prod in self.productions:
            if prod.name in seen:
                raise AnalysisError(f"duplicate production {prod.name!r} in grammar {self.name!r}")
            seen.add(prod.name)
        if self.start not in seen:
            raise AnalysisError(f"start production {self.start!r} not defined in grammar {self.name!r}")

    # -- mapping protocol ---------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return any(p.name == name for p in self.productions)

    def __getitem__(self, name: str) -> Production:
        for prod in self.productions:
            if prod.name == name:
                return prod
        raise KeyError(name)

    def __iter__(self) -> Iterator[Production]:
        return iter(self.productions)

    def __len__(self) -> int:
        return len(self.productions)

    def get(self, name: str) -> Production | None:
        for prod in self.productions:
            if prod.name == name:
                return prod
        return None

    def names(self) -> list[str]:
        return [p.name for p in self.productions]

    def as_dict(self) -> dict[str, Production]:
        return {p.name: p for p in self.productions}

    # -- functional updates --------------------------------------------------

    def replace_production(self, production: Production) -> "Grammar":
        """Return a grammar with the same-named production replaced."""
        if production.name not in self:
            raise KeyError(production.name)
        updated = tuple(production if p.name == production.name else p for p in self.productions)
        return replace(self, productions=updated)

    def replace_productions(self, productions: Iterable[Production]) -> "Grammar":
        """Replace several productions at once (all must already exist)."""
        by_name = {p.name: p for p in productions}
        missing = set(by_name) - set(self.names())
        if missing:
            raise KeyError(sorted(missing))
        updated = tuple(by_name.get(p.name, p) for p in self.productions)
        return replace(self, productions=updated)

    def add_production(self, production: Production) -> "Grammar":
        if production.name in self:
            raise AnalysisError(f"production {production.name!r} already defined")
        return replace(self, productions=self.productions + (production,))

    def remove_productions(self, names: Iterable[str]) -> "Grammar":
        drop = set(names)
        if self.start in drop:
            raise AnalysisError(f"cannot remove start production {self.start!r}")
        kept = tuple(p for p in self.productions if p.name not in drop)
        return replace(self, productions=kept)

    def with_start(self, start: str) -> "Grammar":
        return replace(self, start=start)

    # -- integrity -----------------------------------------------------------

    def undefined_references(self) -> dict[str, set[str]]:
        """Map each production name to the names it references but which are
        not defined — empty dict for a closed grammar."""
        defined = set(self.names())
        dangling: dict[str, set[str]] = {}
        for prod in self.productions:
            missing = prod.referenced_names() - defined
            if missing:
                dangling[prod.name] = missing
        return dangling

    def validate(self) -> None:
        """Raise :class:`AnalysisError` if any reference is dangling."""
        dangling = self.undefined_references()
        if dangling:
            details = "; ".join(
                f"{name} -> {', '.join(sorted(refs))}" for name, refs in sorted(dangling.items())
            )
            raise AnalysisError(f"grammar {self.name!r} has undefined references: {details}")
