"""Parsing-expression intermediate representation.

This module defines the expression forms of a parsing expression grammar
(PEG) as immutable dataclasses.  All analyses, optimizations, interpreters,
and the code generator operate on this IR; the surface ``.mg`` language is
translated into it by :mod:`repro.meta`.

Expression forms
----------------

===================  ===========================================================
``Literal``          match exact text (``"for"``)
``CharClass``        match one character from a set of ranges (``[a-zA-Z_]``)
``AnyChar``          match any single character (``_``)
``Nonterminal``      invoke another production by name
``Sequence``         match sub-expressions one after another
``Choice``           *ordered* choice: first matching alternative wins
``Repetition``       ``e*`` (``min=0``) or ``e+`` (``min=1``)
``Option``           ``e?``
``And``              ``&e``: succeed iff ``e`` matches, consume nothing
``Not``              ``!e``: succeed iff ``e`` fails, consume nothing
``Binding``          ``x:e``: bind the value of ``e`` to name ``x``
``Voided``           ``void:e``: match ``e`` but discard its value
``Text``             ``text:e`` capture the exact text matched by ``e``
``Action``           ``{ expr }``: compute the semantic value from bindings
``Epsilon``          match the empty string (always succeeds)
``Fail``             never match (used by analyses/optimizers)
``CharSwitch``       internal: first-character dispatch produced by the
                     terminal optimization; never written by users
``Regex``            internal: a fused scanner region produced by the fuse
                     optimization; one C-level ``re`` scan replacing a
                     value-free terminal subtree
===================  ===========================================================

The constructors :func:`seq` and :func:`choice` perform the obvious
flattening normalizations and should be preferred over instantiating
``Sequence``/``Choice`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


class Expression:
    """Abstract base class for parsing expressions.

    Expressions are immutable and hashable; structural equality is the
    dataclass-generated field equality.
    """

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Literal(Expression):
    """Match the exact text ``text`` (must be non-empty)."""

    text: str
    ignore_case: bool = False

    def __post_init__(self) -> None:
        if not self.text:
            raise ValueError("Literal text must be non-empty; use Epsilon() for the empty match")


@dataclass(frozen=True, slots=True)
class CharClass(Expression):
    """Match a single character belonging to ``ranges``.

    ``ranges`` is a sorted tuple of inclusive ``(lo, hi)`` single-character
    pairs.  A negated class matches any character *not* in the ranges (but
    still exactly one character, so it fails at end of input).
    """

    ranges: tuple[tuple[str, str], ...]
    negated: bool = False

    def __post_init__(self) -> None:
        for lo, hi in self.ranges:
            if len(lo) != 1 or len(hi) != 1:
                raise ValueError(f"range bounds must be single characters: {(lo, hi)!r}")
            if lo > hi:
                raise ValueError(f"empty character range: {(lo, hi)!r}")
        normalized = tuple(sorted(self.ranges))
        object.__setattr__(self, "ranges", normalized)

    def matches(self, ch: str) -> bool:
        """Decide membership of a single character."""
        inside = any(lo <= ch <= hi for lo, hi in self.ranges)
        return inside != self.negated

    def first_chars(self) -> frozenset[str] | None:
        """The exact set of characters matched, or None if impractically big."""
        if self.negated:
            return None
        total = sum(ord(hi) - ord(lo) + 1 for lo, hi in self.ranges)
        if total > 256:
            return None
        chars: set[str] = set()
        for lo, hi in self.ranges:
            chars.update(chr(c) for c in range(ord(lo), ord(hi) + 1))
        return frozenset(chars)


@dataclass(frozen=True, slots=True)
class AnyChar(Expression):
    """Match any single character; fails only at end of input."""


@dataclass(frozen=True, slots=True)
class Nonterminal(Expression):
    """Invoke the production called ``name``."""

    name: str


@dataclass(frozen=True, slots=True)
class Sequence(Expression):
    """Match each item in order; fail (rewinding) if any item fails."""

    items: tuple[Expression, ...]


@dataclass(frozen=True, slots=True)
class Choice(Expression):
    """Ordered choice: try alternatives left to right, commit to the first
    that matches."""

    alternatives: tuple[Expression, ...]


@dataclass(frozen=True, slots=True)
class Repetition(Expression):
    """Greedy repetition: ``min=0`` is ``e*``, ``min=1`` is ``e+``.

    The semantic value is the list of the item's values (``None`` values from
    void items are dropped).
    """

    expr: Expression
    min: int = 0

    def __post_init__(self) -> None:
        if self.min not in (0, 1):
            raise ValueError("Repetition.min must be 0 (star) or 1 (plus)")


@dataclass(frozen=True, slots=True)
class Option(Expression):
    """``e?``: match ``e`` if possible; value is the item's value or None."""

    expr: Expression


@dataclass(frozen=True, slots=True)
class And(Expression):
    """``&e``: positive syntactic predicate; consumes nothing, value None."""

    expr: Expression


@dataclass(frozen=True, slots=True)
class Not(Expression):
    """``!e``: negative syntactic predicate; consumes nothing, value None."""

    expr: Expression


@dataclass(frozen=True, slots=True)
class Binding(Expression):
    """``name:e``: match ``e`` and bind its value to ``name`` for actions."""

    name: str
    expr: Expression


@dataclass(frozen=True, slots=True)
class Voided(Expression):
    """``void:e``: match ``e`` but contribute no semantic value."""

    expr: Expression


@dataclass(frozen=True, slots=True)
class Text(Expression):
    """``text:e`` (the paper's *token* operator): value is the exact source
    text consumed by ``e``."""

    expr: Expression


@dataclass(frozen=True, slots=True)
class Action(Expression):
    """``{ code }``: evaluate a restricted Python expression over the
    alternative's bindings; its result becomes the alternative's value.

    Consumes no input and always succeeds.
    """

    code: str


@dataclass(frozen=True, slots=True)
class Epsilon(Expression):
    """Match the empty string; always succeeds with value None."""


@dataclass(frozen=True, slots=True)
class Fail(Expression):
    """Never match.  Useful as an identity for choice construction."""

    message: str = ""


@dataclass(frozen=True, slots=True)
class CharSwitch(Expression):
    """First-character dispatch (internal, built by the terminal optimizer).

    ``cases`` maps sets of possible first characters to the expression to try
    when the next input character is in that set; ``default`` (may be
    ``Fail()``) is tried when no case applies.  Cases preserve the original
    choice order within each character set, so a ``CharSwitch`` is
    observationally equivalent to the ``Choice`` it replaced.
    """

    cases: tuple[tuple[frozenset[str], Expression], ...]
    default: Expression = field(default_factory=Fail)


@dataclass(frozen=True, slots=True)
class Regex(Expression):
    """A fused scanner region (internal, built by the fuse optimization).

    ``pattern`` is an ``re``-syntax translation of ``original`` using atomic
    groups and possessive quantifiers (Python >= 3.11), compiled with
    ``re.DOTALL`` at backend-compile time so ``.`` matches newlines like
    ``AnyChar`` does.  The pattern is stored as a *string* so prepared
    grammars stay picklable for the on-disk compilation cache.

    ``original`` is the value-free expression the scan replaces, with every
    referenced production inlined (it contains no ``Nonterminal`` and no
    ``Regex``).  It is deliberately **not** part of :func:`children`: a
    ``Regex`` is a leaf to every traversal, so later passes neither rewrite
    nor double-count the absorbed region.  Backends keep it around to replay
    the region through the ordinary machinery when an error message is
    actually demanded — a single C scan cannot reproduce the expected-set
    bookkeeping, so failure (and non-silent success) positions are noted and
    re-evaluated lazily in ``parse_error()``.

    ``capture`` is True for ``text:``-captured regions: the semantic value is
    the matched span (otherwise None, and the node does not contribute).
    ``silent`` marks regions whose *successful* match provably records no
    expected-set entries (pure literal/class sequences), letting backends
    skip the replay note on the hot path.  ``label`` carries the enclosing
    production name for profiler attribution and is excluded from equality.
    """

    pattern: str
    original: Expression
    capture: bool = False
    silent: bool = False
    label: str = field(default="", compare=False)


# ---------------------------------------------------------------------------
# Normalizing constructors
# ---------------------------------------------------------------------------

def seq(*items: Expression) -> Expression:
    """Build a sequence, flattening nested sequences and dropping Epsilon.

    Returns ``Epsilon()`` for zero items and the item itself for one item.
    """
    flat: list[Expression] = []
    for item in items:
        if isinstance(item, Sequence):
            flat.extend(item.items)
        elif isinstance(item, Epsilon):
            continue
        else:
            flat.append(item)
    if not flat:
        return Epsilon()
    if len(flat) == 1:
        return flat[0]
    return Sequence(tuple(flat))


def choice(*alternatives: Expression) -> Expression:
    """Build an ordered choice, flattening nested choices and dropping Fail.

    Returns ``Fail()`` for zero alternatives and the alternative itself for
    one.  Alternatives *after* an ``Epsilon`` are unreachable and dropped.
    """
    flat: list[Expression] = []
    for alt in alternatives:
        if isinstance(alt, Choice):
            flat.extend(alt.alternatives)
        elif isinstance(alt, Fail):
            continue
        else:
            flat.append(alt)
    pruned: list[Expression] = []
    for alt in flat:
        pruned.append(alt)
        if isinstance(alt, Epsilon):
            break  # everything after an empty match is dead
    if not pruned:
        return Fail()
    if len(pruned) == 1:
        return pruned[0]
    return Choice(tuple(pruned))


def literal(text: str, ignore_case: bool = False) -> Expression:
    """Literal constructor that maps the empty string to Epsilon."""
    if text == "":
        return Epsilon()
    return Literal(text, ignore_case)


def char_class(spec: str) -> CharClass:
    """Build a character class from a regex-like body, e.g. ``"a-zA-Z_"``.

    A leading ``^`` negates.  ``\\`` escapes the next character (supporting
    ``\\n \\r \\t \\\\ \\- \\] \\^`` and ``\\uXXXX``, matching the escapes
    of string literals — layout grammars use ``\\uXXXX`` to name control
    characters such as INDENT/DEDENT sentinels).
    """
    negated = spec.startswith("^")
    if negated:
        spec = spec[1:]
    chars: list[str] = []
    i = 0
    escapes = {"n": "\n", "r": "\r", "t": "\t", "f": "\f", "v": "\v", "0": "\0"}
    while i < len(spec):
        ch = spec[i]
        if ch == "\\":
            if i + 1 >= len(spec):
                raise ValueError("dangling backslash in character class")
            nxt = spec[i + 1]
            if nxt == "u":
                if i + 6 > len(spec):
                    raise ValueError("truncated \\u escape in character class")
                chars.append(chr(int(spec[i + 2 : i + 6], 16)))
                i += 6
                continue
            chars.append(escapes.get(nxt, nxt))
            i += 2
        else:
            chars.append(ch)
            i += 1
    ranges: list[tuple[str, str]] = []
    i = 0
    while i < len(chars):
        if i + 2 < len(chars) and chars[i + 1] == "-":
            ranges.append((chars[i], chars[i + 2]))
            i += 3
        else:
            ranges.append((chars[i], chars[i]))
            i += 1
    return CharClass(tuple(ranges), negated)


# ---------------------------------------------------------------------------
# Generic traversal
# ---------------------------------------------------------------------------

def children(expr: Expression) -> tuple[Expression, ...]:
    """The direct sub-expressions of ``expr`` in source order."""
    if isinstance(expr, Sequence):
        return expr.items
    if isinstance(expr, Choice):
        return expr.alternatives
    if isinstance(expr, (Repetition, Option, And, Not, Voided, Text)):
        return (expr.expr,)
    if isinstance(expr, Binding):
        return (expr.expr,)
    if isinstance(expr, CharSwitch):
        return tuple(e for _, e in expr.cases) + (expr.default,)
    return ()


def rebuild(expr: Expression, new_children: tuple[Expression, ...]) -> Expression:
    """Reconstruct ``expr`` with ``new_children`` replacing its children.

    ``new_children`` must have the same length as ``children(expr)``.
    Leaf expressions are returned unchanged (and require zero children).
    """
    old = children(expr)
    if len(old) != len(new_children):
        raise ValueError(f"child count mismatch for {type(expr).__name__}: {len(old)} != {len(new_children)}")
    if not old:
        return expr
    if isinstance(expr, Sequence):
        return seq(*new_children)
    if isinstance(expr, Choice):
        return choice(*new_children)
    if isinstance(expr, Repetition):
        return Repetition(new_children[0], expr.min)
    if isinstance(expr, Option):
        return Option(new_children[0])
    if isinstance(expr, And):
        return And(new_children[0])
    if isinstance(expr, Not):
        return Not(new_children[0])
    if isinstance(expr, Binding):
        return Binding(expr.name, new_children[0])
    if isinstance(expr, Voided):
        return Voided(new_children[0])
    if isinstance(expr, Text):
        return Text(new_children[0])
    if isinstance(expr, CharSwitch):
        *case_exprs, default = new_children
        cases = tuple((chars, e) for (chars, _), e in zip(expr.cases, case_exprs))
        return CharSwitch(cases, default)
    raise TypeError(f"cannot rebuild {type(expr).__name__}")


def walk(expr: Expression) -> Iterator[Expression]:
    """Yield ``expr`` and every descendant, pre-order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(children(node)))


def transform(expr: Expression, fn) -> Expression:
    """Bottom-up rewrite: apply ``fn`` to every node after its children."""
    kids = children(expr)
    if kids:
        new_kids = tuple(transform(k, fn) for k in kids)
        if new_kids != kids:
            expr = rebuild(expr, new_kids)
    return fn(expr)


def referenced_names(expr: Expression) -> set[str]:
    """All nonterminal names referenced anywhere inside ``expr``."""
    return {node.name for node in walk(expr) if isinstance(node, Nonterminal)}
