"""Grammar lint: style and hazard checks beyond well-formedness.

The well-formedness checker (:mod:`repro.analysis.wellformed`) rejects
grammars that cannot work; the linter flags grammars that *work but bite*:

``unused-binding``
    a ``x:e`` binding never used by any action in its alternative.
``unknown-action-name``
    an action references a name that is neither a binding in scope nor an
    action-library helper — it would raise at parse time.
``binding-yields-none``
    binding a repetition/option of a *non-contributing* expression (for
    example ``x:";"*``): its value is always ``None`` by the value model;
    the author almost certainly wanted ``text:``.
``shadowed-literal``
    in an ordered choice, an earlier literal is a strict prefix of a later
    one (``"do" / "double"``): the later alternative can never match.
``nested-option``
    ``e??`` or an option of a nullable expression — the outer ``?`` can
    never observe absence.

(Voiding a constant, ``void:"x"``, is deliberately *not* flagged: literals
contribute nothing anyway, and the shipped grammars use the redundant
``void:`` to document operator tokens.)
"""

from __future__ import annotations

import ast as python_ast
from dataclasses import dataclass

from repro.analysis.nullability import expr_nullable, nullable_productions
from repro.peg.expr import (
    Action,
    AnyChar,
    Binding,
    CharClass,
    Choice,
    Expression,
    Literal,
    Option,
    Repetition,
    Voided,
    walk,
)
from repro.peg.grammar import Grammar
from repro.peg.values import binding_names, contributes, kind_lookup
from repro.runtime.actionlib import ACTION_GLOBALS


@dataclass(frozen=True, slots=True)
class LintFinding:
    rule: str
    production: str
    message: str

    def __str__(self) -> str:
        return f"{self.production}: [{self.rule}] {self.message}"


def _action_names(code: str) -> set[str] | None:
    """Free identifiers in an action expression, or None if unparsable."""
    try:
        tree = python_ast.parse(code, mode="eval")
    except SyntaxError:
        return None
    return {
        node.id for node in python_ast.walk(tree) if isinstance(node, python_ast.Name)
    }


def lint(grammar: Grammar) -> list[LintFinding]:
    """Run all lint rules; findings are ordered by production."""
    findings: list[LintFinding] = []
    kind_of = kind_lookup(grammar)
    nullable = nullable_productions(grammar)

    for production in grammar:
        for alternative in production.alternatives:
            expr = alternative.expr
            bound = set(binding_names(expr))
            used: set[str] = set()
            actions = [node for node in walk(expr) if isinstance(node, Action)]
            for action in actions:
                names = _action_names(action.code)
                if names is None:
                    findings.append(
                        LintFinding(
                            "unknown-action-name",
                            production.name,
                            f"action {{ {action.code} }} is not a valid Python expression",
                        )
                    )
                    continue
                used |= names
                unknown = names - bound - set(ACTION_GLOBALS)
                for name in sorted(unknown):
                    findings.append(
                        LintFinding(
                            "unknown-action-name",
                            production.name,
                            f"action references {name!r}, which is neither a binding "
                            "nor an action helper",
                        )
                    )
            for name in sorted(bound - used):
                findings.append(
                    LintFinding(
                        "unused-binding",
                        production.name,
                        f"binding {name!r} is never used by an action",
                    )
                )
            findings.extend(_expression_lints(production.name, expr, kind_of, nullable))
    findings.sort(key=lambda f: (f.production, f.rule, f.message))
    return findings


def lint_useless_nofuse(grammar: Grammar) -> list[LintFinding]:
    """Flag ``nofuse`` attributes that change nothing.

    A ``nofuse`` annotation is useful only if the production (or a region
    it participates in) would otherwise be fused by the scanner-fusion
    pass.  On interpreters that cannot fuse at all the check is skipped
    rather than flagging every annotation.
    """
    # Imported lazily: the optimizer depends on the analysis package, so a
    # module-level import here would be circular.
    from repro.analysis.fusable import fusion_supported
    from repro.optim.fuse import useless_nofuse

    if not fusion_supported():
        return []
    return [
        LintFinding(
            "useless-nofuse",
            name,
            "nofuse has no effect: the production would not be fused anyway",
        )
        for name in useless_nofuse(grammar)
    ]


def _expression_lints(owner: str, expr: Expression, kind_of, nullable) -> list[LintFinding]:
    findings: list[LintFinding] = []
    for node in walk(expr):
        if isinstance(node, Binding) and isinstance(node.expr, (Repetition, Option)):
            if not contributes(node.expr.expr, kind_of):
                findings.append(
                    LintFinding(
                        "binding-yields-none",
                        owner,
                        f"binding {node.name!r} wraps a repetition/option of a "
                        "non-contributing expression; its value is always None "
                        "(capture with text: instead)",
                    )
                )
        if isinstance(node, Choice):
            findings.extend(_shadowed_literals(owner, node.alternatives))
        if isinstance(node, Option) and expr_nullable(node.expr, nullable):
            findings.append(
                LintFinding(
                    "nested-option",
                    owner,
                    "option of a nullable expression: absence is unobservable",
                )
            )
    return findings


def _shadowed_literals(owner: str, alternatives) -> list[LintFinding]:
    findings = []
    literals = [
        (index, alt.text)
        for index, alt in enumerate(alternatives)
        if isinstance(alt, Literal) and not alt.ignore_case
    ]
    for position, (index_a, text_a) in enumerate(literals):
        for index_b, text_b in literals[position + 1 :]:
            if text_b.startswith(text_a) and text_b != text_a:
                findings.append(
                    LintFinding(
                        "shadowed-literal",
                        owner,
                        f'"{text_a}" (alternative {index_a + 1}) shadows the later '
                        f'"{text_b}" (alternative {index_b + 1}); put the longer '
                        "literal first",
                    )
                )
    return findings


def lint_alternatives_of_production(grammar: Grammar) -> list[LintFinding]:
    """Shadowed-literal analysis across a production's *top-level*
    alternatives (each alternative being a bare literal)."""
    findings = []
    for production in grammar:
        exprs = [a.expr for a in production.alternatives]
        findings.extend(_shadowed_literals(production.name, exprs))
    return findings
