"""Grammar and module statistics (experiment E1, "Table 1").

Measures, per module and per composed grammar: production counts by value
kind, alternative counts, expression node counts, and non-blank non-comment
lines of grammar source.  These are the modularity figures the paper reports
for its C and Java grammars.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.meta.ast import ModuleAst
from repro.peg.expr import walk
from repro.peg.grammar import Grammar
from repro.peg.production import ValueKind


def grammar_loc(source_text: str) -> int:
    """Non-blank, non-comment lines of ``.mg`` source."""
    count = 0
    in_block = False
    for raw in source_text.splitlines():
        line = raw.strip()
        if in_block:
            if "*/" in line:
                in_block = False
                line = line.split("*/", 1)[1].strip()
            else:
                continue
        if line.startswith("/*"):
            if "*/" not in line:
                in_block = True
                continue
            line = line.split("*/", 1)[1].strip()
        if line.startswith("//") or not line:
            continue
        count += 1
    return count


@dataclass(frozen=True, slots=True)
class ModuleStats:
    name: str
    parameters: int
    imports: int
    modifies: int
    productions: int
    modifications: int
    alternatives: int
    loc: int


def module_stats(module: ModuleAst) -> ModuleStats:
    alternatives = sum(len(p.alternatives) for p in module.productions)
    return ModuleStats(
        name=module.name,
        parameters=len(module.parameters),
        imports=sum(1 for d in module.dependencies if d.kind in ("import", "instantiate")),
        modifies=sum(1 for d in module.dependencies if d.kind == "modify"),
        productions=len(module.productions),
        modifications=len(module.modifications),
        alternatives=alternatives,
        loc=grammar_loc(module.source_text),
    )


@dataclass(frozen=True, slots=True)
class GrammarStats:
    name: str
    productions: int
    by_kind: dict[str, int]
    alternatives: int
    expression_nodes: int
    transient: int
    public: int

    def row(self) -> dict[str, object]:
        return {
            "grammar": self.name,
            "productions": self.productions,
            "generic": self.by_kind.get("generic", 0),
            "text": self.by_kind.get("text", 0),
            "void": self.by_kind.get("void", 0),
            "object": self.by_kind.get("object", 0),
            "alternatives": self.alternatives,
            "nodes": self.expression_nodes,
            "transient": self.transient,
            "public": self.public,
        }


def grammar_stats(grammar: Grammar) -> GrammarStats:
    by_kind: dict[str, int] = {kind.value: 0 for kind in ValueKind}
    alternatives = 0
    nodes = 0
    transient = 0
    public = 0
    for production in grammar:
        by_kind[production.kind.value] += 1
        alternatives += len(production.alternatives)
        for alternative in production.alternatives:
            nodes += sum(1 for _ in walk(alternative.expr))
        if production.is_transient:
            transient += 1
        if production.is_public:
            public += 1
    return GrammarStats(
        name=grammar.name,
        productions=len(grammar),
        by_kind=by_kind,
        alternatives=alternatives,
        expression_nodes=nodes,
        transient=transient,
        public=public,
    )
