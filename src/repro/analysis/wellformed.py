"""Well-formedness checking.

Combines Ford's static WF conditions with the library's own structural
rules.  ``check`` returns a list of :class:`Diagnostic` (empty = clean);
``require_wellformed`` raises on any error-severity finding.

Checks performed:

- dangling nonterminal references (error)
- indirect left recursion (error — the system only transforms direct)
- direct left recursion in non-generic productions (error — the value
  fix-up of the transformation is defined for generic productions only)
- direct left recursion whose recursive alternatives precede no base
  alternative (error — nothing to seed the iteration)
- repetition over a nullable expression (error: loops forever in a naive
  parser; detected statically as in Ford's WF system)
- productions with no alternatives (error)
- unreachable productions (warning)
- alternatives shadowed by an earlier ``Epsilon``-only alternative (warning)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.leftrec import (
    directly_left_recursive,
    indirect_left_recursion_cycles,
    left_recursive_alternatives,
)
from repro.analysis.nullability import expr_nullable, nullable_productions
from repro.analysis.reachability import unreachable
from repro.errors import AnalysisError
from repro.peg.expr import Epsilon, Expression, Repetition, walk
from repro.peg.grammar import Grammar
from repro.peg.production import ValueKind


@dataclass(frozen=True, slots=True)
class Diagnostic:
    severity: str  # "error" | "warning"
    production: str
    message: str

    def __str__(self) -> str:
        return f"{self.severity}: {self.production}: {self.message}"


def check(grammar: Grammar) -> list[Diagnostic]:
    """Run all checks; returns diagnostics sorted errors-first."""
    diagnostics: list[Diagnostic] = []
    nullable = nullable_productions(grammar)

    for name, refs in sorted(grammar.undefined_references().items()):
        diagnostics.append(
            Diagnostic("error", name, f"references undefined production(s): {', '.join(sorted(refs))}")
        )

    for cycle in indirect_left_recursion_cycles(grammar):
        diagnostics.append(
            Diagnostic(
                "error",
                cycle[0],
                "indirect left recursion through " + " -> ".join(cycle) + " (only direct left recursion is supported)",
            )
        )

    direct = directly_left_recursive(grammar)
    for name in sorted(direct):
        production = grammar[name]
        if production.kind is not ValueKind.GENERIC:
            diagnostics.append(
                Diagnostic(
                    "error",
                    name,
                    f"direct left recursion in a {production.kind.value} production "
                    "(the transformation is defined for generic productions)",
                )
            )
            continue
        recursive = left_recursive_alternatives(name, production.alternatives, nullable)
        if len(recursive) == len(production.alternatives):
            diagnostics.append(
                Diagnostic("error", name, "left recursion without any base alternative")
            )

    for production in grammar:
        if not production.alternatives:
            diagnostics.append(Diagnostic("error", production.name, "no alternatives"))
        for alternative in production.alternatives:
            for node in walk(alternative.expr):
                if isinstance(node, Repetition) and expr_nullable(node.expr, nullable):
                    diagnostics.append(
                        Diagnostic(
                            "error",
                            production.name,
                            "repetition over a nullable expression (would never terminate)",
                        )
                    )
        epsilon_seen = False
        for index, alternative in enumerate(production.alternatives):
            if epsilon_seen:
                diagnostics.append(
                    Diagnostic(
                        "warning",
                        production.name,
                        f"alternative {index + 1} is unreachable (an earlier alternative always matches)",
                    )
                )
                break
            if isinstance(alternative.expr, Epsilon):
                epsilon_seen = True

    for name in sorted(unreachable(grammar)):
        diagnostics.append(Diagnostic("warning", name, "unreachable from the start production"))

    diagnostics.sort(key=lambda d: (d.severity != "error", d.production))
    return diagnostics


def require_wellformed(grammar: Grammar) -> list[Diagnostic]:
    """Raise :class:`AnalysisError` on errors; returns remaining warnings."""
    diagnostics = check(grammar)
    errors = [d for d in diagnostics if d.severity == "error"]
    if errors:
        raise AnalysisError(
            f"grammar {grammar.name!r} is ill-formed:\n" + "\n".join(f"  {d}" for d in errors)
        )
    return [d for d in diagnostics if d.severity == "warning"]
