"""FIRST-character analysis for terminal/choice dispatch.

``first_chars`` computes, for an expression, the set of characters that any
successful non-empty match can start with — or ``None`` when the set is
unknown/unbounded (negated classes, ``AnyChar``).  The result additionally
says whether the expression is nullable, because a nullable alternative can
succeed on *any* next character and therefore defeats dispatch.

Used by the terminal optimization (:mod:`repro.optim.terminals`) and by the
code generator's top-level alternative guards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.nullability import nullable_productions
from repro.peg.expr import (
    Action,
    And,
    AnyChar,
    Binding,
    CharClass,
    CharSwitch,
    Choice,
    Epsilon,
    Expression,
    Fail,
    Literal,
    Nonterminal,
    Not,
    Option,
    Repetition,
    Sequence,
    Text,
    Voided,
)
from repro.peg.grammar import Grammar


@dataclass(frozen=True, slots=True)
class FirstSet:
    """``chars`` is None when unknown/unbounded."""

    chars: frozenset[str] | None
    nullable: bool

    @property
    def known(self) -> bool:
        return self.chars is not None and not self.nullable


_UNKNOWN = FirstSet(None, False)


class FirstAnalysis:
    """Compute FIRST sets over one grammar (fixpoint over productions)."""

    def __init__(self, grammar: Grammar):
        self._grammar = grammar
        self._nullable = nullable_productions(grammar)
        self._production_first: dict[str, FirstSet] = {}
        self._compute_productions()

    def _compute_productions(self) -> None:
        # Initialize to empty known sets and iterate to fixpoint.
        names = self._grammar.names()
        for name in names:
            self._production_first[name] = FirstSet(frozenset(), name in self._nullable)
        changed = True
        while changed:
            changed = False
            for production in self._grammar:
                combined: set[str] | None = set()
                for alternative in production.alternatives:
                    fs = self.first(alternative.expr)
                    if fs.chars is None:
                        combined = None
                        break
                    combined |= fs.chars
                new = FirstSet(
                    None if combined is None else frozenset(combined),
                    production.name in self._nullable,
                )
                if new != self._production_first[production.name]:
                    self._production_first[production.name] = new
                    changed = True

    # -- queries ------------------------------------------------------------

    def production_first(self, name: str) -> FirstSet:
        return self._production_first.get(name, _UNKNOWN)

    def first(self, expr: Expression) -> FirstSet:
        """FIRST set of an expression in this grammar."""
        if isinstance(expr, Literal):
            ch = expr.text[0]
            chars = {ch.lower(), ch.upper()} if expr.ignore_case else {ch}
            return FirstSet(frozenset(chars), False)
        if isinstance(expr, CharClass):
            return FirstSet(expr.first_chars(), False)
        if isinstance(expr, AnyChar):
            return FirstSet(None, False)
        if isinstance(expr, (Epsilon, Action)):
            return FirstSet(frozenset(), True)
        if isinstance(expr, Fail):
            return FirstSet(frozenset(), False)
        if isinstance(expr, Nonterminal):
            return self.production_first(expr.name)
        if isinstance(expr, Sequence):
            chars: set[str] = set()
            for item in expr.items:
                fs = self.first(item)
                if isinstance(item, (And, Not)):
                    # Predicates constrain but don't consume; a following
                    # item provides the actual first character.  Treating
                    # them as transparent keeps the set an over-approximation
                    # only when the predicate is positive; a Not prefix means
                    # we cannot narrow reliably, so give up on Not.
                    if isinstance(item, Not):
                        continue
                    if fs.chars is None:
                        return _UNKNOWN
                    continue
                if fs.chars is None:
                    return _UNKNOWN
                chars |= fs.chars
                if not fs.nullable:
                    return FirstSet(frozenset(chars), False)
            return FirstSet(frozenset(chars), True)
        if isinstance(expr, Choice):
            chars = set()
            nullable = False
            for alternative in expr.alternatives:
                fs = self.first(alternative)
                if fs.chars is None:
                    return FirstSet(None, fs.nullable or nullable)
                chars |= fs.chars
                nullable = nullable or fs.nullable
            return FirstSet(frozenset(chars), nullable)
        if isinstance(expr, Repetition):
            fs = self.first(expr.expr)
            return FirstSet(fs.chars, expr.min == 0 or fs.nullable)
        if isinstance(expr, Option):
            fs = self.first(expr.expr)
            return FirstSet(fs.chars, True)
        if isinstance(expr, (Binding, Voided, Text)):
            return self.first(expr.expr)
        if isinstance(expr, And):
            return FirstSet(None, True)
        if isinstance(expr, Not):
            return FirstSet(None, True)
        if isinstance(expr, CharSwitch):
            chars = set()
            nullable = False
            for case_chars, _ in expr.cases:
                chars |= case_chars
            fs = self.first(expr.default)
            if fs.chars is None:
                return FirstSet(None, fs.nullable)
            return FirstSet(frozenset(chars | fs.chars), fs.nullable)
        raise TypeError(f"first: unhandled {type(expr).__name__}")
