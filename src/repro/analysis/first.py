"""FIRST-character analysis for terminal/choice dispatch.

``first_chars`` computes, for an expression, the set of characters that any
successful non-empty match can start with — or ``None`` when the set is
unknown/unbounded (negated classes, ``AnyChar``).  The result additionally
says whether the expression is nullable, because a nullable alternative can
succeed on *any* next character and therefore defeats dispatch.

Used by the terminal optimization (:mod:`repro.optim.terminals`) and by the
code generator's top-level alternative guards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.nullability import nullable_productions
from repro.peg.expr import (
    Action,
    And,
    AnyChar,
    Binding,
    CharClass,
    CharSwitch,
    Choice,
    Epsilon,
    Expression,
    Fail,
    Literal,
    Nonterminal,
    Not,
    Option,
    Regex,
    Repetition,
    Sequence,
    Text,
    Voided,
)
from repro.peg.grammar import Grammar


@dataclass(frozen=True, slots=True)
class FirstSet:
    """``chars`` is None when unknown/unbounded."""

    chars: frozenset[str] | None
    nullable: bool

    @property
    def known(self) -> bool:
        return self.chars is not None and not self.nullable


_UNKNOWN = FirstSet(None, False)


class FirstAnalysis:
    """Compute FIRST sets over one grammar (fixpoint over productions)."""

    def __init__(self, grammar: Grammar):
        self._grammar = grammar
        self._nullable = nullable_productions(grammar)
        self._production_first: dict[str, FirstSet] = {}
        self._safe_productions: dict[str, bool] | None = None
        self._compute_productions()

    def _compute_productions(self) -> None:
        # Initialize to empty known sets and iterate to fixpoint.
        names = self._grammar.names()
        for name in names:
            self._production_first[name] = FirstSet(frozenset(), name in self._nullable)
        changed = True
        while changed:
            changed = False
            for production in self._grammar:
                combined: set[str] | None = set()
                for alternative in production.alternatives:
                    fs = self.first(alternative.expr)
                    if fs.chars is None:
                        combined = None
                        break
                    combined |= fs.chars
                new = FirstSet(
                    None if combined is None else frozenset(combined),
                    production.name in self._nullable,
                )
                if new != self._production_first[production.name]:
                    self._production_first[production.name] = new
                    changed = True

    # -- queries ------------------------------------------------------------

    def production_first(self, name: str) -> FirstSet:
        return self._production_first.get(name, _UNKNOWN)

    def first(self, expr: Expression) -> FirstSet:
        """FIRST set of an expression in this grammar."""
        if isinstance(expr, Literal):
            ch = expr.text[0]
            chars = {ch.lower(), ch.upper()} if expr.ignore_case else {ch}
            return FirstSet(frozenset(chars), False)
        if isinstance(expr, CharClass):
            return FirstSet(expr.first_chars(), False)
        if isinstance(expr, AnyChar):
            return FirstSet(None, False)
        if isinstance(expr, (Epsilon, Action)):
            return FirstSet(frozenset(), True)
        if isinstance(expr, Fail):
            return FirstSet(frozenset(), False)
        if isinstance(expr, Nonterminal):
            return self.production_first(expr.name)
        if isinstance(expr, Sequence):
            chars: set[str] = set()
            constraint: frozenset[str] | None = None
            may_have_consumed = False
            for item in expr.items:
                # Predicates (possibly wrapped in value operators, which
                # change nothing about what they match) constrain but don't
                # consume; a following item provides the actual first
                # character.  Dropping a predicate from the product only
                # *widens* the set, so FIRST(!e x) ⊆ FIRST(x) and
                # FIRST(&e x) ⊆ FIRST(x) are both sound over-approximations
                # for dispatch.  A positive predicate at the very front
                # additionally *narrows* the set: the first character must
                # also start e, so intersect when e's FIRST is known.
                inner = item
                while isinstance(inner, (Binding, Voided, Text)):
                    inner = inner.expr
                if isinstance(inner, Not):
                    continue
                if isinstance(inner, And):
                    fk = self.first(inner.expr)
                    if fk.chars is not None and not fk.nullable and not may_have_consumed:
                        constraint = (
                            fk.chars if constraint is None else constraint & fk.chars
                        )
                    continue
                fs = self.first(item)
                if fs.chars is None:
                    return _UNKNOWN
                chars |= fs.chars
                if not fs.nullable:
                    if constraint is not None:
                        chars &= constraint
                    return FirstSet(frozenset(chars), False)
                if fs.chars:
                    # A nullable item that may still consume input shifts the
                    # position later predicates apply at; stop narrowing.
                    may_have_consumed = True
            return FirstSet(frozenset(chars), True)
        if isinstance(expr, Choice):
            chars = set()
            nullable = False
            for alternative in expr.alternatives:
                fs = self.first(alternative)
                if fs.chars is None:
                    return FirstSet(None, fs.nullable or nullable)
                chars |= fs.chars
                nullable = nullable or fs.nullable
            return FirstSet(frozenset(chars), nullable)
        if isinstance(expr, Repetition):
            fs = self.first(expr.expr)
            return FirstSet(fs.chars, expr.min == 0 or fs.nullable)
        if isinstance(expr, Option):
            fs = self.first(expr.expr)
            return FirstSet(fs.chars, True)
        if isinstance(expr, (Binding, Voided, Text)):
            return self.first(expr.expr)
        if isinstance(expr, And):
            return FirstSet(None, True)
        if isinstance(expr, Not):
            return FirstSet(None, True)
        if isinstance(expr, Regex):
            return self.first(expr.original)
        if isinstance(expr, CharSwitch):
            chars = set()
            nullable = False
            for case_chars, _ in expr.cases:
                chars |= case_chars
            fs = self.first(expr.default)
            if fs.chars is None:
                return FirstSet(None, fs.nullable)
            return FirstSet(frozenset(chars | fs.chars), fs.nullable)
        raise TypeError(f"first: unhandled {type(expr).__name__}")

    # -- dispatch safety ----------------------------------------------------

    def dispatch_safe(self, expr: Expression) -> bool:
        """May ``expr`` be *skipped* when the next character is outside its
        FIRST set without changing the farthest-failure frontier?

        First-character dispatch (``CharSwitch`` cases, the generator's
        alternative guards) replaces an alternative's evaluation with a
        single expected-set record at the current position.  That is only
        observationally equivalent when evaluating the alternative on such a
        character provably records nothing *beyond* the current position.
        Terminal-led shapes qualify trivially: the first consuming item
        fails on its very first character.  ``!e x`` heads qualify when
        ``e`` is itself safe and every character that could start ``e`` lies
        inside the sequence's own FIRST set — outside that set ``e`` fails
        immediately and the continuation supplies the real failure (the
        ``!Keyword Identifier`` idiom: keywords start with identifier
        characters).  Positive predicates narrow FIRST below the operands'
        own sets, so they are conservatively unsafe.
        """
        return self._expr_safe(expr)

    def _production_safe(self, name: str) -> bool:
        if self._safe_productions is None:
            # Greatest fixpoint: assume every production safe, demote any
            # whose alternatives turn out unsafe until stable.
            safe = {n: True for n in self._grammar.names()}
            self._safe_productions = safe
            changed = True
            while changed:
                changed = False
                for production in self._grammar:
                    if not safe[production.name]:
                        continue
                    if not all(
                        self._expr_safe(alt.expr) for alt in production.alternatives
                    ):
                        safe[production.name] = False
                        changed = True
        return self._safe_productions.get(name, False)

    def _expr_safe(self, expr: Expression) -> bool:
        if isinstance(expr, (Literal, CharClass, AnyChar, Epsilon, Fail, Action)):
            return True
        if isinstance(expr, Nonterminal):
            return self._production_safe(expr.name)
        if isinstance(expr, Sequence):
            return self._sequence_safe(expr)
        if isinstance(expr, Choice):
            return all(self._expr_safe(alt) for alt in expr.alternatives)
        if isinstance(expr, (Repetition, Option, Binding, Voided, Text)):
            return self._expr_safe(expr.expr)
        if isinstance(expr, Regex):
            # Failure replay re-evaluates the original through the ordinary
            # machinery, so a fused region records exactly what it would.
            return self._expr_safe(expr.original)
        if isinstance(expr, CharSwitch):
            # A character outside FIRST matches no case, so only the default
            # branch ever runs.
            return self._expr_safe(expr.default)
        return False  # bare And/Not: unbounded FIRST defeats dispatch anyway

    def _sequence_safe(self, expr: Sequence) -> bool:
        seq_first = self.first(expr)
        for item in expr.items:
            inner = item
            while isinstance(inner, (Binding, Voided, Text)):
                inner = inner.expr
            if isinstance(inner, Not):
                fk = self.first(inner.expr)
                if fk.chars is None or not self._expr_safe(inner.expr):
                    return False
                if seq_first.chars is None or not fk.chars <= seq_first.chars:
                    return False
                continue
            if isinstance(inner, And):
                # The intersection narrowing means a skipped character can
                # still start the predicate's operand, whose evaluation may
                # record past the current position.
                return False
            if not self._expr_safe(item):
                return False
            fs = self.first(item)
            if not fs.nullable:
                # Items past the first non-nullable one are never reached
                # when the first character already mismatches.
                return True
        return True
