"""Static analyses over flat grammars."""

from repro.analysis.cost import expr_cost, production_cost, reference_counts
from repro.analysis.first import FirstAnalysis, FirstSet
from repro.analysis.leftrec import (
    directly_left_recursive,
    indirect_left_recursion_cycles,
    left_call_graph,
    left_calls,
    left_recursive_alternatives,
)
from repro.analysis.nullability import expr_nullable, nullable_productions
from repro.analysis.reachability import prune_unreachable, reachable, unreachable
from repro.analysis.stats import GrammarStats, ModuleStats, grammar_loc, grammar_stats, module_stats
from repro.analysis.wellformed import Diagnostic, check, require_wellformed

__all__ = [
    "expr_cost", "production_cost", "reference_counts",
    "FirstAnalysis", "FirstSet",
    "directly_left_recursive", "indirect_left_recursion_cycles",
    "left_call_graph", "left_calls", "left_recursive_alternatives",
    "expr_nullable", "nullable_productions",
    "prune_unreachable", "reachable", "unreachable",
    "GrammarStats", "ModuleStats", "grammar_loc", "grammar_stats", "module_stats",
    "Diagnostic", "check", "require_wellformed",
]
