"""Left-recursion detection.

``left_calls(expr)`` is the set of productions that can be invoked before
any input has been consumed; a production is *directly* left-recursive if it
left-calls itself, and *indirectly* left-recursive if it reaches itself
through the transitive closure of left calls.

The paper's system transforms **direct** left recursion in generic
productions into iteration (see :mod:`repro.transform.leftrec`); indirect
left recursion is rejected.
"""

from __future__ import annotations

from repro.analysis.nullability import expr_nullable, nullable_productions
from repro.peg.expr import (
    And,
    Binding,
    CharSwitch,
    Choice,
    Expression,
    Nonterminal,
    Not,
    Option,
    Repetition,
    Sequence,
    Text,
    Voided,
)
from repro.peg.grammar import Grammar
from repro.peg.production import Alternative


def left_calls(expr: Expression, nullable_names: set[str]) -> set[str]:
    """Productions possibly invoked by ``expr`` at its left edge."""
    if isinstance(expr, Nonterminal):
        return {expr.name}
    if isinstance(expr, Sequence):
        calls: set[str] = set()
        for item in expr.items:
            calls |= left_calls(item, nullable_names)
            if not expr_nullable(item, nullable_names):
                break
        return calls
    if isinstance(expr, Choice):
        calls = set()
        for alternative in expr.alternatives:
            calls |= left_calls(alternative, nullable_names)
        return calls
    if isinstance(expr, (Repetition, Option, Binding, Voided, Text, And, Not)):
        return left_calls(expr.expr, nullable_names)
    if isinstance(expr, CharSwitch):
        calls = set()
        for _, branch in expr.cases:
            calls |= left_calls(branch, nullable_names)
        return calls | left_calls(expr.default, nullable_names)
    return set()


def left_call_graph(grammar: Grammar) -> dict[str, set[str]]:
    """Map every production to the productions it left-calls."""
    nullable = nullable_productions(grammar)
    graph: dict[str, set[str]] = {}
    for production in grammar:
        calls: set[str] = set()
        for alternative in production.alternatives:
            calls |= left_calls(alternative.expr, nullable)
        graph[production.name] = calls & set(grammar.names())
    return graph


def directly_left_recursive(grammar: Grammar) -> set[str]:
    """Productions with an alternative that left-calls the production itself."""
    return {name for name, calls in left_call_graph(grammar).items() if name in calls}


def left_recursive_alternatives(
    production_name: str, alternatives: tuple[Alternative, ...], nullable_names: set[str]
) -> list[int]:
    """Indices of the alternatives whose left edge calls the production."""
    return [
        index
        for index, alternative in enumerate(alternatives)
        if production_name in left_calls(alternative.expr, nullable_names)
    ]


def indirect_left_recursion_cycles(grammar: Grammar) -> list[list[str]]:
    """Left-recursion cycles involving more than one production.

    Returns one representative cycle (as a name list) per strongly connected
    component of the left-call graph that has size > 1.
    """
    graph = left_call_graph(grammar)
    # Tarjan's strongly connected components, iteratively.
    index_counter = 0
    stack: list[str] = []
    lowlink: dict[str, int] = {}
    index: dict[str, int] = {}
    on_stack: set[str] = set()
    components: list[list[str]] = []

    def strongconnect(root: str) -> None:
        nonlocal index_counter
        work: list[tuple[str, list[str]]] = [(root, sorted(graph.get(root, ())))]
        index[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            while successors:
                succ = successors.pop(0)
                if succ not in index:
                    index[succ] = lowlink[succ] = index_counter
                    index_counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, sorted(graph.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(sorted(component))

    for name in graph:
        if name not in index:
            strongconnect(name)
    return components
