"""Reachability from the start production (or any root set)."""

from __future__ import annotations

from repro.peg.grammar import Grammar


def reachable(grammar: Grammar, roots: set[str] | None = None) -> set[str]:
    """Production names reachable from ``roots`` (default: the start)."""
    pending = list(roots) if roots is not None else [grammar.start]
    seen: set[str] = set()
    productions = grammar.as_dict()
    while pending:
        name = pending.pop()
        if name in seen or name not in productions:
            continue
        seen.add(name)
        pending.extend(productions[name].referenced_names())
    return seen


def unreachable(grammar: Grammar) -> set[str]:
    """Productions that can never be invoked from the start production.

    Public productions are treated as additional roots — they are exported
    entry points, so they (and everything they reach) are not dead.
    """
    roots = {grammar.start} | {p.name for p in grammar if p.is_public}
    return set(grammar.names()) - reachable(grammar, roots)


def prune_unreachable(grammar: Grammar) -> Grammar:
    """Drop unreachable productions (a cleanup run after composition)."""
    dead = unreachable(grammar)
    if not dead:
        return grammar
    return grammar.remove_productions(dead)
