"""Translatability analysis for scanner fusion.

The fuse optimization (:mod:`repro.optim.fuse`) rewrites *fusable* regions
— value-free, action-free, binding-free, non-recursive subexpressions built
from literals, character classes, sequences, choices, options, repetitions,
and predicates over fusable operands — into single :class:`~repro.peg.expr.Regex`
leaves executed by the C regex engine.  This module decides which regions
qualify, translates them to ``re`` patterns, and estimates whether a region
is worth fusing.

The translation is exact because PEG's committed-choice operators map onto
``re``'s backtracking-suppression syntax (Python >= 3.11):

=====================  ==================  ==================================
PEG                    regex               why it is the same
=====================  ==================  ==================================
``e1 e2``              ``e1e2``            concatenation, both possessive
``e1 / e2``            ``(?>e1|e2)``       atomic group: ordered, committed
``e*`` / ``e+``        ``(?:e)*+`` `++`    possessive: greedy, never gives back
``e?``                 ``(?:e)?+``         possessive option
``&e`` / ``!e``        ``(?=e)`` `(?!e)``  lookarounds are atomic in ``re``
``.`` (AnyChar)        ``.`` + DOTALL      matches any char incl. newline
=====================  ==================  ==================================

On interpreters older than 3.11 the possessive/atomic syntax raises
``re.error``, so :func:`fusion_supported` gates the whole pass off there.

Case-insensitive literals are deliberately *not* fusable: the backends
compare ``text.lower()`` while ``re.IGNORECASE`` applies Unicode case
folding, and the two disagree on characters like U+017F / U+212A.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass

from repro.analysis.nullability import expr_nullable, nullable_productions
from repro.peg.expr import (
    And,
    AnyChar,
    CharClass,
    Choice,
    Epsilon,
    Expression,
    Literal,
    Nonterminal,
    Not,
    Option,
    Regex,
    Repetition,
    Sequence,
    Text,
    Voided,
    choice,
    transform,
    walk,
)
from repro.peg.grammar import Grammar
from repro.peg.production import ValueKind

#: Possessive quantifiers and atomic groups appeared in Python 3.11.
FUSION_SUPPORTED = sys.version_info >= (3, 11)

#: A region is worth one C scan when it loops, or replaces at least this
#: many Python-level terminal matches (below that, ``startswith`` and set
#: membership are already optimal).
MIN_FUSED_TERMINALS = 3

_CHAR_ESCAPES = {
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
    "\f": "\\f",
    "\v": "\\v",
    "\0": "\\0",
}

_MISSING = object()


def fusion_supported() -> bool:
    """Does this interpreter's ``re`` accept possessive/atomic syntax?"""
    return FUSION_SUPPORTED


_COMPILED: dict[str, re.Pattern] = {}


def compiled_pattern(pattern: str) -> re.Pattern:
    """Compile (and cache) a fused pattern.

    All fused patterns use ``re.DOTALL`` so ``.`` matches newlines, exactly
    like ``AnyChar``.  The cache is shared process-wide: backends compiled
    from the same prepared grammar — and the difftest oracle's many variants
    — reuse one compiled program per distinct pattern.
    """
    compiled = _COMPILED.get(pattern)
    if compiled is None:
        compiled = _COMPILED[pattern] = re.compile(pattern, re.DOTALL)
    return compiled


def _escape(ch: str) -> str:
    return _CHAR_ESCAPES.get(ch, re.escape(ch))


@dataclass(frozen=True, slots=True)
class FusionCoverage:
    """How much of a prepared grammar's terminal matching fusion absorbed."""

    regions: int
    patterns: int
    fused_terminals: int
    plain_terminals: int

    @property
    def ratio(self) -> float:
        total = self.fused_terminals + self.plain_terminals
        return self.fused_terminals / total if total else 0.0


class FusionAnalysis:
    """Decide fusability, translate regions, and estimate benefit."""

    def __init__(self, grammar: Grammar):
        self._grammar = grammar
        self._nullable = nullable_productions(grammar)
        self._kinds = {p.name: p.kind for p in grammar.productions}
        self._recursive = self._recursive_names(grammar)
        self._regions: dict[str, Expression | None] = {}
        #: Names inlined into at least one fused pattern (for stats/lint).
        self.inlined_names: set[str] = set()

    @staticmethod
    def _recursive_names(grammar: Grammar) -> set[str]:
        direct: dict[str, set[str]] = {
            p.name: p.referenced_names() for p in grammar.productions
        }
        recursive: set[str] = set()
        for name in direct:
            seen: set[str] = set()
            stack = list(direct.get(name, ()))
            while stack:
                ref = stack.pop()
                if ref == name:
                    recursive.add(name)
                    break
                if ref in seen:
                    continue
                seen.add(ref)
                stack.extend(direct.get(ref, ()))
        return recursive

    def kind_of(self, name: str) -> ValueKind:
        return self._kinds.get(name, ValueKind.OBJECT)

    # -- fusability ---------------------------------------------------------

    def fusable(self, expr: Expression) -> bool:
        """Can ``expr`` be translated to an equivalent ``re`` pattern?"""
        if isinstance(expr, Literal):
            return not expr.ignore_case
        if isinstance(expr, CharClass):
            return bool(expr.ranges)
        if isinstance(expr, (AnyChar, Epsilon)):
            return True
        if isinstance(expr, Sequence):
            return all(self.fusable(item) for item in expr.items)
        if isinstance(expr, Choice):
            return all(self.fusable(alt) for alt in expr.alternatives)
        if isinstance(expr, Repetition):
            # A nullable ``e+`` fails in a PEG (the zero-width iteration
            # doesn't count) but ``(?:e)++`` would succeed; well-formedness
            # rejects these, but ``prepare(check=False)`` must stay exact.
            if expr.min == 1 and expr_nullable(expr.expr, self._nullable):
                return False
            return self.fusable(expr.expr)
        if isinstance(expr, (Option, And, Not, Voided, Text)):
            return self.fusable(expr.expr)
        if isinstance(expr, Nonterminal):
            return self.region(expr.name) is not None
        # Binding, Action, Fail, CharSwitch, Regex: never part of a region.
        return False

    def region(self, name: str) -> Expression | None:
        """The inlinable region for a referenced production, or None.

        A reference can join a fused region when the production is value-free
        (``void`` or ``String`` kind — its value is machinery-built, never
        assembled from the items), non-recursive, not marked ``nofuse``, and
        its whole body is itself fusable.  The region is the body wrapped in
        ``Voided``/``Text`` to mirror the reference's value contribution.
        """
        cached = self._regions.get(name, _MISSING)
        if cached is not _MISSING:
            return cached
        self._regions[name] = None  # cycle guard; recursion is unfusable
        production = self._grammar.get(name)
        if (
            production is not None
            and production.kind in (ValueKind.VOID, ValueKind.TEXT)
            and not production.has("nofuse")
            and name not in self._recursive
            and all(self.fusable(alt.expr) for alt in production.alternatives)
        ):
            body = choice(*(alt.expr for alt in production.alternatives))
            wrapper = Voided(body) if production.kind is ValueKind.VOID else Text(body)
            self._regions[name] = wrapper
        return self._regions[name]

    def resolve(self, expr: Expression) -> Expression:
        """Inline every referenced production, yielding a nonterminal-free
        expression equivalent to ``expr`` (same matches, same expected-set
        records — a reference evaluates its alternatives in order, exactly
        like the inlined ordered choice)."""

        def fn(node: Expression) -> Expression:
            if isinstance(node, Nonterminal):
                region = self.region(node.name)
                if region is None:  # pragma: no cover - guarded by fusable()
                    raise ValueError(f"cannot resolve unfusable reference {node.name}")
                self.inlined_names.add(node.name)
                return self.resolve(region)
            return node

        return transform(expr, fn)

    # -- benefit ------------------------------------------------------------

    def beneficial(self, resolved: Expression) -> bool:
        """Is the region worth a scan?  A loop always is (the per-iteration
        interpreter overhead is the dominant cost fusion removes); otherwise
        require a few terminal matches to amortize the ``re`` call."""
        terminals = 0
        for node in walk(resolved):
            if isinstance(node, Repetition):
                return True
            if isinstance(node, (Literal, CharClass, AnyChar)):
                terminals += 1
        return terminals >= MIN_FUSED_TERMINALS

    # -- translation --------------------------------------------------------

    def translate(self, resolved: Expression) -> str:
        """The ``re`` pattern for a resolved (nonterminal-free) region."""
        if isinstance(resolved, Literal):
            return "".join(_escape(ch) for ch in resolved.text)
        if isinstance(resolved, CharClass):
            return self._class_pattern(resolved)
        if isinstance(resolved, AnyChar):
            return "."
        if isinstance(resolved, Epsilon):
            return ""
        if isinstance(resolved, Sequence):
            return "".join(self.translate(item) for item in resolved.items)
        if isinstance(resolved, Choice):
            return "(?>" + "|".join(self.translate(a) for a in resolved.alternatives) + ")"
        if isinstance(resolved, Repetition):
            return self._atom(resolved.expr) + ("++" if resolved.min == 1 else "*+")
        if isinstance(resolved, Option):
            return self._atom(resolved.expr) + "?+"
        if isinstance(resolved, And):
            return "(?=" + self.translate(resolved.expr) + ")"
        if isinstance(resolved, Not):
            return "(?!" + self.translate(resolved.expr) + ")"
        if isinstance(resolved, (Voided, Text)):
            return self.translate(resolved.expr)
        raise TypeError(f"translate: unfusable {type(resolved).__name__}")

    def _atom(self, expr: Expression) -> str:
        """A self-delimited fragment a quantifier can attach to."""
        while isinstance(expr, (Voided, Text)):
            expr = expr.expr
        if isinstance(expr, CharClass):
            return self._class_pattern(expr)
        if isinstance(expr, AnyChar):
            return "."
        if isinstance(expr, Literal) and len(expr.text) == 1 and not expr.ignore_case:
            return _escape(expr.text)
        if isinstance(expr, Choice):
            return self.translate(expr)  # already an atomic group
        return "(?:" + self.translate(expr) + ")"

    @staticmethod
    def _class_pattern(expr: CharClass) -> str:
        parts: list[str] = []
        for lo, hi in expr.ranges:
            parts.append(_escape(lo) if lo == hi else f"{_escape(lo)}-{_escape(hi)}")
        return ("[^" if expr.negated else "[") + "".join(parts) + "]"

    # -- silence ------------------------------------------------------------

    def silent_on_success(self, resolved: Expression) -> bool:
        """Does a *successful* match of the region provably record nothing?

        Pure literal/class concatenations never touch the expected set when
        they match.  Anything with internal failure — an ordered choice whose
        earlier alternative may fail, a repetition whose final iteration
        fails, a ``!e`` whose success *is* ``e`` failing — records entries
        (possibly beyond the match end), so successful scans of such regions
        must still be noted for error replay.
        """
        if isinstance(resolved, (Literal, CharClass, AnyChar, Epsilon)):
            return True
        if isinstance(resolved, Sequence):
            return all(self.silent_on_success(item) for item in resolved.items)
        if isinstance(resolved, (And, Voided, Text)):
            return self.silent_on_success(resolved.expr)
        return False

    # -- construction -------------------------------------------------------

    def build_regex(
        self, expr: Expression, *, capture: bool, label: str
    ) -> Regex | None:
        """Fuse ``expr`` into a ``Regex`` node, or None when not worthwhile.

        ``expr`` must already satisfy :meth:`fusable`.  Returns None when the
        region is below the benefit threshold or (defensively) when the
        translated pattern fails to compile.
        """
        resolved = self.resolve(expr)
        if not self.beneficial(resolved):
            return None
        pattern = self.translate(resolved)
        try:
            compiled_pattern(pattern)
        except re.error:  # pragma: no cover - translation should never miss
            return None
        return Regex(
            pattern=pattern,
            original=resolved,
            capture=capture,
            silent=self.silent_on_success(resolved),
            label=label,
        )


def fusion_coverage(grammar: Grammar) -> FusionCoverage:
    """Measure fusion over a *prepared* grammar: how many terminal leaves
    ended up inside fused regions vs. left for Python-level matching."""
    regions = 0
    patterns: set[str] = set()
    fused = 0
    plain = 0
    for production in grammar:
        for alternative in production.alternatives:
            for node in walk(alternative.expr):
                if isinstance(node, Regex):
                    regions += 1
                    patterns.add(node.pattern)
                    fused += sum(
                        1
                        for sub in walk(node.original)
                        if isinstance(sub, (Literal, CharClass, AnyChar))
                    )
                elif isinstance(node, (Literal, CharClass, AnyChar)):
                    plain += 1
    return FusionCoverage(
        regions=regions,
        patterns=len(patterns),
        fused_terminals=fused,
        plain_terminals=plain,
    )
