"""Cost model for the inlining optimization.

``expr_cost`` estimates the dynamic cost of matching an expression, in
abstract "operation" units; the inliner inlines a production wherever the
body's cost does not exceed the cost of the call it replaces by more than a
small factor.  The exact constants only shift the threshold, not the shape
of the optimization.
"""

from __future__ import annotations

from repro.peg.expr import (
    Action,
    And,
    AnyChar,
    Binding,
    CharClass,
    CharSwitch,
    Choice,
    Epsilon,
    Expression,
    Fail,
    Literal,
    Nonterminal,
    Not,
    Option,
    Regex,
    Repetition,
    Sequence,
    Text,
    Voided,
)
from repro.peg.grammar import Grammar
from repro.peg.production import Production

#: Cost of invoking a production (call + memo lookup overhead).
CALL_COST = 8
#: Expected number of iterations used to weight repetition bodies.
REPETITION_WEIGHT = 4


def expr_cost(expr: Expression) -> int:
    if isinstance(expr, Literal):
        return 1 + len(expr.text) // 4
    if isinstance(expr, (CharClass, AnyChar, Epsilon)):
        return 1
    if isinstance(expr, Fail):
        return 0
    if isinstance(expr, Action):
        return 2
    if isinstance(expr, Nonterminal):
        return CALL_COST
    if isinstance(expr, Sequence):
        return sum(expr_cost(item) for item in expr.items)
    if isinstance(expr, Choice):
        return sum(expr_cost(alt) for alt in expr.alternatives)
    if isinstance(expr, Repetition):
        return REPETITION_WEIGHT * expr_cost(expr.expr)
    if isinstance(expr, Option):
        return expr_cost(expr.expr)
    if isinstance(expr, (And, Not, Binding, Voided, Text)):
        return 1 + expr_cost(expr.expr)
    if isinstance(expr, Regex):
        # One C-level scan, however large the absorbed region was — that is
        # the point of fusion, and it keeps fused bodies attractive to inline.
        return 2
    if isinstance(expr, CharSwitch):
        return 2 + max(
            [expr_cost(branch) for _, branch in expr.cases] + [expr_cost(expr.default)]
        )
    raise TypeError(f"cost: unhandled {type(expr).__name__}")


def production_cost(production: Production) -> int:
    return sum(expr_cost(alt.expr) for alt in production.alternatives)


def reference_counts(grammar: Grammar) -> dict[str, int]:
    """How many syntactic call sites each production has, grammar-wide."""
    counts: dict[str, int] = {name: 0 for name in grammar.names()}
    from repro.peg.expr import walk

    for production in grammar:
        for alternative in production.alternatives:
            for node in walk(alternative.expr):
                if isinstance(node, Nonterminal) and node.name in counts:
                    counts[node.name] += 1
    return counts
