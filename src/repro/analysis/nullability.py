"""Nullability analysis: which expressions can succeed without consuming input.

Computed as the least fixed point over the grammar's productions (starting
from "not nullable" everywhere).  Nullability feeds the left-recursion
detector (a nullable prefix passes left-ness through), the well-formedness
checker (repetition of a nullable expression loops forever in a naive
parser), and the terminal optimizer (a nullable alternative defeats
first-character dispatch).
"""

from __future__ import annotations

from repro.peg.expr import (
    Action,
    And,
    AnyChar,
    Binding,
    CharClass,
    CharSwitch,
    Choice,
    Epsilon,
    Expression,
    Fail,
    Literal,
    Nonterminal,
    Not,
    Option,
    Regex,
    Repetition,
    Sequence,
    Text,
    Voided,
)
from repro.peg.grammar import Grammar


def expr_nullable(expr: Expression, nullable_names: set[str]) -> bool:
    """Is ``expr`` nullable, assuming the productions in ``nullable_names``
    are nullable?"""
    if isinstance(expr, (Literal, CharClass, AnyChar)):
        return False
    if isinstance(expr, (Epsilon, Action, And, Not)):
        return True
    if isinstance(expr, Fail):
        return False
    if isinstance(expr, Nonterminal):
        return expr.name in nullable_names
    if isinstance(expr, Sequence):
        return all(expr_nullable(item, nullable_names) for item in expr.items)
    if isinstance(expr, Choice):
        return any(expr_nullable(alt, nullable_names) for alt in expr.alternatives)
    if isinstance(expr, Repetition):
        return expr.min == 0 or expr_nullable(expr.expr, nullable_names)
    if isinstance(expr, Option):
        return True
    if isinstance(expr, (Binding, Voided, Text)):
        return expr_nullable(expr.expr, nullable_names)
    if isinstance(expr, Regex):
        # Fused regions have nonterminal-free originals, so production
        # nullability assumptions are irrelevant to them.
        return expr_nullable(expr.original, nullable_names)
    if isinstance(expr, CharSwitch):
        return any(expr_nullable(e, nullable_names) for _, e in expr.cases) or expr_nullable(
            expr.default, nullable_names
        )
    raise TypeError(f"nullability: unhandled {type(expr).__name__}")


def nullable_productions(grammar: Grammar) -> set[str]:
    """The set of production names that can match the empty string."""
    nullable: set[str] = set()
    changed = True
    while changed:
        changed = False
        for production in grammar:
            if production.name in nullable:
                continue
            if any(expr_nullable(alt.expr, nullable) for alt in production.alternatives):
                nullable.add(production.name)
                changed = True
    return nullable
