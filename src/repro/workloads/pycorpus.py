"""The real-Python corpus: loading, PEP 263 decoding, and the parse driver.

``examples/python/`` holds a checked-in slice of real Python source (see its
README for provenance).  This module turns those bytes into parseable text
and runs them through a compiled ``python.Python`` language:

- :func:`decode_python_source` implements PEP 263: a UTF-8 BOM wins, else a
  ``coding:`` declaration on one of the first two lines, else UTF-8.
- :func:`load_corpus` walks the corpus directory and *skips-and-reports*
  undecodable files instead of crashing — a corpus run must never die on one
  bad input.
- :data:`ALLOWLIST` names the files expected **not** to parse, each with the
  reason (constructs beyond the grammar's 3.8-level scope).  The corpus
  driver treats an allowlisted failure as expected, an allowlisted *success*
  as a stale allowlist entry, and any other failure as a defect.
- :func:`run_corpus` is the driver: parse every file through a parse
  callable, fold outcomes into a :class:`CorpusReport`.

Run it from the command line::

    python -m repro.workloads.pycorpus            # generated backend
"""

from __future__ import annotations

import codecs
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.errors import ParseError
from repro.workloads.pylayout import LayoutError, python_layout

#: Repository-relative default corpus location.
CORPUS_DIR = Path(__file__).resolve().parents[3] / "examples" / "python"

#: PEP 263: ``coding[:=]\s*([-\w.]+)`` on one of the first two lines.
_CODING_RE = re.compile(rb"^[ \t\f]*#.*?coding[:=][ \t]*([-_.a-zA-Z0-9]+)")

#: Corpus files expected not to parse, with the reason.  Keys are file names
#: relative to the corpus root.
ALLOWLIST: dict[str, str] = {
    "dataclasses.py": "match statement (3.10 soft keyword, out of scope)",
    "traceback.py": "match statement (3.10 soft keyword, out of scope)",
    "encoded_undecodable.py": "deliberately undecodable bytes (loader skip path)",
}


class CorpusDecodeError(ValueError):
    """A corpus file's bytes could not be decoded as Python source."""


def source_encoding(data: bytes) -> str:
    """The encoding of Python source bytes, per PEP 263.

    A UTF-8 BOM forces ``utf-8-sig`` (and wins over any declaration); else a
    ``# -*- coding: X -*-`` style comment on the first or second line names
    the codec; else UTF-8.
    """
    if data.startswith(codecs.BOM_UTF8):
        return "utf-8-sig"
    for line in data.split(b"\n", 2)[:2]:
        match = _CODING_RE.match(line)
        if match:
            return match.group(1).decode("ascii")
        if line.strip() and not line.lstrip().startswith(b"#"):
            break  # a code line ends the declaration window
    return "utf-8"


def decode_python_source(data: bytes) -> str:
    """Decode Python source bytes honoring PEP 263.

    Raises :class:`CorpusDecodeError` when the declared codec is unknown or
    the bytes do not decode under it.
    """
    encoding = source_encoding(data)
    try:
        return data.decode(encoding)
    except (UnicodeDecodeError, LookupError) as exc:
        raise CorpusDecodeError(f"cannot decode as {encoding}: {exc}") from exc


@dataclass(frozen=True)
class CorpusFile:
    """One decoded corpus file."""

    name: str  # path relative to the corpus root
    path: Path
    text: str  # decoded source, NOT layout-preprocessed
    nbytes: int  # size of the raw file on disk


@dataclass(frozen=True)
class SkippedFile:
    """A corpus file the loader could not decode."""

    name: str
    path: Path
    reason: str


def load_corpus(
    root: Path | str = CORPUS_DIR,
) -> tuple[list[CorpusFile], list[SkippedFile]]:
    """Load every ``*.py`` under ``root``; undecodable files are skipped and
    reported, never raised."""
    root = Path(root)
    files: list[CorpusFile] = []
    skipped: list[SkippedFile] = []
    for path in sorted(root.rglob("*.py")):
        name = path.relative_to(root).as_posix()
        data = path.read_bytes()
        try:
            text = decode_python_source(data)
        except CorpusDecodeError as exc:
            skipped.append(SkippedFile(name, path, str(exc)))
            continue
        files.append(CorpusFile(name, path, text, len(data)))
    return files, skipped


@dataclass
class FileOutcome:
    """What happened to one corpus file under one parse callable."""

    name: str
    status: str  # "parsed" | "failed" | "allowlisted" | "stale-allowlist"
    detail: str = ""
    seconds: float = 0.0
    nbytes: int = 0
    value: Any = None


@dataclass
class CorpusReport:
    """Aggregated corpus-run outcomes."""

    outcomes: list[FileOutcome] = field(default_factory=list)
    skipped: list[SkippedFile] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def parsed(self) -> list[FileOutcome]:
        return [o for o in self.outcomes if o.status == "parsed"]

    @property
    def failed(self) -> list[FileOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    @property
    def allowlisted(self) -> list[FileOutcome]:
        return [o for o in self.outcomes if o.status == "allowlisted"]

    @property
    def stale_allowlist(self) -> list[FileOutcome]:
        return [o for o in self.outcomes if o.status == "stale-allowlist"]

    @property
    def attempted(self) -> int:
        """Files the grammar was *expected* to parse."""
        return len(self.parsed) + len(self.failed)

    @property
    def parse_rate(self) -> float:
        """Fraction of non-allowlisted files that parsed."""
        return len(self.parsed) / self.attempted if self.attempted else 1.0

    @property
    def parsed_bytes(self) -> int:
        return sum(o.nbytes for o in self.parsed)

    @property
    def bytes_per_second(self) -> float:
        spent = sum(o.seconds for o in self.parsed)
        return self.parsed_bytes / spent if spent else 0.0

    def summary(self) -> str:
        lines = [
            f"corpus: {len(self.outcomes)} files attempted, "
            f"{len(self.skipped)} skipped (undecodable)",
            f"parsed {len(self.parsed)}/{self.attempted} non-allowlisted "
            f"({self.parse_rate:.1%}), {len(self.allowlisted)} allowlisted",
            f"throughput {self.bytes_per_second / 1e3:.0f} KB/s over "
            f"{self.parsed_bytes / 1e3:.0f} KB in {self.seconds:.2f}s",
        ]
        for o in self.failed:
            lines.append(f"  FAILED {o.name}: {o.detail}")
        for o in self.stale_allowlist:
            lines.append(f"  STALE ALLOWLIST {o.name}: parsed but listed")
        for s in self.skipped:
            lines.append(f"  skipped {s.name}: {s.reason}")
        return "\n".join(lines)


def run_corpus(
    parse: Callable[[str, str], Any],
    *,
    root: Path | str = CORPUS_DIR,
    allowlist: dict[str, str] | None = None,
    keep_values: bool = False,
) -> CorpusReport:
    """Parse every corpus file through ``parse(preprocessed_text, name)``.

    ``parse`` is any callable with farthest-failure :class:`ParseError`
    semantics — typically ``session.parse`` of a compiled ``python.Python``
    language, but any backend adapter works (the differential tests pass
    interpreter and closure backends here).  Layout errors from the pre-pass
    count as parse failures for allowlisting purposes.
    """
    allowlist = ALLOWLIST if allowlist is None else allowlist
    files, skipped = load_corpus(root)
    report = CorpusReport(skipped=skipped)
    started = time.perf_counter()
    for cf in files:
        listed = cf.name in allowlist
        t0 = time.perf_counter()
        try:
            value = parse(python_layout(cf.text), cf.name)
        except (ParseError, LayoutError) as exc:
            spent = time.perf_counter() - t0
            status = "allowlisted" if listed else "failed"
            report.outcomes.append(
                FileOutcome(cf.name, status, f"{type(exc).__name__}: {exc}", spent, cf.nbytes)
            )
            continue
        spent = time.perf_counter() - t0
        if listed:
            report.outcomes.append(
                FileOutcome(cf.name, "stale-allowlist", allowlist[cf.name], spent, cf.nbytes)
            )
            continue
        report.outcomes.append(
            FileOutcome(
                cf.name, "parsed", "", spent, cf.nbytes, value if keep_values else None
            )
        )
    report.seconds = time.perf_counter() - started
    return report


def main(argv: list[str] | None = None) -> int:
    import argparse

    import repro

    parser = argparse.ArgumentParser(description="Parse the real-Python corpus.")
    parser.add_argument("--root", default=str(CORPUS_DIR), help="corpus directory")
    parser.add_argument(
        "--depth-budget", type=int, default=50_000, help="recursion budget in frames"
    )
    args = parser.parse_args(argv)

    language = repro.compile_grammar("python.Python")
    with language.session(depth_budget=args.depth_budget) as session:
        report = run_corpus(session.parse, root=args.root)
    print(report.summary())
    bad = report.failed or report.stale_allowlist
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main())
