"""Indentation layout pre-pass for the modular Python grammar.

The paper's module system composes *context-free* grammar fragments; Python's
indentation is context-sensitive.  The bridge used here is a **layout
pre-pass**: a linear scan that re-expresses all layout significance as three
sentinel characters spliced into the text, after which the ``python.*``
grammar modules are ordinary PEG modules (see ``docs/grammars-python.md`` for
why this composed more cleanly than a parameterized-whitespace module):

- ``INDENT``  (``\\u0001``) — the start of a deeper block,
- ``DEDENT``  (``\\u0002``) — one block closed (one sentinel per level),
- ``NEWLINE`` (``\\u0003``) — the end of a *logical* line.

Everything else stays verbatim, so parse offsets remain meaningful and every
backend parses the identical preprocessed string.  After the pre-pass a raw
``"\\n"`` in the text is *always* insignificant (it is inside brackets, after
a backslash continuation, or on a blank/comment-only line), which is what
lets the grammar use a single whitespace convention (``python.Layout``)
instead of bracket-aware spacing states.

The scan understands exactly as much Python lexing as layout needs: string
literals (all prefix/quote forms, including triple quotes spanning lines),
comments, bracket nesting, and backslash continuation.  Tabs advance the
indentation column to the next multiple of 8 (CPython's rule); form feeds
are ignored for indentation purposes.  Inconsistent dedents raise
:class:`LayoutError` — corpus drivers surface those as per-file skips, not
crashes.
"""

from __future__ import annotations

from repro.errors import ReproError

INDENT = ""
DEDENT = ""
NEWLINE = ""

#: Characters the pre-pass inserts; input containing them raw is rejected.
SENTINELS = frozenset((INDENT, DEDENT, NEWLINE))

_OPEN = frozenset("([{")
_CLOSE = frozenset(")]}")
_QUOTES = frozenset("'\"")
#: Legal string-prefix letters (any case, any order the lexer accepts).
_PREFIX_LETTERS = frozenset("rbfuRBFU")


class LayoutError(ReproError):
    """The layout pre-pass rejected the input (e.g. inconsistent dedent)."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.message = message
        self.line = line


def _indent_width(line: str) -> tuple[int, int]:
    """``(width, first_code_index)`` of a physical line's indentation.

    Width follows CPython: tabs advance to the next multiple of 8, form
    feeds reset nothing and count as zero width.
    """
    width = 0
    i = 0
    for i, ch in enumerate(line):
        if ch == " ":
            width += 1
        elif ch == "\t":
            width = (width // 8 + 1) * 8
        elif ch == "\f":
            continue
        else:
            return width, i
    return width, len(line)


def _string_prefix(text: str, pos: int) -> int:
    """Length of a string prefix (``r``/``b``/``f``/``u`` combination)
    ending at a quote, or 0 when ``text[pos:]`` does not open a string."""
    i = pos
    while i < len(text) and i - pos < 3 and text[i] in _PREFIX_LETTERS:
        i += 1
    if i < len(text) and text[i] in _QUOTES:
        return i - pos
    return 0


class _Scanner:
    """Character-level layout scanner over one decoded source text."""

    def __init__(self, text: str):
        self.text = text
        self.out: list[str] = []
        self.indents = [0]
        self.depth = 0  # bracket nesting
        self.line_no = 1

    def run(self) -> str:
        text = self.text
        for ch in SENTINELS:
            if ch in text:
                raise LayoutError("input already contains a layout sentinel", 1)
        out = self.out
        n = len(text)
        pos = 0
        while pos < n:
            pos = self._logical_line(pos)
        # Close any blocks still open at end of input (code lines always
        # emit their own NEWLINE, even without a trailing "\n").
        while len(self.indents) > 1:
            self.indents.pop()
            out.append(DEDENT)
        return "".join(out)

    # -- pieces ----------------------------------------------------------------

    def _logical_line(self, pos: int) -> int:
        """Consume one physical line starting at ``pos`` (which may extend
        to several physical lines); emit layout sentinels; return the offset
        after the line's terminating newline."""
        text, out = self.text, self.out
        n = len(text)
        line_end = text.find("\n", pos)
        if line_end == -1:
            line_end = n
        line = text[pos:line_end]
        width, code_at = _indent_width(line)

        # Blank or comment-only lines carry no layout meaning.
        stripped = line[code_at:] if code_at < len(line) else ""
        if not stripped or stripped.startswith("#"):
            out.append(line)
            if line_end < n:
                out.append("\n")
            self.line_no += 1
            return line_end + 1

        # A code line at bracket depth 0 opens/continues/closes blocks.
        if width > self.indents[-1]:
            self.indents.append(width)
            out.append(INDENT)
        else:
            while width < self.indents[-1]:
                self.indents.pop()
                out.append(DEDENT)
            if width != self.indents[-1]:
                raise LayoutError(
                    f"unindent to column {width} does not match any outer block",
                    self.line_no,
                )

        # Scan the logical line to its true end (brackets, strings and
        # backslash continuations may extend it across physical lines).
        end = self._scan_code(pos)
        out.append(NEWLINE)
        if end < n and text[end] == "\n":
            out.append("\n")
            self.line_no += 1
            return end + 1
        return end

    def _scan_code(self, pos: int) -> int:
        """Scan code from ``pos`` to the end of the logical line.  Appends
        the scanned text to the output verbatim and returns the offset of
        the terminating newline (or end of text)."""
        text, out = self.text, self.out
        n = len(text)
        start = pos
        while pos < n:
            ch = text[pos]
            if ch == "\n":
                if self.depth > 0:
                    # Implicit continuation inside brackets.
                    self.line_no += 1
                    pos += 1
                    continue
                out.append(text[start:pos])
                return pos
            if ch == "\\" and pos + 1 < n and text[pos + 1] == "\n":
                # Explicit continuation: keep both characters (the grammar's
                # Spacing skips the pair); the logical line continues.
                self.line_no += 1
                pos += 2
                continue
            if ch == "#":
                comment_end = text.find("\n", pos)
                pos = comment_end if comment_end != -1 else n
                continue
            if ch in _OPEN:
                self.depth += 1
                pos += 1
                continue
            if ch in _CLOSE:
                if self.depth > 0:
                    self.depth -= 1
                pos += 1
                continue
            if ch in _QUOTES:
                pos = self._scan_string(pos, 0)
                continue
            prefix = _string_prefix(text, pos) if ch in _PREFIX_LETTERS else 0
            if prefix:
                # Only treat the letters as a prefix when they are not the
                # tail of a longer identifier (e.g. ``der"x"`` is not one).
                before = text[pos - 1] if pos > 0 else ""
                if not (before.isalnum() or before == "_"):
                    pos = self._scan_string(pos + prefix, prefix)
                    continue
                pos += prefix
                continue
            pos += 1
        out.append(text[start:pos])
        return pos

    def _scan_string(self, pos: int, prefix_len: int) -> int:
        """Scan a string literal whose opening quote is at ``pos``;
        returns the offset just past its closing quote."""
        text = self.text
        n = len(text)
        quote = text[pos]
        raw = prefix_len > 0 and "r" in text[pos - prefix_len : pos].lower()
        if text.startswith(quote * 3, pos):
            terminator = quote * 3
            pos += 3
            while pos < n:
                if not raw and text[pos] == "\\":
                    pos += 2
                    continue
                if text.startswith(terminator, pos):
                    return pos + 3
                if text[pos] == "\n":
                    self.line_no += 1
                pos += 1
            raise LayoutError("unterminated triple-quoted string", self.line_no)
        pos += 1
        while pos < n:
            ch = text[pos]
            if not raw and ch == "\\":
                pos += 2
                continue
            if raw and ch == "\\" and pos + 1 < n:
                # A raw string cannot *end* with an odd backslash; the
                # backslash still escapes the quote lexically.
                pos += 2
                continue
            if ch == quote:
                return pos + 1
            if ch == "\n":
                raise LayoutError("unterminated string literal", self.line_no)
            pos += 1
        raise LayoutError("unterminated string literal", self.line_no)


def python_layout(text: str) -> str:
    """Run the layout pre-pass over decoded Python source.

    Line endings are normalized first (``\\r\\n`` and lone ``\\r`` become
    ``\\n``, as CPython's tokenizer does), then the sentinel-annotated text
    the ``python.Python`` grammar parses is returned.  Raises
    :class:`LayoutError` on inputs whose layout is malformed (inconsistent
    dedent, unterminated string, raw sentinel characters).
    """
    if "\r" in text:
        text = text.replace("\r\n", "\n").replace("\r", "\n")
    return _Scanner(text).run()
