"""Random xC program generator (see jaygen for the conventions)."""

from __future__ import annotations

import random

_TYPES = ("int", "char", "float", "double", "unsigned int", "long")
_NAMES = ("acc", "buf", "cnt", "idx", "len", "ptr", "tmp", "val", "mask", "bits")
_BINOPS = ("+", "-", "*", "/", "%", "<", ">", "<=", ">=", "==", "!=", "&&", "||", "&", "|", "^", "<<", ">>")


def generate_c_program(
    size: int = 10, seed: int = 42, rng: random.Random | None = None
) -> str:
    """Generate an xC translation unit of roughly ``size`` functions.

    ``rng`` (if given) overrides ``seed``; see
    :func:`repro.workloads.generate_jay_program`.
    """
    if rng is None:
        rng = random.Random(seed)
    out: list[str] = ["#include <stdlib.h>", ""]
    out.append("struct node { int key; struct node *next; };")
    out.append("")
    for global_index in range(max(1, size // 5)):
        out.append(f"{rng.choice(_TYPES)} g{global_index} = {rng.randint(0, 1 << 16)};")
    for function_index in range(max(1, size)):
        out.append("")
        out.extend(_function(rng, function_index))
    return "\n".join(out) + "\n"


def _function(rng: random.Random, index: int) -> list[str]:
    params = ", ".join(
        f"{rng.choice(_TYPES)} {'*' if rng.random() < 0.25 else ''}a{i}"
        for i in range(rng.randint(0, 3))
    ) or "void"
    lines = [f"int fn{index}({params}) {{"]
    for statement in [_statement(rng, 0) for _ in range(rng.randint(3, 8))]:
        lines.append("    " + statement)
    lines.append(f"    return {_expression(rng, 1)};")
    lines.append("}")
    return lines


def _statement(rng: random.Random, depth: int) -> str:
    roll = rng.random()
    name = rng.choice(_NAMES)
    if depth < 2 and roll < 0.14:
        inner = " ".join(_statement(rng, depth + 1) for _ in range(rng.randint(1, 2)))
        tail = f" else {{ {_statement(rng, depth + 1)} }}" if rng.random() < 0.35 else ""
        return f"if ({_expression(rng, depth + 1)}) {{ {inner} }}{tail}"
    if depth < 2 and roll < 0.24:
        inner = " ".join(_statement(rng, depth + 1) for _ in range(rng.randint(1, 2)))
        return (
            f"for ({name} = 0; {name} < {rng.randint(2, 64)}; {name} += 1) {{ {inner} }}"
        )
    if depth < 2 and roll < 0.30:
        return f"while ({_expression(rng, depth + 1)}) {{ {_statement(rng, depth + 1)} }}"
    if depth < 2 and roll < 0.34:
        return f"do {{ {_statement(rng, depth + 1)} }} while ({_expression(rng, depth + 1)});"
    if roll < 0.48:
        pointer = "*" if rng.random() < 0.2 else ""
        return f"{rng.choice(_TYPES)} {pointer}{name} = {_expression(rng, depth + 1)};"
    if roll < 0.58:
        args = ", ".join(_expression(rng, depth + 2) for _ in range(rng.randint(0, 3)))
        return f"fn{rng.randint(0, 9)}({args});"
    op = rng.choice(("=", "+=", "-=", "*=", "&=", "|="))
    return f"{name} {op} {_expression(rng, depth + 1)};"


def _expression(rng: random.Random, depth: int) -> str:
    if depth >= 4 or rng.random() < 0.35:
        return _primary(rng, depth)
    roll = rng.random()
    if roll < 0.55:
        op = rng.choice(_BINOPS)
        return f"{_expression(rng, depth + 1)} {op} {_expression(rng, depth + 1)}"
    if roll < 0.62:
        return f"({_expression(rng, depth + 1)} ? {_expression(rng, depth + 1)} : {_expression(rng, depth + 1)})"
    if roll < 0.72:
        args = ", ".join(_expression(rng, depth + 2) for _ in range(rng.randint(0, 2)))
        return f"fn{rng.randint(0, 9)}({args})"
    if roll < 0.80:
        return f"{rng.choice(_NAMES)}[{_expression(rng, depth + 1)}]"
    if roll < 0.88:
        return f"(* {rng.choice(_NAMES)})"
    return f"(~ {_primary(rng, depth)})"


def _primary(rng: random.Random, depth: int) -> str:
    roll = rng.random()
    if roll < 0.30:
        return str(rng.randint(0, 1 << 20))
    if roll < 0.38:
        return f"0x{rng.randint(0, 1 << 16):x}"
    if roll < 0.46:
        return f"{rng.randint(0, 99)}.{rng.randint(0, 99)}"
    if roll < 0.72:
        return rng.choice(_NAMES)
    if roll < 0.80:
        return f"{rng.choice(_NAMES)}->next"
    if roll < 0.88:
        return f'"c{rng.randint(0, 999)}"'
    return f"'{chr(rng.randint(97, 122))}'"
