"""Random JSON document generator."""

from __future__ import annotations

import random

_WORDS = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta")


def generate_json_document(
    size: int = 10,
    seed: int = 42,
    max_depth: int = 5,
    rng: random.Random | None = None,
) -> str:
    """Generate a JSON document with roughly ``size`` top-level members.

    ``rng`` (if given) overrides ``seed``; see
    :func:`repro.workloads.generate_jay_program`.
    """
    if rng is None:
        rng = random.Random(seed)
    members = ", ".join(
        f'"{rng.choice(_WORDS)}{i}": {_value(rng, 1, max_depth)}' for i in range(max(1, size))
    )
    return "{" + members + "}"


def _value(rng: random.Random, depth: int, max_depth: int) -> str:
    roll = rng.random()
    if depth >= max_depth or roll < 0.45:
        return _scalar(rng)
    if roll < 0.75:
        items = ", ".join(
            _value(rng, depth + 1, max_depth) for _ in range(rng.randint(0, 4))
        )
        return f"[{items}]"
    members = ", ".join(
        f'"{rng.choice(_WORDS)}{i}": {_value(rng, depth + 1, max_depth)}'
        for i in range(rng.randint(0, 4))
    )
    return "{" + members + "}"


def _scalar(rng: random.Random) -> str:
    roll = rng.random()
    if roll < 0.3:
        return str(rng.randint(-10000, 10000))
    if roll < 0.5:
        return f"{rng.uniform(-100, 100):.4f}"
    if roll < 0.55:
        return f"{rng.randint(1, 9)}e{rng.randint(-8, 8)}"
    if roll < 0.8:
        return f'"{rng.choice(_WORDS)} {rng.randint(0, 99)}"'
    return rng.choice(("true", "false", "null"))
