"""Deterministic synthetic workload generators.

The paper evaluates on corpora of real Java and C sources; offline we
substitute seeded pseudo-random program generators with realistic token
mixes and nesting (documented in DESIGN.md).  All generators take a
``seed`` so every benchmark run sees exactly the same inputs, and accept an
explicit ``rng`` (:class:`random.Random`) when a caller — e.g. the
differential fuzz harness in :mod:`repro.difftest` — wants to drive many
generators from one reproducible stream.
"""

from repro.workloads.jaygen import generate_jay_program
from repro.workloads.cgen import generate_c_program
from repro.workloads.jsongen import generate_json_document
from repro.workloads.pylayout import LayoutError, python_layout
from repro.workloads.pycorpus import (
    ALLOWLIST,
    CORPUS_DIR,
    CorpusDecodeError,
    CorpusReport,
    decode_python_source,
    load_corpus,
    run_corpus,
    source_encoding,
)
from repro.workloads.pathological import (
    SLOW_REQUEST_DEPTH,
    backtracking_grammar,
    backtracking_input,
    exponential_grammar,
    exponential_options,
    exponential_setup,
    slow_request_input,
)

__all__ = [
    "generate_jay_program",
    "generate_c_program",
    "generate_json_document",
    "python_layout",
    "LayoutError",
    "ALLOWLIST",
    "CORPUS_DIR",
    "CorpusDecodeError",
    "CorpusReport",
    "decode_python_source",
    "load_corpus",
    "run_corpus",
    "source_encoding",
    "backtracking_grammar",
    "backtracking_input",
    "exponential_grammar",
    "exponential_options",
    "exponential_setup",
    "slow_request_input",
    "SLOW_REQUEST_DEPTH",
]
