"""Deterministic edit scripts over source text (the incremental workload).

Incremental reparsing (``docs/incremental.md``) is measured and property-
tested against *edit scripts*: sequences of ``(offset, removed, inserted)``
edits applied one at a time to an evolving buffer.  This module generates
them deterministically from a seed, so benchmark E12 and the differential
``edits`` fuzz mode replay identical workloads on every run:

- :func:`rename_edits` — same-length identifier renames (the canonical
  token-level editor action E12 times): pick an identifier occurrence,
  mutate one character, never producing a keyword.  Length-preserving, so
  memo relocation is pure invalidation with no column motion.
- :func:`edit_script` — mixed insert/delete/replace edits at token
  boundaries *and* mid-token, with inserted text sampled from the buffer's
  own token vocabulary.  This is the adversarial diet the differential
  oracle feeds on: edits that straddle token boundaries are exactly where
  a stale memo entry would survive by accident.
- :func:`corpus_texts` — layout-preprocessed real-Python stdlib sources
  (:mod:`repro.workloads.pycorpus`), the at-scale substrate for both.

Every function takes a :class:`random.Random` the caller seeds; nothing
here reads global randomness.
"""

from __future__ import annotations

import keyword
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.workloads.pycorpus import ALLOWLIST, CORPUS_DIR, load_corpus
from repro.workloads.pylayout import LayoutError, python_layout

#: Identifiers a rename must never produce (or it would change parse
#: structure on purpose rather than by defect).
PY_KEYWORDS = frozenset(keyword.kwlist)

#: A lexer-ish split good enough for edit placement: identifiers, numbers,
#: runs of whitespace, and single punctuation characters.
_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|[0-9]+|\s+|.", re.DOTALL)

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

_LETTERS = "abcdefghijklmnopqrstuvwxyz"


@dataclass(frozen=True)
class Edit:
    """One buffer edit: replace ``removed`` characters at ``offset`` with
    ``inserted`` — the exact argument shape of
    :meth:`repro.incremental.IncrementalSession.apply_edit`."""

    offset: int
    removed: int
    inserted: str

    def apply(self, text: str) -> str:
        return text[: self.offset] + self.inserted + text[self.offset + self.removed :]


def identifier_spans(text: str, *, exclude: frozenset = PY_KEYWORDS) -> list[tuple[int, int]]:
    """``(start, end)`` spans of every non-keyword identifier in ``text``."""
    return [
        match.span()
        for match in _IDENT_RE.finditer(text)
        if match.group() not in exclude
    ]


def rename_identifier(text: str, rng, *, exclude: frozenset = PY_KEYWORDS) -> Edit | None:
    """A same-length rename of one identifier occurrence, or None if the
    text has no eligible identifier.

    One character of the name is rotated through the alphabet until the
    result is a fresh non-keyword identifier, so the edit is token-level,
    length-preserving, and never an accidental no-op.
    """
    spans = identifier_spans(text, exclude=exclude)
    if not spans:
        return None
    start, end = spans[rng.randrange(len(spans))]
    name = text[start:end]
    index = rng.randrange(len(name))
    for step in range(1, len(_LETTERS) + 1):
        old = name[index].lower()
        base = _LETTERS.index(old) if old in _LETTERS else 0
        candidate_char = _LETTERS[(base + step) % len(_LETTERS)]
        candidate = name[:index] + candidate_char + name[index + 1 :]
        if candidate != name and candidate not in exclude and not candidate[0].isdigit():
            return Edit(start, len(name), candidate)
    return None


def rename_edits(text: str, rng, count: int, *, exclude: frozenset = PY_KEYWORDS) -> Iterator[Edit]:
    """``count`` sequential same-length identifier renames over an evolving
    buffer (each edit's offsets refer to the text after the previous one)."""
    current = text
    for _ in range(count):
        edit = rename_identifier(current, rng, exclude=exclude)
        if edit is None:
            return
        yield edit
        current = edit.apply(current)


def _token_spans(text: str) -> list[tuple[int, int]]:
    return [match.span() for match in _TOKEN_RE.finditer(text)]


def random_edit(text: str, rng) -> Edit:
    """One random insert/delete/replace over ``text``.

    Half the edits land on token boundaries (insert a sampled token, delete
    or replace a whole token); the rest are mid-token character surgery.
    Inserted material is drawn from the buffer's own token vocabulary, so a
    useful fraction of edited buffers still parse.
    """
    spans = _token_spans(text)
    if not spans:
        return Edit(0, 0, rng.choice((" ", "x", "0")))
    vocabulary = [text[s:e] for s, e in spans]
    op = rng.choice(("insert", "delete", "replace", "mid-insert", "mid-delete", "mid-replace"))
    start, end = spans[rng.randrange(len(spans))]
    if op == "insert":
        boundary = rng.choice((start, end))
        return Edit(boundary, 0, rng.choice(vocabulary))
    if op == "delete":
        return Edit(start, end - start, "")
    if op == "replace":
        return Edit(start, end - start, rng.choice(vocabulary))
    # Mid-token: offsets strictly inside a (multi-character) token when one
    # exists; degrade to boundary edits otherwise.
    offset = rng.randint(start, max(start, end - 1))
    if op == "mid-insert":
        return Edit(offset, 0, rng.choice(vocabulary)[:1] or "x")
    removed = min(rng.randint(1, 2), len(text) - offset)
    if removed <= 0:
        return Edit(offset, 0, "x")
    if op == "mid-delete":
        return Edit(offset, removed, "")
    return Edit(offset, removed, rng.choice(vocabulary)[: rng.randint(1, 2)] or "x")


def edit_script(text: str, rng, count: int) -> list[Edit]:
    """A deterministic ``count``-edit script over an evolving buffer.

    Each edit's offsets refer to the buffer state after all previous edits
    (apply them in order with :meth:`Edit.apply`).  This is the workload
    the ``edits`` differential-fuzz mode replays against cold parses.
    """
    edits: list[Edit] = []
    current = text
    for _ in range(count):
        edit = random_edit(current, rng)
        edits.append(edit)
        current = edit.apply(current)
    return edits


def apply_script(text: str, edits: list[Edit]) -> str:
    """The buffer after applying ``edits`` in order."""
    for edit in edits:
        text = edit.apply(text)
    return text


def corpus_texts(
    *,
    root: Path | str = CORPUS_DIR,
    limit: int | None = None,
    max_chars: int | None = None,
) -> list[tuple[str, str]]:
    """``(name, layouted_text)`` for parseable real-Python corpus files.

    Allowlisted files (known not to parse) and layout failures are skipped:
    edit workloads need buffers whose *initial* state parses.  ``limit``
    caps the file count, ``max_chars`` the per-file size — benchmarks use
    both to keep run time bounded.
    """
    files, _ = load_corpus(root)
    texts: list[tuple[str, str]] = []
    for cf in files:
        if cf.name in ALLOWLIST:
            continue
        try:
            layouted = python_layout(cf.text)
        except LayoutError:
            continue
        if max_chars is not None and len(layouted) > max_chars:
            continue
        texts.append((cf.name, layouted))
        if limit is not None and len(texts) >= limit:
            break
    return texts
