"""Random Jay program generator.

Produces syntactically valid Jay source with a realistic mix of
declarations, control flow and expressions.  ``size`` scales the number of
classes/methods/statements roughly linearly with output length.  The
output stays inside the subset shared by the grammar and the hand-written
baseline parser, so all backends can be benchmarked on identical inputs.
"""

from __future__ import annotations

import random

_TYPES = ("int", "boolean", "char", "int[]", "Widget", "Point")
_NAMES = ("alpha", "beta", "gamma", "delta", "count", "total", "index", "value", "result", "flag")
_FIELDS = ("size", "next", "data", "left", "right")
_BINOPS = ("+", "-", "*", "/", "%", "<", ">", "<=", ">=", "==", "!=", "&&", "||")


def generate_jay_program(
    size: int = 10, seed: int = 42, rng: random.Random | None = None
) -> str:
    """Generate a Jay compilation unit of roughly ``size`` methods.

    Pass an explicit ``rng`` to draw from a caller-owned random stream
    (the fuzz harness shares one :class:`random.Random` across generators);
    otherwise a private stream seeded with ``seed`` is used, so repeated
    calls with the same arguments produce identical programs.
    """
    if rng is None:
        rng = random.Random(seed)
    out: list[str] = []
    out.append("package bench.generated;")
    out.append("import java.util.List;")
    classes = max(1, size // 4)
    methods_left = max(1, size)
    for class_index in range(classes):
        out.append("")
        extends = " extends Base" if rng.random() < 0.3 else ""
        out.append(f"public class Gen{class_index}{extends} {{")
        for field_index in range(rng.randint(1, 3)):
            ftype = rng.choice(_TYPES)
            out.append(f"    static {ftype} field{field_index} = {_expression(rng, 1)};")
        per_class = max(1, methods_left // (classes - class_index))
        methods_left -= per_class
        for method_index in range(per_class):
            out.extend(_method(rng, method_index))
        out.append("}")
    return "\n".join(out) + "\n"


def _method(rng: random.Random, index: int) -> list[str]:
    params = ", ".join(
        f"{rng.choice(_TYPES)} p{i}" for i in range(rng.randint(0, 3))
    )
    rtype = rng.choice(("void",) + _TYPES)
    lines = [f"    public {rtype} method{index}({params}) {{"]
    for statement in _statements(rng, rng.randint(3, 8), depth=0):
        lines.append("        " + statement)
    if rtype != "void":
        lines.append(f"        return {_expression(rng, 1)};")
    lines.append("    }")
    return lines


def _statements(rng: random.Random, count: int, depth: int) -> list[str]:
    return [_statement(rng, depth) for _ in range(count)]


def _statement(rng: random.Random, depth: int) -> str:
    roll = rng.random()
    name = rng.choice(_NAMES)
    if depth < 2 and roll < 0.15:
        body = " ".join(_statements(rng, rng.randint(1, 2), depth + 1))
        return f"if ({_expression(rng, depth + 1)}) {{ {body} }}" + (
            f" else {{ {_statement(rng, depth + 1)} }}" if rng.random() < 0.4 else ""
        )
    if depth < 2 and roll < 0.25:
        body = " ".join(_statements(rng, rng.randint(1, 2), depth + 1))
        return (
            f"for (int {name} = 0; {name} < {rng.randint(2, 100)}; "
            f"{name} = {name} + 1) {{ {body} }}"
        )
    if depth < 2 and roll < 0.32:
        return f"while ({_expression(rng, depth + 1)}) {{ {_statement(rng, depth + 1)} }}"
    if roll < 0.45:
        return f"{rng.choice(_TYPES)} {name} = {_expression(rng, depth + 1)};"
    if roll < 0.55:
        args = ", ".join(_expression(rng, depth + 2) for _ in range(rng.randint(0, 3)))
        return f"this.process{rng.randint(0, 9)}({args});"
    return f"{name} = {_expression(rng, depth + 1)};"


def _expression(rng: random.Random, depth: int) -> str:
    if depth >= 4 or rng.random() < 0.35:
        return _primary(rng, depth)
    roll = rng.random()
    if roll < 0.55:
        op = rng.choice(_BINOPS)
        return f"{_expression(rng, depth + 1)} {op} {_expression(rng, depth + 1)}"
    if roll < 0.65:
        return f"(able ? {_expression(rng, depth + 1)} : {_expression(rng, depth + 1)})"
    if roll < 0.75:
        args = ", ".join(_expression(rng, depth + 2) for _ in range(rng.randint(0, 2)))
        return f"{rng.choice(_NAMES)}.compute({args})"
    if roll < 0.85:
        return f"{rng.choice(_NAMES)}[{_expression(rng, depth + 1)}]"
    return f"(- {_primary(rng, depth)})"


def _primary(rng: random.Random, depth: int) -> str:
    roll = rng.random()
    if roll < 0.35:
        return str(rng.randint(0, 9999))
    if roll < 0.45:
        return f"{rng.randint(1, 99)}.{rng.randint(0, 99)}"
    if roll < 0.70:
        return rng.choice(_NAMES)
    if roll < 0.80:
        return f"{rng.choice(_NAMES)}.{rng.choice(_FIELDS)}"
    if roll < 0.88:
        return f'"s{rng.randint(0, 999)}"'
    return rng.choice(("true", "false", "null", "this", "new Widget()", "new int[8]"))
