"""Pathological backtracking workloads (experiment E4).

The witness grammar makes a naive (non-memoizing) PEG parser exponential
while a packrat parser stays linear::

    Expr ← Term "+" Expr / Term "-" Expr / Term
    Term ← "(" Expr ")" / [0-9]

On the input ``(((…(1)…)))`` — ``depth`` nested parentheses and no
operators — every ``Expr`` application parses its ``Term`` three times
(once per alternative, since "+" and "-" always fail after it), and each
``Term`` recursively contains another ``Expr``: T(d) ≈ 3·T(d−1), i.e.
Θ(3^d) without memoization.  A packrat parser computes each
⟨production, position⟩ pair once and is Θ(d).

This is exactly Ford's motivating example for packrat parsing, which the
paper's parsers inherit.
"""

from __future__ import annotations

from repro.peg.builder import GrammarBuilder, cc, lit, ref, alt, bang, any_
from repro.peg.grammar import Grammar


def backtracking_grammar() -> Grammar:
    """``Expr ← Term "+" Expr / Term "-" Expr / Term`` with EOF anchor."""
    builder = GrammarBuilder("pathological", start="Start")
    builder.void("Start", [ref("Expr"), bang(any_())])
    builder.void(
        "Expr",
        [ref("Term"), lit("+"), ref("Expr")],
        [ref("Term"), lit("-"), ref("Expr")],
        [ref("Term")],
    )
    builder.void(
        "Term",
        [lit("("), ref("Expr"), lit(")")],
        [cc("0-9")],
    )
    return builder.build()


def backtracking_input(depth: int) -> str:
    """``depth`` nested parentheses around a single digit."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    return "(" * depth + "1" + ")" * depth
