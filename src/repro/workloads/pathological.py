"""Pathological backtracking workloads (experiment E4).

The witness grammar makes a naive (non-memoizing) PEG parser exponential
while a packrat parser stays linear::

    Expr ← Term "+" Expr / Term "-" Expr / Term
    Term ← "(" Expr ")" / [0-9]

On the input ``(((…(1)…)))`` — ``depth`` nested parentheses and no
operators — every ``Expr`` application parses its ``Term`` three times
(once per alternative, since "+" and "-" always fail after it), and each
``Term`` recursively contains another ``Expr``: T(d) ≈ 3·T(d−1), i.e.
Θ(3^d) without memoization.  A packrat parser computes each
⟨production, position⟩ pair once and is Θ(d).

This is exactly Ford's motivating example for packrat parsing, which the
paper's parsers inherit.
"""

from __future__ import annotations

from repro.peg.builder import GrammarBuilder, cc, lit, ref, alt, bang, any_
from repro.peg.grammar import Grammar


def backtracking_grammar() -> Grammar:
    """``Expr ← Term "+" Expr / Term "-" Expr / Term`` with EOF anchor."""
    builder = GrammarBuilder("pathological", start="Start")
    builder.void("Start", [ref("Expr"), bang(any_())])
    builder.void(
        "Expr",
        [ref("Term"), lit("+"), ref("Expr")],
        [ref("Term"), lit("-"), ref("Expr")],
        [ref("Term")],
    )
    builder.void(
        "Term",
        [lit("("), ref("Expr"), lit(")")],
        [cc("0-9")],
    )
    return builder.build()


def backtracking_input(depth: int) -> str:
    """``depth`` nested parentheses around a single digit."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    return "(" * depth + "1" + ")" * depth


# -- the canonical "slow request" ------------------------------------------------
#
# The serve subsystem's timeout/watchdog tests need a request that reliably
# burns CPU for seconds without sleeping (a sleeping worker would pass a
# watchdog test without proving the watchdog can interrupt real work).  The
# witness grammar above provides exactly that — *if* memoization is off.
# ``exponential_grammar`` marks every production ``transient`` and
# ``exponential_options`` keeps only the ``transient`` optimization enabled
# (the terminal/prefix optimizations would otherwise fold the three
# ``Term``-prefixed alternatives and defeat the blow-up), so the generated
# parser re-derives Θ(3^depth) work.  Measured on one 2026 core: depth 10
# ≈ 0.1 s and ×3 per extra level, so ``SLOW_REQUEST_DEPTH`` is minutes of
# CPU — any sane service timeout fires long before it completes.


#: Nesting depth whose exponential parse outlives any reasonable timeout.
SLOW_REQUEST_DEPTH = 18


def exponential_grammar() -> Grammar:
    """The backtracking witness with every production ``transient``."""
    builder = GrammarBuilder("pathological", start="Start")
    builder.void("Start", [ref("Expr"), bang(any_())], transient=True)
    builder.void(
        "Expr",
        [ref("Term"), lit("+"), ref("Expr")],
        [ref("Term"), lit("-"), ref("Expr")],
        [ref("Term")],
        transient=True,
    )
    builder.void(
        "Term",
        [lit("("), ref("Expr"), lit(")")],
        [cc("0-9")],
        transient=True,
    )
    return builder.build()


def exponential_options():
    """Options under which :func:`exponential_grammar` stays exponential."""
    from repro.optim import Options

    return Options.none().with_flags(transient=True)


def exponential_setup():
    """``(grammar, options)`` pair for a :class:`repro.serve.GrammarSpec`
    factory — the canonical hung-request workload for service tests."""
    return exponential_grammar(), exponential_options()


def slow_request_input(depth: int = SLOW_REQUEST_DEPTH) -> str:
    """An input that the exponential parser will not finish in practice."""
    return backtracking_input(depth)
