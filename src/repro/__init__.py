"""repro — modular PEG grammars and packrat parser generation.

A from-scratch Python reproduction of the system described in *"Better
Extensibility through Modular Syntax"* (Robert Grimm, PLDI 2006): a parser
generator for **modular parsing expression grammars** producing **packrat
parsers**, with

- a grammar **module system** (imports, parameterized modules,
  modifications ``+= := -=``) so language extensions are deltas, not forks;
- declarative **semantic values** (generic AST nodes, text and void
  productions);
- automatic handling of **direct left recursion**; and
- the paper's **optimization suite** (chunked memoization, grammar and
  prefix folding, terminal dispatch, transient productions, iterative
  repetitions, cost-based inlining, cheap error tracking).

Quickstart::

    import repro

    lang = repro.compile_grammar("calc.Calculator")  # built-in demo grammar
    print(lang.parse("1 + 2 * (3 - 4)"))

See :mod:`repro.api` for the high-level interface, ``DESIGN.md`` for the
system inventory, and ``EXPERIMENTS.md`` for the reproduced evaluation.
"""

from repro.api import (
    Language,
    ParseSession,
    clear_language_cache,
    compile_grammar,
    language_cache_info,
    load_grammar,
    parse,
)
from repro.cache import CompilationCache
from repro.errors import (
    AnalysisError,
    CodegenError,
    CompositionError,
    GrammarSyntaxError,
    ParseError,
    ReproError,
)
from repro.meta import ModuleLoader, parse_module
from repro.modules import compose
from repro.optim import Options, prepare
from repro.peg import Grammar, ValueKind
from repro.profile import CoverageMatrix, ParseProfile, ProfileReport, profile_corpus
from repro.runtime import GNode

__version__ = "1.0.0"

__all__ = [
    "Language", "ParseSession", "compile_grammar", "load_grammar", "parse",
    "CompilationCache", "clear_language_cache", "language_cache_info",
    "AnalysisError", "CodegenError", "CompositionError",
    "GrammarSyntaxError", "ParseError", "ReproError",
    "ModuleLoader", "parse_module", "compose",
    "Options", "prepare", "Grammar", "ValueKind", "GNode",
    "ParseProfile", "CoverageMatrix", "ProfileReport", "profile_corpus",
    "__version__",
]
