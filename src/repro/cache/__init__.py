"""Compilation caching: on-disk artifacts and in-process language reuse.

See ``docs/caching.md`` for the cache key, layout, and invalidation rules.
"""

from repro.cache.disk import (
    CACHE_VERSION,
    CachedCompilation,
    CacheStats,
    CompilationCache,
    default_cache_dir,
    module_fingerprint,
)

__all__ = [
    "CACHE_VERSION",
    "CachedCompilation",
    "CacheStats",
    "CompilationCache",
    "default_cache_dir",
    "module_fingerprint",
]
