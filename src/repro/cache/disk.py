"""Persistent compilation cache: content-fingerprinted on-disk artifacts.

Compiling a grammar (compose → analyze → optimize → codegen → ``exec``)
costs orders of magnitude more than parsing typical inputs with the result.
:class:`CompilationCache` memoizes the expensive part on disk so the second
process that asks for ``jay.Jay`` gets a ready-to-use parser near-instantly.

Each entry is one pickle file ``<key>.pkl`` under the cache directory::

    key = sha256(cache layout version | package version | interpreter tag |
                 pipeline version | root | start | parser name | options)

holding the composed :class:`~repro.peg.grammar.Grammar`, the
:class:`~repro.optim.pipeline.PreparedGrammar`, the generated parser
source, a ``marshal``-ed code object of that source (skipping re-``compile``
of ~200 KB of Python is most of the warm-path win), and a **content
fingerprint**: the sha256 of every participating ``.mg`` module text.

Lookups are defensive by construction:

- the fingerprint is re-validated against the *current* module texts on
  every hit, so editing any ``.mg`` file invalidates the entry;
- version or interpreter mismatches silently miss (and replace on store);
- unreadable, truncated, or structurally bogus entries are **discarded and
  rebuilt, never trusted** — each such event is recorded in
  :attr:`CompilationCache.warnings` so tools can surface (and ``--strict``
  runs can fail on) corruption.

The cache directory defaults to ``$REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``.  Entries are pickles:
only point the cache at directories you trust as much as your code.
"""

from __future__ import annotations

import hashlib
import marshal
import os
import pickle
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from types import ModuleType
from typing import Any

from repro.errors import CompositionError
from repro.meta.loader import ModuleLoader
from repro.optim.options import Options
from repro.optim.pipeline import PIPELINE_VERSION, PreparedGrammar
from repro.peg.grammar import Grammar

#: Bump when the entry layout changes; old entries then miss and are replaced.
CACHE_VERSION = 1


def default_cache_dir() -> Path:
    """Resolve the cache directory from the environment."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return Path(explicit)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def _package_version() -> str:
    import repro

    return repro.__version__


def _text_sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def module_fingerprint(loader: ModuleLoader, names: tuple[str, ...] | list[str]) -> dict[str, str]:
    """``{module name: sha256 of its current source text}`` via ``loader``.

    Raises :class:`~repro.errors.CompositionError` when a module has
    disappeared — callers treat that as a cache miss.
    """
    return {name: _text_sha(loader.source_text(name)) for name in sorted(names)}


@dataclass
class CacheStats:
    """Counters for one :class:`CompilationCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0  # stale (fingerprint/version) entries discarded
    corrupt: int = 0  # unreadable/bogus entries discarded

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "corrupt": self.corrupt,
        }

    def __str__(self) -> str:
        return (
            f"{self.hits} hit(s), {self.misses} miss(es), {self.stores} store(s), "
            f"{self.invalidations} invalidation(s), {self.corrupt} corrupt"
        )


@dataclass(frozen=True)
class CachedCompilation:
    """A validated cache hit, ready to back a :class:`repro.api.Language`."""

    grammar: Grammar
    prepared: PreparedGrammar
    parser_source: str
    parser_class: type
    key: str
    #: ``{module name: sha256}`` the hit was validated against.
    fingerprint: dict[str, str] = field(default_factory=dict)


@dataclass
class CompilationCache:
    """On-disk memoization of ``compile_grammar`` results.

    One instance may serve many lookups; :attr:`stats` and
    :attr:`warnings` accumulate across them.
    """

    directory: Path = field(default_factory=default_cache_dir)
    stats: CacheStats = field(default_factory=CacheStats)
    warnings: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)

    # -- keys ------------------------------------------------------------------

    def key_for(
        self,
        root: str,
        options: Options,
        start: str | None,
        parser_name: str,
    ) -> str:
        """Stable entry key for one (root, options, start, parser name)."""
        descriptor = "\n".join(
            [
                f"cache={CACHE_VERSION}",
                f"package={_package_version()}",
                f"python={sys.implementation.cache_tag}",
                f"pipeline={PIPELINE_VERSION}",
                f"root={root}",
                f"start={start or ''}",
                f"parser={parser_name}",
                f"options={options.cache_key()}",
            ]
        )
        return hashlib.sha256(descriptor.encode("utf-8")).hexdigest()

    def _entry_path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    # -- lookup ----------------------------------------------------------------

    def lookup(
        self,
        root: str,
        options: Options,
        start: str | None,
        parser_name: str,
        loader: ModuleLoader,
    ) -> CachedCompilation | None:
        """Return a validated entry, or ``None`` (recording why) on miss."""
        key = self.key_for(root, options, start, parser_name)
        path = self._entry_path(key)
        if not path.is_file():
            self.stats.misses += 1
            return None
        try:
            with path.open("rb") as handle:
                entry = pickle.load(handle)
            self._validate_shape(entry)
        except Exception as exc:  # noqa: BLE001 - any failure means "rebuild"
            self._discard(path, f"corrupt cache entry {path.name}: {exc}")
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        if not self._versions_match(entry):
            # Routine staleness (upgraded package/interpreter), not corruption.
            self._discard(path, None)
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        try:
            current = module_fingerprint(loader, tuple(entry["fingerprint"]))
        except CompositionError:
            current = None  # a participating module vanished
        if current != entry["fingerprint"]:
            self._discard(path, None)
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        try:
            parser_class = self._load_parser_class(entry, parser_name)
        except Exception as exc:  # noqa: BLE001
            self._discard(path, f"corrupt cache entry {path.name}: parser code failed to load: {exc}")
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return CachedCompilation(
            grammar=entry["grammar"],
            prepared=entry["prepared"],
            parser_source=entry["source"],
            parser_class=parser_class,
            key=key,
            fingerprint=dict(entry["fingerprint"]),
        )

    @staticmethod
    def _validate_shape(entry: Any) -> None:
        if not isinstance(entry, dict):
            raise TypeError(f"expected a dict entry, got {type(entry).__name__}")
        required = {
            "cache_version", "package_version", "py_tag", "pipeline_version",
            "fingerprint", "grammar", "prepared", "source", "code",
        }
        missing = required - set(entry)
        if missing:
            raise KeyError(f"missing fields: {', '.join(sorted(missing))}")
        if not isinstance(entry["fingerprint"], dict):
            raise TypeError("fingerprint must be a dict")
        if not isinstance(entry["grammar"], Grammar) or not isinstance(
            entry["prepared"], PreparedGrammar
        ):
            raise TypeError("grammar payload has the wrong type")

    @staticmethod
    def _versions_match(entry: dict) -> bool:
        return (
            entry["cache_version"] == CACHE_VERSION
            and entry["package_version"] == _package_version()
            and entry["py_tag"] == sys.implementation.cache_tag
            and entry["pipeline_version"] == PIPELINE_VERSION
        )

    @staticmethod
    def _load_parser_class(entry: dict, parser_name: str) -> type:
        code = marshal.loads(entry["code"])
        module = ModuleType(f"repro_cached_parser_{entry['cache_version']}")
        exec(code, module.__dict__)  # noqa: S102 - our own generated code
        return getattr(module, parser_name)

    def _discard(self, path: Path, warning: str | None) -> None:
        if warning is not None:
            self.warnings.append(warning)
        try:
            path.unlink()
        except OSError:
            pass

    # -- store -----------------------------------------------------------------

    def store(
        self,
        root: str,
        options: Options,
        start: str | None,
        parser_name: str,
        loader: ModuleLoader,
        modules: tuple[str, ...],
        grammar: Grammar,
        prepared: PreparedGrammar,
        parser_source: str,
    ) -> str | None:
        """Persist one compilation; returns the entry key (None on failure).

        Store failures (unwritable directory, unpicklable payload) are
        recorded as warnings but never break compilation itself.
        """
        key = self.key_for(root, options, start, parser_name)
        try:
            code = compile(parser_source, f"<cached:{root}>", "exec")
            entry = {
                "cache_version": CACHE_VERSION,
                "package_version": _package_version(),
                "py_tag": sys.implementation.cache_tag,
                "pipeline_version": PIPELINE_VERSION,
                "root": root,
                "start": start,
                "parser_name": parser_name,
                "fingerprint": module_fingerprint(loader, modules),
                "grammar": grammar,
                "prepared": prepared,
                "source": parser_source,
                "code": marshal.dumps(code),
            }
            self.directory.mkdir(parents=True, exist_ok=True)
            # Atomic publish: a concurrent reader sees the old entry or the
            # new one, never a torn write.
            fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, self._entry_path(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except Exception as exc:  # noqa: BLE001 - caching is best-effort
            self.warnings.append(f"could not store cache entry for {root!r}: {exc}")
            return None
        self.stats.stores += 1
        return key

    # -- introspection -----------------------------------------------------------

    def entries(self) -> list[dict[str, Any]]:
        """Describe every entry in the cache directory (for ``repro-stats``).

        Unreadable entries are reported with ``"status": "corrupt"`` (and a
        warning recorded) rather than raised.
        """
        rows: list[dict[str, Any]] = []
        if not self.directory.is_dir():
            return rows
        for path in sorted(self.directory.glob("*.pkl")):
            row: dict[str, Any] = {
                "key": path.stem[:12],
                "size_kb": max(1, path.stat().st_size // 1024),
            }
            try:
                with path.open("rb") as handle:
                    entry = pickle.load(handle)
                self._validate_shape(entry)
            except Exception as exc:  # noqa: BLE001
                self.warnings.append(f"corrupt cache entry {path.name}: {exc}")
                self.stats.corrupt += 1
                row.update(root="?", modules=0, status="corrupt")
                rows.append(row)
                continue
            row.update(
                root=entry.get("root", "?"),
                modules=len(entry["fingerprint"]),
                status="ok" if self._versions_match(entry) else "stale",
            )
            rows.append(row)
        return rows

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
