"""Worker-process side of the parse service.

Each worker owns one pipe endpoint and loops: receive a request, parse it
with a warm per-grammar :class:`~repro.api.ParseSession` (memo ``reset()``
between requests, never reallocation), send back a structured
:class:`~repro.serve.messages.ParseResult`.  Languages are compiled lazily
per grammar key on first use; with a ``fork`` start method the parent's
in-process LRU is inherited so this is a dictionary hit, and with ``spawn``
the on-disk :class:`~repro.cache.CompilationCache` (``cache_dir``) makes it
a deserialization, not a compile.

Failure philosophy — *the request fails, the worker survives*:

- a :class:`~repro.errors.ParseError` becomes a ``parse_error`` result with
  full source offsets;
- any other exception becomes an ``error`` result and the grammar's session
  is dropped (rebuilt on next use) in case it was left inconsistent;
- a semantic value the pipe cannot pickle degrades to an ``ok`` result
  without the value (plus a ``detail`` saying so) rather than killing the
  connection.

What a worker cannot survive — being killed by the parent's watchdog, the
OS, or a hard crash — surfaces parent-side as ``timeout``/``worker_lost``.
"""

from __future__ import annotations

import sys
import time
from typing import Any

from repro.errors import ParseError, ReproError
from repro.serve import messages
from repro.serve.messages import ParseErrorInfo, ParseRequest, ParseResult
from repro.serve.spec import GrammarSpec

#: Parent → worker message kinds.
MSG_PARSE = "parse"
MSG_WARM = "warm"
MSG_STOP = "stop"

#: Hard recursion ceiling of a worker process (matches the benchmarks).
WORKER_RECURSION_LIMIT = 100_000

#: Default per-parse depth budget (stack frames above the parse entry).
#: Deliberately far below :data:`WORKER_RECURSION_LIMIT`: a request that
#: exhausts the budget degrades into a structured ``parse_error`` result
#: (:class:`~repro.errors.ParseDepthError`), with the ceiling left as head
#: room for building that diagnostic — the worker never dies at the limit.
DEFAULT_DEPTH_BUDGET = 50_000


class WorkerRuntime:
    """Per-process state: compiled languages and warm sessions."""

    def __init__(
        self,
        specs: dict[str, GrammarSpec],
        cache_dir: str | None,
        depth_budget: int | None = DEFAULT_DEPTH_BUDGET,
    ):
        self._specs = specs
        self._cache_dir = cache_dir
        self._depth_budget = depth_budget
        self._languages: dict[str, Any] = {}
        self._sessions: dict[tuple[str, str | None], Any] = {}

    def language(self, key: str):
        language = self._languages.get(key)
        if language is None:
            spec = self._specs[key]
            language = spec.compile(cache_dir=self._cache_dir)
            self._languages[key] = language
        return language

    def session(self, key: str, start: str | None):
        session = self._sessions.get((key, start))
        if session is None:
            session = self.language(key).session(
                start=start,
                depth_budget=self._depth_budget,
                backend=self._specs[key].backend,
            )
            self._sessions[(key, start)] = session
        return session

    def drop_session(self, key: str, start: str | None) -> None:
        self._sessions.pop((key, start), None)

    def warm(self, keys) -> None:
        for key in keys:
            self.language(key)

    def execute(self, request: ParseRequest) -> ParseResult:
        began = time.perf_counter()
        try:
            session = self.session(request.grammar, request.start)
            value = session.parse(request.text, source=request.source)
            return ParseResult(
                id=request.id,
                outcome=messages.OK,
                grammar=request.grammar,
                value=value,
                parse_s=time.perf_counter() - began,
            )
        except ParseError as error:
            return ParseResult(
                id=request.id,
                outcome=messages.PARSE_ERROR,
                grammar=request.grammar,
                error=ParseErrorInfo.from_error(error),
                parse_s=time.perf_counter() - began,
            )
        except Exception as error:  # request-level robustness: never die here
            self.drop_session(request.grammar, request.start)
            kind = "grammar error" if isinstance(error, ReproError) else "internal error"
            return ParseResult(
                id=request.id,
                outcome=messages.ERROR,
                grammar=request.grammar,
                detail=f"{kind}: {type(error).__name__}: {error}",
                parse_s=time.perf_counter() - began,
            )


def worker_main(
    conn,
    specs: dict[str, GrammarSpec],
    cache_dir: str | None,
    depth_budget: int | None = DEFAULT_DEPTH_BUDGET,
) -> None:
    """Entry point of each worker process."""
    sys.setrecursionlimit(WORKER_RECURSION_LIMIT)
    runtime = WorkerRuntime(specs, cache_dir, depth_budget=depth_budget)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        kind = message[0]
        if kind == MSG_STOP:
            break
        if kind == MSG_WARM:
            # Fire-and-forget: no reply, so the pipe never holds anything a
            # result read could mistake for a result.
            try:
                runtime.warm(message[1])
            except Exception:
                # A bad spec fails loudly on the first request instead.
                pass
            continue
        request: ParseRequest = message[1]
        result = runtime.execute(request)
        try:
            conn.send(("result", result))
        except (TypeError, ValueError, AttributeError) as error:
            # The semantic value would not pickle; degrade to a value-less
            # result rather than desynchronizing the pipe.
            import dataclasses

            conn.send((
                "result",
                dataclasses.replace(
                    result,
                    value=None,
                    detail=f"value not picklable: {type(error).__name__}: {error}",
                ),
            ))
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass
