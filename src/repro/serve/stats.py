"""Aggregate service telemetry: counters, latency percentiles, throughput.

Follows the versioned-JSON conventions of :mod:`repro.profile.report`: a
frozen snapshot dataclass (:class:`ServiceStats`) whose ``to_json`` /
``from_json`` are inverses, stamped with :data:`STATS_FORMAT` so archived
snapshots can be compared across runs.  The mutable, thread-safe side is
:class:`StatsRecorder`, which the service updates on every lifecycle event
and freezes on demand with :meth:`StatsRecorder.snapshot`.

Latency percentiles are computed over a bounded sliding window (the last
``window`` resolved requests) so a long-running service's snapshot cost
stays O(window), not O(lifetime).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.serve.messages import OUTCOMES, ParseResult

#: Bump when the snapshot's JSON layout changes.
STATS_FORMAT = 1


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    if not sorted_values:
        return 0.0
    rank = max(1, round(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass(frozen=True)
class LatencyStats:
    """End-to-end latency summary over the recorder's window (seconds)."""

    count: int = 0
    mean: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    max: float = 0.0

    @classmethod
    def over(cls, latencies: list[float]) -> "LatencyStats":
        if not latencies:
            return cls()
        ordered = sorted(latencies)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=percentile(ordered, 0.50),
            p95=percentile(ordered, 0.95),
            p99=percentile(ordered, 0.99),
            max=ordered[-1],
        )

    def to_json(self) -> dict:
        return {
            "count": self.count,
            "mean_ms": round(self.mean * 1000, 3),
            "p50_ms": round(self.p50 * 1000, 3),
            "p95_ms": round(self.p95 * 1000, 3),
            "p99_ms": round(self.p99 * 1000, 3),
            "max_ms": round(self.max * 1000, 3),
        }

    @classmethod
    def from_json(cls, data: dict) -> "LatencyStats":
        return cls(
            count=data.get("count", 0),
            mean=data.get("mean_ms", 0.0) / 1000,
            p50=data.get("p50_ms", 0.0) / 1000,
            p95=data.get("p95_ms", 0.0) / 1000,
            p99=data.get("p99_ms", 0.0) / 1000,
            max=data.get("max_ms", 0.0) / 1000,
        )


@dataclass(frozen=True)
class ServiceStats:
    """One frozen snapshot of a service's aggregate behavior."""

    workers: int = 0
    queue_capacity: int = 0
    queue_depth: int = 0
    inflight: int = 0
    submitted: int = 0
    completed: int = 0
    outcomes: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    recycles: int = 0
    respawns: int = 0
    fallback_parses: int = 0
    degraded: bool = False
    elapsed_s: float = 0.0
    latency: LatencyStats = field(default_factory=LatencyStats)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def outcome(self, name: str) -> int:
        return self.outcomes.get(name, 0)

    # -- serialization (repro.profile conventions) -----------------------------

    def to_json(self) -> dict:
        # Derive throughput from the *rounded* elapsed value so that
        # from_json(to_json(s)).to_json() == to_json(s) exactly.
        elapsed = round(self.elapsed_s, 6)
        throughput = self.completed / elapsed if elapsed > 0 else 0.0
        return {
            "format": STATS_FORMAT,
            "kind": "repro.serve.stats",
            "workers": self.workers,
            "queue": {"capacity": self.queue_capacity, "depth": self.queue_depth},
            "inflight": self.inflight,
            "submitted": self.submitted,
            "completed": self.completed,
            "outcomes": {name: self.outcomes.get(name, 0) for name in OUTCOMES},
            "retries": self.retries,
            "recycles": self.recycles,
            "respawns": self.respawns,
            "fallback_parses": self.fallback_parses,
            "degraded": self.degraded,
            "elapsed_s": elapsed,
            "throughput_rps": round(throughput, 3),
            "latency": self.latency.to_json(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "ServiceStats":
        queue = data.get("queue", {})
        return cls(
            workers=data.get("workers", 0),
            queue_capacity=queue.get("capacity", 0),
            queue_depth=queue.get("depth", 0),
            inflight=data.get("inflight", 0),
            submitted=data.get("submitted", 0),
            completed=data.get("completed", 0),
            outcomes={k: v for k, v in data.get("outcomes", {}).items() if v},
            retries=data.get("retries", 0),
            recycles=data.get("recycles", 0),
            respawns=data.get("respawns", 0),
            fallback_parses=data.get("fallback_parses", 0),
            degraded=data.get("degraded", False),
            elapsed_s=data.get("elapsed_s", 0.0),
            latency=LatencyStats.from_json(data.get("latency", {})),
        )


def format_stats(stats: ServiceStats) -> str:
    """A compact human rendering (used by ``repro-serve --stats``)."""
    lat = stats.latency
    lines = [
        f"workers {stats.workers}  queue {stats.queue_depth}/{stats.queue_capacity}"
        f"  inflight {stats.inflight}" + ("  DEGRADED" if stats.degraded else ""),
        f"submitted {stats.submitted}  completed {stats.completed}"
        f"  throughput {stats.throughput_rps:.1f} req/s over {stats.elapsed_s:.2f}s",
        "outcomes  " + "  ".join(f"{name}={stats.outcomes.get(name, 0)}" for name in OUTCOMES),
        f"latency   p50 {lat.p50 * 1000:.1f}ms  p95 {lat.p95 * 1000:.1f}ms"
        f"  p99 {lat.p99 * 1000:.1f}ms  max {lat.max * 1000:.1f}ms  (n={lat.count})",
        f"retries {stats.retries}  recycles {stats.recycles}  respawns {stats.respawns}"
        f"  fallback {stats.fallback_parses}",
    ]
    return "\n".join(lines)


class StatsRecorder:
    """Thread-safe accumulator behind :meth:`ParseService.stats`."""

    def __init__(self, workers: int, queue_capacity: int, window: int = 4096):
        self._lock = threading.Lock()
        self._workers = workers
        self._queue_capacity = queue_capacity
        self._submitted = 0
        self._completed = 0
        self._outcomes: dict[str, int] = {}
        self._retries = 0
        self._recycles = 0
        self._respawns = 0
        self._fallback_parses = 0
        self._latencies: deque[float] = deque(maxlen=window)
        self._started = time.perf_counter()

    def record_submitted(self) -> None:
        with self._lock:
            self._submitted += 1

    def record_result(self, result: ParseResult) -> None:
        with self._lock:
            self._completed += 1
            self._outcomes[result.outcome] = self._outcomes.get(result.outcome, 0) + 1
            if result.fallback:
                self._fallback_parses += 1
            self._latencies.append(result.latency_s)

    def record_retry(self) -> None:
        with self._lock:
            self._retries += 1

    def record_recycle(self) -> None:
        with self._lock:
            self._recycles += 1

    def record_respawn(self) -> None:
        with self._lock:
            self._respawns += 1

    def snapshot(self, queue_depth: int = 0, inflight: int = 0, degraded: bool = False) -> ServiceStats:
        with self._lock:
            return ServiceStats(
                workers=self._workers,
                queue_capacity=self._queue_capacity,
                queue_depth=queue_depth,
                inflight=inflight,
                submitted=self._submitted,
                completed=self._completed,
                outcomes=dict(self._outcomes),
                retries=self._retries,
                recycles=self._recycles,
                respawns=self._respawns,
                fallback_parses=self._fallback_parses,
                degraded=degraded,
                elapsed_s=time.perf_counter() - self._started,
                latency=LatencyStats.over(list(self._latencies)),
            )
