"""NDJSON wire format: how ``repro-serve`` talks to the outside world.

One JSON object per line, in and out.  Requests::

    {"id": "a", "text": "class C {}"}
    {"id": "b", "file": "examples/jay/Showcase.jay", "grammar": "jay"}
    {"text": "1+2", "grammar": "calc", "start": "Expr"}

``text`` is the input to parse (``file`` reads it from disk and uses the
path as the source name); ``grammar`` picks a served grammar key (default:
the service's first); ``id`` is echoed back (default: ``line-N``).

Results mirror :meth:`repro.serve.messages.ParseResult.to_json`::

    {"id": "a", "outcome": "ok", "grammar": "jay", "latency_ms": 4.1, ...}
    {"id": "b", "outcome": "parse_error", "error": {"message": ..., "offset": ...}}

Malformed lines never abort a batch: they yield ``rejected`` results with a
``detail`` explaining what was wrong — the same request-level robustness
the service applies everywhere else.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.serve import messages
from repro.serve.messages import ParseRequest, ParseResult

#: Bump when the request/result line layout changes.
WIRE_FORMAT = 1


def parse_request_line(
    line: str, seq: int, default_grammar: str
) -> ParseRequest | ParseResult | None:
    """Decode one NDJSON line into a request, or a ``rejected`` result.

    Returns ``None`` for blank lines.  Never raises on input content.
    """
    line = line.strip()
    if not line:
        return None
    rid = f"line-{seq}"

    def reject(detail: str) -> ParseResult:
        return ParseResult(
            id=rid, outcome=messages.REJECTED, grammar=default_grammar, detail=detail
        )

    try:
        obj = json.loads(line)
    except json.JSONDecodeError as error:
        return reject(f"invalid JSON: {error.msg} (pos {error.pos})")
    if not isinstance(obj, dict):
        return reject(f"request must be a JSON object, got {type(obj).__name__}")
    rid = str(obj.get("id", rid))
    grammar = obj.get("grammar", default_grammar)
    if not isinstance(grammar, str):
        return reject("'grammar' must be a string")
    start = obj.get("start")
    if start is not None and not isinstance(start, str):
        return reject("'start' must be a string")
    text = obj.get("text")
    source = obj.get("source", "<request>")
    if text is None and "file" in obj:
        path = Path(str(obj["file"]))
        try:
            text = path.read_text()
        except OSError as error:
            return ParseResult(
                id=rid, outcome=messages.REJECTED, grammar=grammar,
                detail=f"cannot read {path}: {error.strerror or error}",
            )
        source = str(path)
    if not isinstance(text, str):
        return ParseResult(
            id=rid, outcome=messages.REJECTED, grammar=grammar,
            detail="request needs a 'text' string or a readable 'file'",
        )
    return ParseRequest(id=rid, text=text, grammar=grammar, start=start, source=str(source))


def serve_lines(
    service, lines: Iterable[str], *, default_grammar: str | None = None
) -> Iterator[ParseResult]:
    """Drive NDJSON request lines through a service, in order.

    Submits every line (malformed ones resolve instantly as ``rejected``)
    and yields one :class:`ParseResult` per non-blank line, preserving input
    order.  Submission applies the service's backpressure policy, so a
    ``block`` service reading from a fast producer self-limits.
    """
    default_key = default_grammar or service.grammar_keys[0]
    pending = []
    for seq, line in enumerate(lines, 1):
        decoded = parse_request_line(line, seq, default_key)
        if decoded is None:
            continue
        if isinstance(decoded, ParseResult):
            note = getattr(service, "note_rejection", None)
            if note is not None:
                note(decoded)
            pending.append(decoded)
            continue
        pending.append(service.submit(
            decoded.text,
            grammar=decoded.grammar,
            start=decoded.start,
            source=decoded.source,
            request_id=decoded.id,
        ))
    for entry in pending:
        yield entry if isinstance(entry, ParseResult) else entry.result()


def encode_result(result: ParseResult, include_value: bool = False) -> str:
    """One NDJSON output line (no trailing newline)."""
    return json.dumps(result.to_json(include_value=include_value), sort_keys=True)
