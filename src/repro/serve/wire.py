"""NDJSON wire format: how ``repro-serve`` talks to the outside world.

One JSON object per line, in and out.  Requests::

    {"id": "a", "text": "class C {}"}
    {"id": "b", "file": "examples/jay/Showcase.jay", "grammar": "jay"}
    {"text": "1+2", "grammar": "calc", "start": "Expr"}

``text`` is the input to parse (``file`` reads it from disk and uses the
path as the source name); ``grammar`` picks a served grammar key (default:
the service's first); ``id`` is echoed back (default: ``line-N``).

Streaming requests (``repro-serve --streaming``) feed a named character
stream chunk by chunk; a :class:`repro.incremental.StreamFeeder` frames
the chunks into newline-delimited documents and each completed document is
parsed as its own request with id ``<stream>:<index>``::

    {"stream": "logs", "chunk": "{\\"a\\": 1}\\n{\\"b\\"", "grammar": "json"}
    {"stream": "logs", "chunk": ": 2}\\n"}
    {"stream": "logs", "end": true}

Chunk boundaries are arbitrary — a document may span many chunks and one
chunk may complete many documents.  ``end`` flushes the unterminated tail;
end of input flushes every open stream.  Without ``--streaming`` such
requests are rejected, not honored: framing buffers unbounded client state
in the server, which callers must opt into.

Results mirror :meth:`repro.serve.messages.ParseResult.to_json`::

    {"id": "a", "outcome": "ok", "grammar": "jay", "latency_ms": 4.1, ...}
    {"id": "b", "outcome": "parse_error", "error": {"message": ..., "offset": ...}}

Malformed lines never abort a batch: they yield ``rejected`` results with a
``detail`` explaining what was wrong — the same request-level robustness
the service applies everywhere else.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.serve import messages
from repro.serve.messages import ParseRequest, ParseResult

#: Bump when the request/result line layout changes.
#: 2: added streaming requests ({"stream": …, "chunk": …, "end": …}).
WIRE_FORMAT = 2


@dataclass(frozen=True)
class StreamChunk:
    """One decoded streaming request line: a chunk of the named stream."""

    stream: str
    chunk: str
    end: bool
    grammar: str
    start: str | None


def parse_request_line(
    line: str, seq: int, default_grammar: str
) -> ParseRequest | ParseResult | StreamChunk | None:
    """Decode one NDJSON line into a request, a stream chunk, or a
    ``rejected`` result.

    Returns ``None`` for blank lines.  Never raises on input content.
    """
    line = line.strip()
    if not line:
        return None
    rid = f"line-{seq}"

    def reject(detail: str) -> ParseResult:
        return ParseResult(
            id=rid, outcome=messages.REJECTED, grammar=default_grammar, detail=detail
        )

    try:
        obj = json.loads(line)
    except json.JSONDecodeError as error:
        return reject(f"invalid JSON: {error.msg} (pos {error.pos})")
    if not isinstance(obj, dict):
        return reject(f"request must be a JSON object, got {type(obj).__name__}")
    rid = str(obj.get("id", rid))
    grammar = obj.get("grammar", default_grammar)
    if not isinstance(grammar, str):
        return reject("'grammar' must be a string")
    start = obj.get("start")
    if start is not None and not isinstance(start, str):
        return reject("'start' must be a string")
    if "stream" in obj:
        stream = obj["stream"]
        if not isinstance(stream, str) or not stream:
            return reject("'stream' must be a non-empty string")
        chunk = obj.get("chunk", "")
        if not isinstance(chunk, str):
            return reject("'chunk' must be a string")
        return StreamChunk(
            stream=stream, chunk=chunk, end=bool(obj.get("end", False)),
            grammar=grammar, start=start,
        )
    text = obj.get("text")
    source = obj.get("source", "<request>")
    if text is None and "file" in obj:
        path = Path(str(obj["file"]))
        try:
            text = path.read_text()
        except OSError as error:
            return ParseResult(
                id=rid, outcome=messages.REJECTED, grammar=grammar,
                detail=f"cannot read {path}: {error.strerror or error}",
            )
        source = str(path)
    if not isinstance(text, str):
        return ParseResult(
            id=rid, outcome=messages.REJECTED, grammar=grammar,
            detail="request needs a 'text' string or a readable 'file'",
        )
    return ParseRequest(id=rid, text=text, grammar=grammar, start=start, source=str(source))


def serve_lines(
    service, lines: Iterable[str], *, default_grammar: str | None = None,
    streaming: bool = False,
) -> Iterator[ParseResult]:
    """Drive NDJSON request lines through a service, in order.

    Submits every line (malformed ones resolve instantly as ``rejected``)
    and yields one :class:`ParseResult` per non-blank line, preserving input
    order.  Submission applies the service's backpressure policy, so a
    ``block`` service reading from a fast producer self-limits.

    With ``streaming`` enabled, ``{"stream": …, "chunk": …}`` lines feed
    per-stream :class:`~repro.incremental.StreamFeeder` framers; each
    completed newline-delimited document is submitted as a request with id
    ``<stream>:<index>``, and end of input flushes every open stream.  The
    stream's grammar/start are fixed by its first chunk.
    """
    from repro.incremental import StreamFeeder

    default_key = default_grammar or service.grammar_keys[0]
    #: stream name -> (framing feeder, grammar, start)
    feeders: dict[str, tuple[StreamFeeder, str, str | None]] = {}
    pending = []

    def rejected(rid: str, detail: str, grammar: str = default_key) -> None:
        result = ParseResult(
            id=rid, outcome=messages.REJECTED, grammar=grammar, detail=detail
        )
        note = getattr(service, "note_rejection", None)
        if note is not None:
            note(result)
        pending.append(result)

    def submit_documents(stream: str, records) -> None:
        feeder, grammar, start = feeders[stream]
        for record in records:
            pending.append(service.submit(
                record.text,
                grammar=grammar,
                start=start,
                source=f"<{stream}>",
                request_id=f"{stream}:{record.index}",
            ))

    for seq, line in enumerate(lines, 1):
        decoded = parse_request_line(line, seq, default_key)
        if decoded is None:
            continue
        if isinstance(decoded, ParseResult):
            note = getattr(service, "note_rejection", None)
            if note is not None:
                note(decoded)
            pending.append(decoded)
            continue
        if isinstance(decoded, StreamChunk):
            if not streaming:
                rejected(
                    f"{decoded.stream}:chunk-{seq}",
                    "streaming is disabled (run repro-serve --streaming)",
                    decoded.grammar,
                )
                continue
            if decoded.stream not in feeders:
                feeders[decoded.stream] = (StreamFeeder(), decoded.grammar, decoded.start)
            feeder = feeders[decoded.stream][0]
            records = feeder.feed(decoded.chunk)
            if decoded.end:
                records = [*records, *feeder.end()]
            submit_documents(decoded.stream, records)
            if decoded.end:
                del feeders[decoded.stream]
            continue
        pending.append(service.submit(
            decoded.text,
            grammar=decoded.grammar,
            start=decoded.start,
            source=decoded.source,
            request_id=decoded.id,
        ))
    # End of input ends every stream a client left open: the unterminated
    # tail is a document too (same rule as StreamFeeder.end()).
    for stream in list(feeders):
        submit_documents(stream, feeders[stream][0].end())
    feeders.clear()
    for entry in pending:
        yield entry if isinstance(entry, ParseResult) else entry.result()


def encode_result(result: ParseResult, include_value: bool = False) -> str:
    """One NDJSON output line (no trailing newline)."""
    return json.dumps(result.to_json(include_value=include_value), sort_keys=True)
