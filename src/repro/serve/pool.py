"""Worker-process handles: spawn, health, recycle.

A :class:`WorkerHandle` pairs one OS process with the parent end of its
request pipe.  The service's per-slot handler threads are the only users;
each handle has at most one request in flight, which keeps pipe traffic
strictly request/response and makes the watchdog trivial (``poll`` with a
deadline, then kill).
"""

from __future__ import annotations

import multiprocessing
from typing import Any

from repro.serve.spec import GrammarSpec
from repro.serve.worker import DEFAULT_DEPTH_BUDGET, MSG_STOP, MSG_WARM, worker_main


def default_context() -> multiprocessing.context.BaseContext:
    """``fork`` when the platform has it (cheap spawns; workers inherit the
    parent's warm in-process LRU), else the platform default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class WorkerHandle:
    """One worker process plus the parent end of its pipe."""

    def __init__(self, process, conn, slot: int, incarnation: int):
        self.process = process
        self.conn = conn
        self.slot = slot
        #: How many processes this slot has gone through (1 = original).
        self.incarnation = incarnation

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def send(self, message: Any) -> None:
        self.conn.send(message)

    def poll(self, timeout: float | None) -> bool:
        return self.conn.poll(timeout)

    def recv(self) -> Any:
        return self.conn.recv()

    def stop(self, grace_s: float = 1.0) -> None:
        """Ask the worker to exit; escalate to kill if it doesn't."""
        try:
            self.conn.send((MSG_STOP,))
        except (BrokenPipeError, OSError, ValueError):
            pass
        self.process.join(grace_s)
        if self.process.is_alive():
            self.kill()
        else:
            self._close()

    def kill(self) -> None:
        """Hard-stop the process (watchdog path); always reaps it."""
        try:
            self.process.terminate()
            self.process.join(1.0)
            if self.process.is_alive():  # pragma: no cover - stubborn child
                self.process.kill()
                self.process.join(1.0)
        finally:
            self._close()

    def _close(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        try:
            self.process.close()
        except ValueError:  # still alive; leave it to the OS
            pass


def spawn_worker(
    ctx: multiprocessing.context.BaseContext,
    slot: int,
    incarnation: int,
    specs: dict[str, GrammarSpec],
    cache_dir: str | None,
    warm: tuple[str, ...] = (),
    depth_budget: int | None = DEFAULT_DEPTH_BUDGET,
) -> WorkerHandle:
    """Start one worker process and (optionally) queue a warm-up message."""
    parent_conn, child_conn = ctx.Pipe(duplex=True)
    process = ctx.Process(
        target=worker_main,
        args=(child_conn, specs, cache_dir, depth_budget),
        name=f"repro-serve-{slot}.{incarnation}",
        daemon=True,
    )
    process.start()
    child_conn.close()
    handle = WorkerHandle(process, parent_conn, slot, incarnation)
    if warm:
        # Queued ahead of the first request; the worker never replies to a
        # warm message, so this cannot desynchronize the result stream.
        try:
            handle.send((MSG_WARM, tuple(warm)))
        except (BrokenPipeError, OSError):
            pass
    return handle
