"""Grammar specifications: how a service names the languages it serves.

A :class:`GrammarSpec` is a *picklable recipe* for a compiled
:class:`~repro.api.Language` — not the language itself.  The service ships
specs to its worker processes, and each process compiles (or, in practice,
loads from the warm :class:`~repro.cache.CompilationCache` / in-process LRU)
its own copy.  Two kinds of recipe are supported:

``root``
    the qualified name of a grammar module to compose with
    :func:`repro.compile_grammar` — e.g. ``"jay.Jay"`` — optionally with
    extra search ``paths``, a ``start`` production, and ``options``;

``factory``
    a dotted reference ``"package.module:callable"`` to a zero-argument
    callable returning either a :class:`~repro.peg.Grammar` or a
    ``(grammar, options)`` pair.  This is how programmatically built
    grammars (which have no stable on-disk identity to fingerprint) enter a
    service — e.g. the canonical slow-request workload
    ``"repro.workloads.pathological:exponential_setup"``.

Short keys from :data:`repro.grammars.ROOTS` (``"jay"``, ``"calc"``, …)
coerce to their root modules, so ``ParseService("jay")`` just works.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.api import Language, compile_grammar
from repro.grammars import ROOTS
from repro.optim import Options
from repro.peg.grammar import Grammar


def resolve_factory(dotted: str) -> Callable[[], Any]:
    """Import ``"package.module:callable"`` and return the callable."""
    module_name, sep, attr = dotted.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(f"factory must look like 'package.module:callable', got {dotted!r}")
    module = importlib.import_module(module_name)
    factory = getattr(module, attr, None)
    if not callable(factory):
        raise ValueError(f"{dotted!r} does not name a callable")
    return factory


@dataclass(frozen=True)
class GrammarSpec:
    """A picklable recipe for compiling one served language."""

    root: str | None = None
    factory: str | None = None
    paths: tuple[str, ...] = ()
    start: str | None = None
    options: Options | None = None
    parser_name: str = "Parser"
    #: Execution strategy for served parses: ``"generated"`` or ``"vm"``
    #: (see :attr:`repro.api.Language.BACKENDS`).
    backend: str = "generated"

    def __post_init__(self):
        if (self.root is None) == (self.factory is None):
            raise ValueError("GrammarSpec needs exactly one of 'root' or 'factory'")
        if self.factory is not None and ":" not in self.factory:
            raise ValueError(f"factory must look like 'package.module:callable', got {self.factory!r}")
        if self.backend not in Language.BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {Language.BACKENDS}"
            )

    @classmethod
    def coerce(cls, value: "GrammarSpec | str") -> "GrammarSpec":
        """Accept a spec, a short grammar key, a qualified root, or a
        ``"factory:module:callable"`` string."""
        if isinstance(value, cls):
            return value
        if isinstance(value, Grammar):
            raise TypeError(
                "a Grammar object cannot be shipped to worker processes; "
                "wrap it in a zero-argument callable and use "
                "GrammarSpec(factory='package.module:callable')"
            )
        if not isinstance(value, str):
            raise TypeError(f"cannot make a GrammarSpec from {value!r}")
        if value.startswith("factory:"):
            return cls(factory=value[len("factory:"):])
        return cls(root=ROOTS.get(value, value))

    def describe(self) -> str:
        target = self.root if self.root is not None else f"factory:{self.factory}"
        extras = []
        if self.start:
            extras.append(f"start={self.start}")
        if self.paths:
            extras.append(f"paths={list(self.paths)}")
        if self.backend != "generated":
            extras.append(f"backend={self.backend}")
        return target + (f" ({', '.join(extras)})" if extras else "")

    def compile(self, cache: Any = None, cache_dir: str | Path | None = None) -> Language:
        """Compile this spec into a :class:`Language`.

        Named roots go through both compilation-cache levels (warm workers
        pay a disk/LRU hit, not a full compile); factory grammars are
        programmatic and always compile, so keep them small.
        """
        if self.factory is not None:
            produced = resolve_factory(self.factory)()
            options = self.options
            if isinstance(produced, tuple):
                grammar, factory_options = produced
                options = options if options is not None else factory_options
            else:
                grammar = produced
            if not isinstance(grammar, Grammar):
                raise TypeError(f"factory {self.factory!r} returned {type(grammar).__name__}, not a Grammar")
            return compile_grammar(
                grammar, options=options, start=self.start, parser_name=self.parser_name
            )
        return compile_grammar(
            self.root,
            options=self.options,
            paths=list(self.paths) or None,
            start=self.start,
            parser_name=self.parser_name,
            cache=cache,
            cache_dir=cache_dir,
        )


def normalize_grammars(grammars: Any) -> dict[str, GrammarSpec]:
    """Normalize the ``ParseService(grammars=...)`` argument.

    Accepts a single spec-ish value (served under the key ``"default"``) or
    a mapping of key → spec-ish.  Returns an ordered ``{key: GrammarSpec}``;
    the first key is the service's default grammar.
    """
    if isinstance(grammars, dict):
        if not grammars:
            raise ValueError("a ParseService needs at least one grammar")
        return {str(key): GrammarSpec.coerce(value) for key, value in grammars.items()}
    spec = GrammarSpec.coerce(grammars)
    if isinstance(grammars, str) and grammars in ROOTS:
        return {grammars: spec}
    return {"default": spec}
