"""repro.serve — a concurrent parse service over compiled grammars.

The serving layer the ROADMAP's north star asks for: the compiled-
:class:`~repro.api.Language` + :class:`~repro.cache.CompilationCache` +
:meth:`~repro.api.Language.session` machinery, run as a long-lived service
that executes many parse requests through a pool of warm worker processes
with the robustness envelope real traffic needs — bounded queues with
explicit backpressure, per-request wall-clock timeouts enforced by a
worker-recycling watchdog, input-size limits, bounded retries for
worker-crash errors, and graceful degradation to an in-process fallback.

.. code-block:: python

    from repro.serve import ParseService

    with ParseService("jay", workers=4, timeout=10.0) as service:
        for result in service.map(sources):
            if result.ok:
                use(result.value)
            else:
                log(result.outcome, result.error or result.detail)

Three front doors:

- the programmatic :class:`ParseService` API above;
- the ``repro-serve`` CLI (NDJSON requests in, NDJSON results out);
- :func:`repro.serve.wire.serve_lines` for embedding the NDJSON protocol.

See ``docs/serving.md`` for the worker lifecycle, backpressure policies,
timeout/recycle semantics, and the wire format.
"""

from repro.serve.messages import (
    ERROR,
    OK,
    OUTCOMES,
    PARSE_ERROR,
    REJECTED,
    TIMEOUT,
    WORKER_LOST,
    ParseErrorInfo,
    ParseRequest,
    ParseResult,
)
from repro.serve.service import ParseService, ServiceFuture
from repro.serve.spec import GrammarSpec
from repro.serve.stats import STATS_FORMAT, LatencyStats, ServiceStats, format_stats
from repro.serve.wire import (
    WIRE_FORMAT,
    StreamChunk,
    encode_result,
    parse_request_line,
    serve_lines,
)

__all__ = [
    "ParseService",
    "ServiceFuture",
    "GrammarSpec",
    "ParseRequest",
    "ParseResult",
    "ParseErrorInfo",
    "ServiceStats",
    "LatencyStats",
    "format_stats",
    "STATS_FORMAT",
    "WIRE_FORMAT",
    "StreamChunk",
    "encode_result",
    "parse_request_line",
    "serve_lines",
    "OUTCOMES",
    "OK",
    "PARSE_ERROR",
    "TIMEOUT",
    "REJECTED",
    "WORKER_LOST",
    "ERROR",
]
