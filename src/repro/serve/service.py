"""The :class:`ParseService`: many parse requests, one robust envelope.

Architecture (one box per worker slot)::

    submit()/map()                 handler thread 0 ── pipe ── worker proc 0
        │   bounded queue          handler thread 1 ── pipe ── worker proc 1
        └──▶ [■ ■ ■ ■ ░ ░] ──get──▶    …                         …
             backpressure:         each handler owns one worker, dispatches
             block or reject       one request at a time, and enforces the
                                   timeout watchdog on its own pipe

Every request terminates in a structured :class:`ParseResult`; the service
API itself only raises for *caller* bugs (submitting after shutdown, bad
configuration).  The robustness envelope:

- **backpressure** — the submission queue is bounded; ``block`` makes
  ``submit`` wait for space, ``reject`` resolves the request as
  ``rejected`` immediately;
- **input-size limits** — oversized inputs are rejected before queueing;
- **timeouts** — a per-request wall-clock budget enforced by the handler's
  watchdog; on expiry the hung worker is killed and replaced, and the
  request resolves as ``timeout``;
- **bounded retries** — a worker that *dies* mid-request (crash, OOM-kill)
  is respawned and the request retried up to ``retries`` times before
  resolving as ``worker_lost`` (parse failures are never retried — they are
  deterministic);
- **graceful degradation** — if a worker cannot be (re)spawned the service
  flips to a synchronous in-process fallback (shared with ``workers=0``
  mode) instead of failing requests, trading isolation and timeouts for
  availability.

See ``docs/serving.md`` for the full lifecycle and wire format.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import threading
import time
from pathlib import Path
from typing import Any, Iterable

from repro.serve import messages
from repro.serve.messages import ParseRequest, ParseResult, finalize
from repro.serve.pool import WorkerHandle, default_context, spawn_worker
from repro.serve.spec import GrammarSpec, normalize_grammars
from repro.serve.stats import ServiceStats, StatsRecorder
from repro.serve.worker import MSG_PARSE, WorkerRuntime

_BACKPRESSURE_POLICIES = ("block", "reject")


class ServiceFuture:
    """The pending result of one submitted request.

    Always resolves to a :class:`ParseResult` — never raises on the
    request's behalf.  ``result()`` blocks (optionally with a timeout, which
    raises :class:`TimeoutError` for the *wait*, not the request).
    """

    __slots__ = ("_event", "_result")

    def __init__(self):
        self._event = threading.Event()
        self._result: ParseResult | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> ParseResult:
        if not self._event.wait(timeout):
            raise TimeoutError("result not ready")
        return self._result

    def _resolve(self, result: ParseResult) -> None:
        self._result = result
        self._event.set()

    @classmethod
    def resolved(cls, result: ParseResult) -> "ServiceFuture":
        future = cls()
        future._resolve(result)
        return future


class _Item:
    """One queued request plus its bookkeeping."""

    __slots__ = ("request", "future", "submitted_at", "timeout", "attempts")

    def __init__(self, request: ParseRequest, future: ServiceFuture, timeout: float | None):
        self.request = request
        self.future = future
        self.submitted_at = time.perf_counter()
        self.timeout = timeout
        self.attempts = 0


_STOP = object()


class ParseService:
    """A pool of warm parser workers behind a bounded submission queue.

    .. code-block:: python

        from repro.serve import ParseService

        with ParseService("jay", workers=4, timeout=10.0) as service:
            results = service.map(sources)          # ordered ParseResults
            future = service.submit(another_source) # or one at a time
            print(future.result().outcome, service.stats().throughput_rps)

    ``grammars`` is a spec-ish value (``"jay"``, ``"jay.Jay"``, a
    :class:`GrammarSpec`) or a ``{key: spec}`` mapping; requests address
    grammars by key, defaulting to the first.  ``workers=0`` runs every
    request synchronously in-process (no pool, no timeout envelope) — the
    same path used for degraded-mode fallback.
    """

    def __init__(
        self,
        grammars: Any,
        *,
        workers: int | None = None,
        queue_size: int | None = None,
        backpressure: str = "block",
        timeout: float | None = None,
        max_input_chars: int | None = None,
        retries: int = 1,
        fallback: bool = True,
        cache_dir: str | Path | None = None,
        start_method: str | None = None,
        stats_window: int = 4096,
        depth_budget: int | None = None,
    ):
        if backpressure not in _BACKPRESSURE_POLICIES:
            raise ValueError(f"backpressure must be one of {_BACKPRESSURE_POLICIES}, got {backpressure!r}")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        self._specs = normalize_grammars(grammars)
        self._default_key = next(iter(self._specs))
        if workers is None:
            workers = max(1, min(4, os.cpu_count() or 1))
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        if queue_size is None:
            queue_size = max(16, workers * 8)
        elif queue_size < 0:
            raise ValueError("queue_size must be >= 0 (0 = unbounded)")
        self._backpressure = backpressure
        self._timeout = timeout
        self._max_input_chars = max_input_chars
        self._retries = retries
        self._fallback_enabled = fallback
        self._cache_dir = str(cache_dir) if cache_dir is not None else None
        # Per-parse recursion budget applied by every worker (and by the
        # in-process fallback): deep inputs become structured parse_error
        # results instead of crashing a worker at its recursion ceiling.
        if depth_budget is not None and depth_budget < 1:
            raise ValueError("depth_budget must be a positive frame count (or None)")
        from repro.serve.worker import DEFAULT_DEPTH_BUDGET

        self._depth_budget = depth_budget if depth_budget is not None else DEFAULT_DEPTH_BUDGET

        # Compile every spec once in the parent: fails fast on bad specs,
        # warms the in-process LRU (inherited by forked workers) and the
        # disk cache (used by spawned workers), and provides the languages
        # the in-process fallback parses with.
        self._inline = WorkerRuntime(self._specs, self._cache_dir, depth_budget=self._depth_budget)
        self._inline_lock = threading.Lock()
        self._inline.warm(self._specs)

        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._queue_capacity = queue_size
        self._stats = StatsRecorder(workers, queue_size, window=stats_window)
        self._ids = itertools.count(1)
        self._closed = False
        # workers=0 is by design, not degradation: healthy stays True.
        self._degraded = False
        self._state_lock = threading.Lock()
        self._inflight = 0
        self._ctx = (
            multiprocessing.get_context(start_method)
            if start_method is not None
            else default_context()
        )
        slots = range(workers) if workers > 0 else range(1)
        self._handles: dict[int, WorkerHandle | None] = {slot: None for slot in slots}
        self._handlers: list[threading.Thread] = []
        for slot in slots:
            thread = threading.Thread(
                target=self._run_slot, args=(slot,), name=f"repro-serve-handler-{slot}", daemon=True
            )
            self._handlers.append(thread)
            thread.start()

    # -- public API ------------------------------------------------------------

    def __enter__(self) -> "ParseService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    @property
    def healthy(self) -> bool:
        """False once the service has degraded to in-process fallback."""
        return not self._degraded

    @property
    def grammar_keys(self) -> tuple[str, ...]:
        return tuple(self._specs)

    def worker_pids(self) -> list[int | None]:
        """Live worker PIDs by slot (None for dead/inline slots)."""
        with self._state_lock:
            return [
                handle.pid if handle is not None and handle.alive() else None
                for handle in self._handles.values()
            ]

    def submit(
        self,
        text: str,
        *,
        grammar: str | None = None,
        start: str | None = None,
        source: str = "<request>",
        request_id: str | None = None,
        timeout: float | None = None,
    ) -> ServiceFuture:
        """Queue one parse request; returns a :class:`ServiceFuture`.

        ``timeout`` overrides the service-wide per-request budget.  Requests
        that cannot be queued resolve immediately as ``rejected`` (they are
        still counted in the stats); only calling after :meth:`shutdown` is
        a caller error and raises.
        """
        if self._closed:
            raise RuntimeError("ParseService is shut down")
        key = grammar if grammar is not None else self._default_key
        rid = request_id if request_id is not None else f"r{next(self._ids)}"
        self._stats.record_submitted()
        if key not in self._specs:
            return self._instant_reject(rid, key, f"unknown grammar {key!r}")
        if not isinstance(text, str):
            return self._instant_reject(rid, key, f"text must be a string, got {type(text).__name__}")
        if self._max_input_chars is not None and len(text) > self._max_input_chars:
            return self._instant_reject(
                rid, key, f"input too large ({len(text)} chars > limit {self._max_input_chars})"
            )
        request = ParseRequest(id=rid, text=text, grammar=key, start=start, source=source)
        item = _Item(request, ServiceFuture(), timeout if timeout is not None else self._timeout)
        if self._backpressure == "block":
            self._queue.put(item)
        else:
            try:
                self._queue.put_nowait(item)
            except queue.Full:
                self._resolve(item, ParseResult(id=rid, outcome=messages.REJECTED, grammar=key,
                                                detail="queue full"))
        return item.future

    def map(
        self,
        texts: Iterable[str],
        *,
        grammar: str | None = None,
        start: str | None = None,
        source: str = "<request>",
    ) -> list[ParseResult]:
        """Submit every text and gather results in submission order."""
        futures = [
            self.submit(text, grammar=grammar, start=start, source=source) for text in texts
        ]
        return [future.result() for future in futures]

    def note_rejection(self, result: ParseResult) -> None:
        """Count an externally produced ``rejected`` result in the stats.

        Used by the NDJSON wire layer for requests so malformed they never
        reach :meth:`submit` (bad JSON, unreadable file), so the stats
        snapshot still accounts for every line of a batch.
        """
        self._stats.record_submitted()
        self._stats.record_result(result)

    def stats(self) -> ServiceStats:
        """A frozen :class:`ServiceStats` snapshot (versioned-JSON-able)."""
        with self._state_lock:
            inflight = self._inflight
        return self._stats.snapshot(
            queue_depth=self._queue.qsize(), inflight=inflight, degraded=self._degraded
        )

    def shutdown(self, wait: bool = True, timeout: float | None = 30.0) -> None:
        """Stop accepting work, drain (or cancel) the queue, stop workers.

        With ``wait=True`` queued requests finish first; with ``wait=False``
        they resolve as ``rejected`` (detail ``"service shutdown"``).
        """
        if self._closed:
            return
        self._closed = True
        if not wait:
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is not _STOP:
                    self._resolve(item, ParseResult(
                        id=item.request.id, outcome=messages.REJECTED,
                        grammar=item.request.grammar, detail="service shutdown",
                    ))
        for _ in self._handlers:
            self._queue.put(_STOP)
        for thread in self._handlers:
            thread.join(timeout)
        # Handlers stop their own workers on clean exit; reap stragglers.
        with self._state_lock:
            leftovers = [h for h in self._handles.values() if h is not None and h.alive()]
            self._handles = {slot: None for slot in self._handles}
        for handle in leftovers:
            handle.kill()

    # -- internals -------------------------------------------------------------

    def _instant_reject(self, rid: str, grammar: str, detail: str) -> ServiceFuture:
        result = ParseResult(id=rid, outcome=messages.REJECTED, grammar=grammar, detail=detail)
        self._stats.record_result(result)
        return ServiceFuture.resolved(result)

    def _resolve(self, item: _Item, result: ParseResult, **extra: Any) -> None:
        result = finalize(
            result,
            latency_s=time.perf_counter() - item.submitted_at,
            attempts=item.attempts,
            **extra,
        )
        self._stats.record_result(result)
        item.future._resolve(result)

    def _note_degraded(self) -> None:
        with self._state_lock:
            self._degraded = True

    def _spawn(self, slot: int) -> WorkerHandle | None:
        """(Re)spawn the worker for a slot; None on failure (degrades)."""
        with self._state_lock:
            previous = self._handles.get(slot)
            incarnation = previous.incarnation + 1 if previous is not None else 1
        try:
            handle = spawn_worker(
                self._ctx, slot, incarnation, self._specs, self._cache_dir,
                warm=tuple(self._specs), depth_budget=self._depth_budget,
            )
        except Exception:
            self._note_degraded()
            with self._state_lock:
                self._handles[slot] = None
            return None
        if incarnation > 1:
            self._stats.record_respawn()
        with self._state_lock:
            self._handles[slot] = handle
        return handle

    def _run_slot(self, slot: int) -> None:
        """Handler thread: own one worker, process queue items forever."""
        worker: WorkerHandle | None = None
        if self.workers > 0:
            worker = self._spawn(slot)
        try:
            while True:
                item = self._queue.get()
                if item is _STOP:
                    break
                with self._state_lock:
                    self._inflight += 1
                try:
                    worker = self._process(slot, item, worker)
                finally:
                    with self._state_lock:
                        self._inflight -= 1
        finally:
            if worker is not None:
                worker.stop()
                with self._state_lock:
                    if self._handles.get(slot) is worker:
                        self._handles[slot] = None

    #: Watchdog tick: how often the handler re-checks worker liveness while
    #: waiting for a result.  Results themselves arrive with select()
    #: latency; only crash/timeout *detection* is quantized to the tick.
    _WATCHDOG_TICK_S = 0.05

    def _await_result(self, worker: WorkerHandle, timeout: float | None) -> str:
        """Wait for the worker's reply: ``"ready"``/``"timeout"``/``"crash"``.

        A plain blocking ``poll`` is not enough: with a ``fork`` start
        method, sibling workers inherit copies of each other's pipe ends, so
        a dead worker's pipe may never raise EOF.  Liveness is therefore
        checked explicitly every tick.
        """
        deadline = None if timeout is None else time.perf_counter() + timeout
        while True:
            tick = self._WATCHDOG_TICK_S
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    return "timeout"
                tick = min(tick, remaining)
            try:
                if worker.poll(tick):
                    return "ready"
            except (BrokenPipeError, OSError):
                return "crash"
            if not worker.alive():
                # Drain a final reply that raced the exit, if any.
                try:
                    if worker.poll(0):
                        return "ready"
                except (BrokenPipeError, OSError):
                    pass
                return "crash"

    def _process(self, slot: int, item: _Item, worker: WorkerHandle | None) -> WorkerHandle | None:
        """Run one item to resolution; returns the slot's (possibly new) worker."""
        if self.workers == 0 or (
            self._degraded and worker is None and self._fallback_enabled
        ):
            self._resolve_inline(item)
            return worker
        max_attempts = 1 + self._retries
        while True:
            if worker is None or not worker.alive():
                if worker is not None:
                    worker.kill()
                worker = self._spawn(slot)
                if worker is None:
                    self._resolve_unhealthy(item)
                    return None
            item.attempts += 1
            try:
                worker.send((MSG_PARSE, item.request))
            except (BrokenPipeError, OSError, ValueError):
                worker = self._recycle(slot, worker)
                if item.attempts < max_attempts:
                    self._stats.record_retry()
                    continue
                self._resolve(item, ParseResult(
                    id=item.request.id, outcome=messages.WORKER_LOST,
                    grammar=item.request.grammar, worker=slot,
                    detail="worker unreachable",
                ))
                return worker
            verdict = self._await_result(worker, item.timeout)
            if verdict == "timeout":
                # Watchdog: the request outlived its budget.  Kill the hung
                # worker (the only way to interrupt a compute-bound parse)
                # and give the slot a fresh one.
                worker = self._recycle(slot, worker)
                self._resolve(item, ParseResult(
                    id=item.request.id, outcome=messages.TIMEOUT,
                    grammar=item.request.grammar, worker=slot,
                    detail=f"exceeded {item.timeout:.3f}s budget",
                ))
                return worker
            if verdict == "ready":
                try:
                    _, result = worker.recv()
                except (EOFError, OSError):
                    verdict = "crash"
            if verdict == "crash":
                # The worker died mid-request (crash, OOM-kill, SIGKILL):
                # a worker-crash error, retried within bounds.
                worker = self._recycle(slot, worker)
                if item.attempts < max_attempts:
                    self._stats.record_retry()
                    continue
                self._resolve(item, ParseResult(
                    id=item.request.id, outcome=messages.WORKER_LOST,
                    grammar=item.request.grammar, worker=slot,
                    detail="worker died while parsing",
                ))
                return worker
            self._resolve(item, result, worker=slot)
            return worker

    def _recycle(self, slot: int, worker: WorkerHandle) -> WorkerHandle | None:
        """Kill a misbehaving worker and spawn its replacement."""
        self._stats.record_recycle()
        worker.kill()
        return self._spawn(slot)

    def _resolve_unhealthy(self, item: _Item) -> None:
        """No worker available: fall back in-process, or fail the request."""
        if self._fallback_enabled:
            self._resolve_inline(item)
        else:
            self._resolve(item, ParseResult(
                id=item.request.id, outcome=messages.WORKER_LOST,
                grammar=item.request.grammar, detail="worker pool unavailable",
            ))

    def _resolve_inline(self, item: _Item) -> None:
        """Synchronous in-process parse (workers=0 mode and degraded mode).

        No timeout envelope here: there is no process to kill, so a
        pathological input blocks its handler — the price of availability.
        """
        item.attempts += 1
        with self._inline_lock:
            result = self._inline.execute(item.request)
        self._resolve(item, result, fallback=True)
