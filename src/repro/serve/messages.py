"""Request and result types: the service's structured vocabulary.

Every submitted request terminates in exactly one :class:`ParseResult`
whose ``outcome`` is one of :data:`OUTCOMES` — the service never raises on
a per-request basis.  Results are picklable (they cross the worker → parent
pipe) and JSON-able (they exit the ``repro-serve`` CLI as NDJSON lines).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ParseError

# -- outcomes -------------------------------------------------------------------

#: Parse succeeded; ``value`` holds the semantic value (AST).
OK = "ok"
#: The input was syntactically invalid; ``error`` holds the diagnostic.
PARSE_ERROR = "parse_error"
#: The request exceeded its wall-clock budget; the worker was recycled.
TIMEOUT = "timeout"
#: The request never ran: oversized input, full queue, unknown grammar,
#: malformed wire request, or service shutdown.  ``detail`` says which.
REJECTED = "rejected"
#: The worker process died while parsing and bounded retries (if any) were
#: exhausted.
WORKER_LOST = "worker_lost"
#: An unexpected internal exception while handling the request (the worker
#: survives; its session for that grammar is rebuilt).
ERROR = "error"

OUTCOMES = (OK, PARSE_ERROR, TIMEOUT, REJECTED, WORKER_LOST, ERROR)


@dataclass(frozen=True)
class ParseErrorInfo:
    """A :class:`~repro.errors.ParseError` flattened for transport."""

    message: str
    offset: int
    line: int
    column: int
    expected: tuple[str, ...] = ()
    source: str = "<input>"

    @classmethod
    def from_error(cls, error: ParseError) -> "ParseErrorInfo":
        return cls(
            message=error.message,
            offset=error.offset,
            line=error.line,
            column=error.column,
            expected=tuple(error.expected),
            source=error.source,
        )

    def to_error(self) -> ParseError:
        return ParseError(
            self.message,
            offset=self.offset,
            line=self.line,
            column=self.column,
            expected=self.expected,
            source=self.source,
        )

    def to_json(self) -> dict:
        return {
            "message": self.message,
            "offset": self.offset,
            "line": self.line,
            "column": self.column,
            "expected": list(self.expected),
            "source": self.source,
        }


@dataclass(frozen=True)
class ParseRequest:
    """One unit of work: parse ``text`` with the grammar named ``grammar``."""

    id: str
    text: str
    grammar: str = "default"
    start: str | None = None
    source: str = "<request>"

    def to_json(self) -> dict:
        data = {"id": self.id, "text": self.text, "grammar": self.grammar}
        if self.start is not None:
            data["start"] = self.start
        if self.source != "<request>":
            data["source"] = self.source
        return data


@dataclass(frozen=True)
class ParseResult:
    """The structured fate of one request.

    ``latency_s`` is end-to-end (submit → resolution, including queue wait);
    ``parse_s`` is the in-worker parse time alone (``None`` when the request
    never reached a worker).  ``attempts`` counts dispatches, so a crash
    retried once that then succeeds reports ``attempts=2``.
    """

    id: str
    outcome: str
    grammar: str = "default"
    value: Any = None
    error: ParseErrorInfo | None = None
    detail: str | None = None
    latency_s: float = 0.0
    parse_s: float | None = None
    attempts: int = 0
    worker: int | None = None
    fallback: bool = False

    @property
    def ok(self) -> bool:
        return self.outcome == OK

    def to_json(self, include_value: bool = False) -> dict:
        """The NDJSON wire form of this result.

        Semantic values are arbitrary Python objects (generic AST nodes,
        action results), so by default only ``ok`` is reported; with
        ``include_value`` the value's canonical ``repr`` rides along.
        """
        data: dict[str, Any] = {
            "id": self.id,
            "outcome": self.outcome,
            "grammar": self.grammar,
            "latency_ms": round(self.latency_s * 1000, 3),
            "attempts": self.attempts,
        }
        if self.parse_s is not None:
            data["parse_ms"] = round(self.parse_s * 1000, 3)
        if self.worker is not None:
            data["worker"] = self.worker
        if self.fallback:
            data["fallback"] = True
        if self.error is not None:
            data["error"] = self.error.to_json()
        if self.detail is not None:
            data["detail"] = self.detail
        if include_value and self.outcome == OK:
            data["value"] = repr(self.value)
        return data


def finalize(result: ParseResult, **changes: Any) -> ParseResult:
    """A copy of ``result`` with parent-side fields filled in."""
    return replace(result, **changes)
