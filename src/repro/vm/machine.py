"""The parsing machine: one dispatch loop over a :class:`VMProgram`.

Design notes
------------

The machine keeps four pieces of mutable state: the input position, a
*value stack* (semantic values under construction), a unified
*backtrack/call stack*, and the current binding environment.  Stack entries
are tagged tuples (lists for the mutable repetition entries):

==============  ============================================================
``K_CALL``      ``(kind, ret_ip, memo_index, call_pos, env[, name])`` —
                pushed by ``CALL``; popped by ``RET`` (success, memo store)
                or by the unwinder (failure memo store)
``K_CHOICE``    ``(kind, alt_ip, pos, vals_len, env)`` — ordered-choice
                backtrack entry
``K_REP``       ``[kind, end_ip, iter_pos, vals_start, iter_vals, count,
                min, mode, env]`` — one per active repetition
``K_NOT``       ``(kind, cont_ip, pos, vals_len, env)`` — ``!e`` handler:
                operand failure *resumes* after the predicate
``K_AND``       ``(kind, pos, vals_len, env)`` — ``&e`` handler: operand
                failure falls through to the enclosing handler
``K_PCHOICE``   profiled ``K_CHOICE`` carrying ``(prod, alt_index)``
==============  ============================================================

Failure is a flag: a failing instruction records its expectation into the
farthest-failure locals and the unwinder pops entries until one resumes
control.  There is **no Python recursion on the hot path** — nesting depth
is bounded by the stack-entry budget (``depth_budget``), and exceeding it
raises the same structured :class:`~repro.errors.ParseDepthError` the
recursive backends produce at their frame budgets.

Environment handling mirrors the closure backend exactly: entries hold
*references* to the env (the same dict object), so bindings made inside an
alternative deliberately survive backtracking within it; only ``ENV_NEW``
(an alternative that has bindings) swaps in a fresh dict, and ``RET``/the
unwinder restore the caller's.

Fused ``Regex`` failures (and non-silent successes) are noted in
``_fused_pending`` and replayed lazily by :meth:`VMParser._replay_fused`
through a small recursive evaluator over the region's original expression —
error-path only, exactly like the other backends.
"""

from __future__ import annotations

from typing import Any

from repro.errors import AnalysisError
from repro.peg.expr import (
    And,
    AnyChar,
    Binding,
    CharClass,
    CharSwitch,
    Epsilon,
    Fail,
    Literal,
    Not,
    Option,
    Repetition,
    Sequence,
    Text,
    Voided,
)
from repro.peg.expr import Choice as ChoiceExpr
from repro.runtime.actionlib import ACTION_GLOBALS
from repro.runtime.base import ParserBase
from repro.runtime.memo import ChunkedMemoTable, IncrementalMemoTable, make_memo_table
from repro.runtime.node import GNode
from repro.vm.compiler import (
    HALT_IP,
    OP_ACTION,
    OP_ACTION_RET,
    OP_AND_BEGIN,
    OP_AND_END,
    OP_ANY,
    OP_BIND,
    OP_BIND_POP,
    OP_CALL,
    OP_CALL_BIND,
    OP_CHAR,
    OP_CHOICE,
    OP_CLASS,
    OP_COMMIT,
    OP_ENV_NEW,
    OP_EXPECT_FAIL,
    OP_FAIL,
    OP_GCHOICE,
    OP_GUARD,
    OP_HALT,
    OP_JUMP,
    OP_LIT,
    OP_LIT_CI,
    OP_NOT_BEGIN,
    OP_NOT_FAIL,
    OP_PCHOICE,
    OP_POP,
    OP_POPE,
    OP_PROF_ALT,
    OP_PROF_ALT_OK,
    OP_PUSH,
    OP_PUSH_POS,
    OP_RED_NODE,
    OP_RED_TEXT,
    OP_REGEX,
    OP_REP_BEGIN,
    OP_REP_NEXT,
    OP_RET,
    OP_SEQ_TUPLE,
    OP_SET,
    OP_SPAN,
    OP_SWITCH,
    OP_TEXT_END,
    VMProgram,
)

FAIL = -1
FAILPAIR = (-1, None)

# Stack entry kinds.
K_CALL = 0
K_CHOICE = 1
K_REP = 2
K_NOT = 3
K_AND = 4
K_PCHOICE = 5

#: Default cap on machine stack entries when no ``depth_budget`` is given.
#: The machine never recurses, so without a cap left-recursive grammars
#: would grow the call stack until memory ran out; this bound turns them
#: into a structured ParseDepthError instead.
DEFAULT_STACK_BUDGET = 200_000

_CLASS_MSG = "character class"
_ANY_MSG = "any character"


class VMParser(ParserBase):
    """Run a compiled :class:`VMProgram`; construct once, parse many times.

    The constructor mirrors generated parsers (``VMParser(program, text,
    source)`` then :meth:`parse`), and :meth:`reset` re-points the instance
    at a new input in place, reusing the memo-table container.  With
    ``profile=`` the program must be the profiled twin
    (``compile_program(..., profiled=True)``).
    """

    def __init__(
        self,
        program: VMProgram,
        text: str = "",
        source: str = "<input>",
        *,
        chunked: bool | None = None,
        profile: Any = None,
        depth_budget: int | None = None,
        incremental: bool = False,
    ):
        super().__init__(text)
        self._source = source
        self._program = program
        self._profile = profile
        self._depth_budget = depth_budget
        self._incremental = incremental
        if profile is not None and not program.profiled:
            raise AnalysisError("profiled VM parse needs the profiled twin program")
        if incremental and not program.incremental:
            raise AnalysisError(
                "incremental VM parse needs an incremental program "
                "(compile_program(..., incremental=True))"
            )
        if incremental and profile is not None:
            raise AnalysisError(
                "incremental VM parsers do not support profile=; "
                "attach the profile to the IncrementalSession instead"
            )
        if chunked is None:
            chunked = program.chunked
        self._chunked = chunked
        rule_names = list(program.memo_rules)
        if profile is not None:
            from repro.profile.collector import MemoEvents

            self._memo = make_memo_table(
                rule_names, chunked=chunked, events=MemoEvents(profile, rule_names)
            )
        elif incremental:
            self._memo = IncrementalMemoTable(rule_names).resize(self._length)
        else:
            self._memo = make_memo_table(rule_names, chunked=chunked)

    # -- public API ---------------------------------------------------------

    def parse(self, start: str | None = None) -> Any:
        pos, value = self._run(start or self._program.start)
        if pos < 0 or pos < self._length:
            raise self.parse_error()
        return value

    def match_prefix(self, start: str | None = None) -> tuple[int, Any]:
        """Longest-prefix match: ``(end position | -1, value)``."""
        return self._run(start or self._program.start)

    def _reset_memo(self) -> None:
        if self._incremental:
            # The incremental table is sized to the text; a reset after a
            # rebind must adopt the current length, not the old geometry.
            self._memo.resize(self._length)
        else:
            self._memo.reset()

    def memo_entry_count(self) -> int:
        return self._memo.entry_count()

    def memo_size_bytes(self) -> int:
        return self._memo.size_bytes()

    # -- fused replay (error path only) -------------------------------------

    def _replay_fused(self, token: Any, pos: int) -> None:
        # ``token`` is the Regex node itself; its ``original`` is the fused
        # region's value-free expression (no Nonterminal, no Regex inside).
        self._replay(token.original, pos)

    def _replay(self, expr: Any, pos: int) -> int:
        """Re-evaluate a value-free expression purely for its ``_expected``
        records; returns the end position or -1.  Mirrors the interpreter's
        recording behaviour node for node."""
        text = self._text
        if isinstance(expr, Literal):
            value = expr.text
            if expr.ignore_case:
                end = pos + len(value)
                if text[pos:end].lower() == value.lower():
                    return end
                self._expected(self._literal_failure_pos(pos, value, True), repr(value))
                return FAIL
            if text.startswith(value, pos):
                return pos + len(value)
            self._expected(self._literal_failure_pos(pos, value), repr(value))
            return FAIL
        if isinstance(expr, CharClass):
            if pos < self._length and expr.matches(text[pos]):
                return pos + 1
            self._expected(pos, _CLASS_MSG)
            return FAIL
        if isinstance(expr, AnyChar):
            if pos < self._length:
                return pos + 1
            self._expected(pos, _ANY_MSG)
            return FAIL
        if isinstance(expr, Sequence):
            for item in expr.items:
                pos = self._replay(item, pos)
                if pos < 0:
                    return FAIL
            return pos
        if isinstance(expr, ChoiceExpr):
            for branch in expr.alternatives:
                end = self._replay(branch, pos)
                if end >= 0:
                    return end
            return FAIL
        if isinstance(expr, Repetition):
            count = 0
            while True:
                end = self._replay(expr.expr, pos)
                if end < 0 or end == pos:
                    break
                pos = end
                count += 1
            if count < expr.min:
                return FAIL
            return pos
        if isinstance(expr, Option):
            end = self._replay(expr.expr, pos)
            return pos if end < 0 else end
        if isinstance(expr, And):
            return pos if self._replay(expr.expr, pos) >= 0 else FAIL
        if isinstance(expr, Not):
            if self._replay(expr.expr, pos) >= 0:
                self._expected(pos, "not-predicate")
                return FAIL
            return pos
        if isinstance(expr, (Voided, Text, Binding)):
            return self._replay(expr.expr, pos)
        if isinstance(expr, Epsilon):
            return pos
        if isinstance(expr, Fail):
            self._expected(pos, expr.message or "nothing")
            return FAIL
        if isinstance(expr, CharSwitch):
            if pos < self._length:
                ch = text[pos]
                for chars, branch in expr.cases:
                    if ch in chars:
                        end = self._replay(branch, pos)
                        if end >= 0:
                            return end
                        break
            return self._replay(expr.default, pos)
        raise AnalysisError(f"vm replay: cannot replay {type(expr).__name__}")

    # -- profiled expected recording ----------------------------------------

    def _expected(self, pos: int, what: str) -> None:
        profile = self._profile
        if profile is not None and pos > self._fail_pos and self._prod_stack:
            profile.record_farthest(self._prod_stack[-1])
        super()._expected(pos, what)

    _prod_stack: list = []

    # -- the machine ---------------------------------------------------------

    def _run(self, start: str) -> tuple[int, Any]:
        if self._profile is not None:
            return self._run_profiled(start)
        if self._incremental:
            return self._run_incremental(start)
        program = self._program
        code = program.code
        entries = program.entries
        if start not in entries:
            raise AnalysisError(f"undefined production {start!r}")
        text = self._text
        length = self._length
        memo = self._memo
        mput = memo.put
        # Inline the chunked fast path: with no events sink installed the
        # memo get is two list index operations, not a method call.
        if type(memo) is ChunkedMemoTable and "get" not in memo.__dict__:
            columns = memo._columns
            csize = memo._chunk_size
            mget = None
        else:
            columns = None
            csize = 0
            mget = memo.get
        budget = self._depth_budget
        limit = DEFAULT_STACK_BUDGET if budget is None else budget
        pending = self._fused_pending

        # Failure protocol: a failing instruction stores its expectation in
        # ``fmsg``/``fpos`` (or records inline) and jumps to ip 0, where the
        # compiled OP_FAIL acts as the unwinder.  That keeps the hot path
        # free of any per-instruction "did we fail?" check.  ``fmsg`` is
        # None between failures; sites that fail without a message (regex,
        # memoized failures, starved repetitions) rely on that invariant.
        #
        # K_CALL frames are ``(kind, ret_ip, memo_index, call_pos, env,
        # bind)`` — ``bind`` is the binding name for CALL_BIND frames, None
        # for plain calls.  The dispatch ladder is ordered by measured
        # opcode frequency (see docs/vm.md), not opcode number.
        pos = 0
        ip = entries[start]
        vals: list = []
        env: dict[str, Any] = {}
        stack: list = [(K_CALL, HALT_IP, program.memo_index.get(start, -1), 0, env, None)]
        stack_append = stack.append
        vals_append = vals.append
        fail_pos = self._fail_pos
        fail_exp = self._fail_expected
        fmsg: str | None = None
        fpos = 0

        while True:
            inst = code[ip]
            op = inst[0]

            if op == OP_CALL:
                midx = inst[2]
                if midx >= 0:
                    if columns is not None:
                        column = columns.get(pos)
                        if column is None:
                            hit = None
                        else:
                            chunk = column.chunks[midx // csize]
                            hit = None if chunk is None else chunk[midx % csize]
                    else:
                        hit = mget(midx, pos)
                    if hit is not None:
                        npos = hit[0]
                        if npos < 0:
                            ip = 0
                        else:
                            pos = npos
                            vals_append(hit[1])
                            ip += 1
                        continue
                if len(stack) >= limit:
                    self._fail_pos = fail_pos
                    self._fail_expected = fail_exp
                    raise self.depth_error(limit)
                stack_append((K_CALL, ip + 1, midx, pos, env, None))
                ip = inst[1]
            elif op == OP_GCHOICE:
                if pos < length and text[pos] in inst[1]:
                    stack_append((K_CHOICE, inst[2], pos, len(vals), env))
                    ip += 1
                else:
                    # A skipped alternative records exactly the one failure
                    # its evaluation would have recorded (dispatch_safe).
                    msg = inst[3]
                    if pos > fail_pos:
                        fail_pos = pos
                        fail_exp = [msg]
                    elif pos == fail_pos and msg not in fail_exp:
                        fail_exp.append(msg)
                    ip = inst[2]
            elif op == OP_RET:
                frame = stack.pop()
                if frame[2] >= 0:
                    mput(frame[2], frame[3], (pos, vals[-1]))
                env = frame[4]
                bind = frame[5]
                if bind is not None:
                    env[bind] = vals.pop()
                ip = frame[1]
            elif op == OP_REGEX:
                match = inst[1](text, pos)
                if match is None:
                    pending.append((inst[4], pos))
                    ip = 0
                else:
                    if not inst[3]:
                        pending.append((inst[4], pos))
                    end = match.end()
                    push_mode = inst[2]
                    if push_mode == 1:
                        vals_append(text[pos:end])
                    elif push_mode == 2:
                        vals_append(None)
                    elif push_mode == 3:
                        env[inst[6]] = text[pos:end]
                    elif push_mode == 4:
                        env[inst[6]] = None
                    pos = end
                    ip += 1
            elif op == OP_ACTION_RET:
                value = eval(inst[1], ACTION_GLOBALS, env)  # noqa: S307
                frame = stack.pop()
                if frame[2] >= 0:
                    mput(frame[2], frame[3], (pos, value))
                env = frame[4]
                bind = frame[5]
                if bind is not None:
                    env[bind] = value
                else:
                    vals_append(value)
                ip = frame[1]
            elif op == OP_CALL_BIND:
                midx = inst[2]
                if midx >= 0:
                    if columns is not None:
                        column = columns.get(pos)
                        if column is None:
                            hit = None
                        else:
                            chunk = column.chunks[midx // csize]
                            hit = None if chunk is None else chunk[midx % csize]
                    else:
                        hit = mget(midx, pos)
                    if hit is not None:
                        npos = hit[0]
                        if npos < 0:
                            ip = 0
                        else:
                            pos = npos
                            env[inst[4]] = hit[1]
                            ip += 1
                        continue
                if len(stack) >= limit:
                    self._fail_pos = fail_pos
                    self._fail_expected = fail_exp
                    raise self.depth_error(limit)
                stack_append((K_CALL, ip + 1, midx, pos, env, inst[4]))
                ip = inst[1]
            elif op == OP_FAIL:
                # The unwinder: record the pending expectation, then pop
                # entries until one resumes control.
                if fmsg is not None:
                    if fpos > fail_pos:
                        fail_pos = fpos
                        fail_exp = [fmsg]
                    elif fpos == fail_pos and fmsg not in fail_exp:
                        fail_exp.append(fmsg)
                    fmsg = None
                while True:
                    if not stack:
                        self._fail_pos = fail_pos
                        self._fail_expected = fail_exp
                        return FAILPAIR
                    entry = stack.pop()
                    kind = entry[0]
                    if kind == K_CHOICE:
                        ip = entry[1]
                        pos = entry[2]
                        del vals[entry[3]:]
                        env = entry[4]
                        break
                    if kind == K_CALL:
                        if entry[2] >= 0:
                            mput(entry[2], entry[3], FAILPAIR)
                        continue
                    if kind == K_REP:
                        pos = entry[2]
                        del vals[entry[4]:]
                        env = entry[8]
                        if entry[5] < entry[6]:
                            continue
                        mode = entry[7]
                        if mode == 2:
                            collected = vals[entry[3]:]
                            del vals[entry[3]:]
                            vals_append(collected)
                        elif mode == 1:
                            vals_append(None)
                        ip = entry[1]
                        break
                    if kind == K_NOT:
                        ip = entry[1]
                        pos = entry[2]
                        del vals[entry[3]:]
                        env = entry[4]
                        break
                    # K_AND: the predicate's operand failed, so the predicate
                    # itself fails -- keep unwinding.
            elif op == OP_ENV_NEW:
                env = dict.fromkeys(inst[1])
                ip += 1
            elif op == OP_REP_BEGIN:
                stack_append([K_REP, inst[1], pos, len(vals), len(vals), 0, inst[2], inst[3], env])
                ip += 1
            elif op == OP_ACTION:
                value = eval(inst[1], ACTION_GLOBALS, env)  # noqa: S307
                if inst[2]:
                    vals_append(value)
                ip += 1
            elif op == OP_CHOICE:
                stack_append((K_CHOICE, inst[1], pos, len(vals), env))
                ip += 1
            elif op == OP_GUARD:
                if pos < length and text[pos] in inst[1]:
                    ip += 1
                else:
                    msg = inst[3]
                    if pos > fail_pos:
                        fail_pos = pos
                        fail_exp = [msg]
                    elif pos == fail_pos and msg not in fail_exp:
                        fail_exp.append(msg)
                    ip = inst[2]
            elif op == OP_RED_NODE:
                count = inst[2]
                if count:
                    children = tuple(vals[-count:])
                    del vals[-count:]
                else:
                    children = ()
                location = self._location(stack[-1][3]) if inst[3] else None
                vals_append(GNode(inst[1], children, location))
                ip += 1
            elif op == OP_POPE:
                stack.pop()
                ip += 1
            elif op == OP_REP_NEXT:
                entry = stack[-1]
                if pos == entry[2]:
                    # Zero-progress iteration: drop its values and finish the
                    # loop (the iteration neither counts nor collects).
                    del vals[entry[4]:]
                    stack.pop()
                    if entry[5] < entry[6]:
                        ip = 0
                    else:
                        mode = entry[7]
                        if mode == 2:
                            collected = vals[entry[3]:]
                            del vals[entry[3]:]
                            vals_append(collected)
                        elif mode == 1:
                            vals_append(None)
                        ip += 1
                else:
                    entry[5] += 1
                    entry[2] = pos
                    entry[4] = len(vals)
                    ip = inst[1]
            elif op == OP_CHAR:
                if pos < length and text[pos] == inst[1]:
                    if inst[3]:
                        vals_append(inst[1])
                    pos += 1
                    ip += 1
                else:
                    fmsg = inst[2]
                    fpos = pos
                    ip = 0
            elif op == OP_PUSH_POS:
                vals_append(pos)
                ip += 1
            elif op == OP_TEXT_END:
                start_pos = vals.pop()
                vals_append(text[start_pos:pos])
                ip += 1
            elif op == OP_SET:
                if pos < length and text[pos] in inst[1]:
                    if inst[2]:
                        vals_append(text[pos])
                    pos += 1
                    ip += 1
                else:
                    fmsg = _CLASS_MSG
                    fpos = pos
                    ip = 0
            elif op == OP_LIT:
                if text.startswith(inst[1], pos):
                    if inst[4]:
                        vals_append(inst[1])
                    pos += inst[2]
                    ip += 1
                else:
                    # Trie view of the literal: fail at the first mismatch.
                    lit = inst[1]
                    if pos < length and text[pos] == lit[0]:
                        fpos = self._literal_failure_pos(pos, lit)
                    else:
                        fpos = pos
                    fmsg = inst[3]
                    ip = 0
            elif op == OP_COMMIT:
                stack.pop()
                ip = inst[1]
            elif op == OP_BIND_POP:
                env[inst[1]] = vals.pop()
                ip += 1
            elif op == OP_PUSH:
                vals_append(inst[1])
                ip += 1
            elif op == OP_SWITCH:
                if pos < length:
                    target = inst[1].get(text[pos])
                    if target is not None:
                        stack_append((K_CHOICE, inst[2], pos, len(vals), env))
                        ip = target
                        continue
                ip = inst[2]
            elif op == OP_SEQ_TUPLE:
                count = inst[1]
                grouped = tuple(vals[-count:])
                del vals[-count:]
                vals_append(grouped)
                ip += 1
            elif op == OP_RED_TEXT:
                vals_append(text[stack[-1][3]:pos])
                ip += 1
            elif op == OP_SPAN:
                charset = inst[1]
                while pos < length and text[pos] in charset:
                    pos += 1
                # The iteration that stops the loop records its failure,
                # exactly like the per-iteration encoding.
                if pos > fail_pos:
                    fail_pos = pos
                    fail_exp = [_CLASS_MSG]
                elif pos == fail_pos and _CLASS_MSG not in fail_exp:
                    fail_exp.append(_CLASS_MSG)
                ip += 1
            elif op == OP_CLASS:
                if pos < length and inst[1](text[pos]):
                    if inst[2]:
                        vals_append(text[pos])
                    pos += 1
                    ip += 1
                else:
                    fmsg = _CLASS_MSG
                    fpos = pos
                    ip = 0
            elif op == OP_ANY:
                if pos < length:
                    if inst[1]:
                        vals_append(text[pos])
                    pos += 1
                    ip += 1
                else:
                    fmsg = _ANY_MSG
                    fpos = pos
                    ip = 0
            elif op == OP_POP:
                vals.pop()
                ip += 1
            elif op == OP_BIND:
                env[inst[1]] = vals[-1]
                ip += 1
            elif op == OP_NOT_BEGIN:
                stack_append((K_NOT, inst[1], pos, len(vals), env))
                ip += 1
            elif op == OP_NOT_FAIL:
                entry = stack.pop()
                fmsg = "not-predicate"
                fpos = entry[2]
                ip = 0
            elif op == OP_AND_BEGIN:
                stack_append((K_AND, pos, len(vals), env))
                ip += 1
            elif op == OP_AND_END:
                entry = stack.pop()
                pos = entry[1]
                del vals[entry[2]:]
                env = entry[3]
                ip += 1
            elif op == OP_LIT_CI:
                end = pos + inst[3]
                chunk = text[pos:end]
                if chunk.lower() == inst[2]:
                    if inst[5]:
                        vals_append(chunk)
                    pos = end
                    ip += 1
                else:
                    fpos = self._literal_failure_pos(pos, inst[1], True)
                    fmsg = inst[4]
                    ip = 0
            elif op == OP_EXPECT_FAIL:
                fmsg = inst[1]
                fpos = pos
                ip = 0
            elif op == OP_HALT:
                self._fail_pos = fail_pos
                self._fail_expected = fail_exp
                return pos, (vals[-1] if vals else None)
            elif op == OP_JUMP:
                ip = inst[1]
            else:
                raise AnalysisError(f"vm machine: unknown opcode {op}")

    # -- the incremental machine ----------------------------------------------

    def _run_incremental(self, start: str) -> tuple[int, Any]:
        """The watermark-tracking twin loop (see docs/incremental.md).

        Identical to :meth:`_run` except that it maintains ``wm``, the
        *examined* watermark of the current memoized frame — the exclusive
        end of the input span the frame has read, lookahead and failure
        probes included — and stores *relative* ``((span, value),
        rel_examined)`` entries in an :class:`IncrementalMemoTable` (span =
        next_pos − pos, −1 for failure), so the table relocates across
        edits by splicing columns.  K_CALL frames grow a seventh slot
        holding the caller's saved watermark; every other stack shape is
        unchanged.  Programs must be compiled with ``incremental=True``
        (fused regex regions are lowered back to their originals — a single
        C scan examines unboundedly far past its match end; incremental
        programs also memoize every production, see the compiler).

        Watermark protocol: a memoized call saves the caller's ``wm`` and
        resets to the call position; the entry records ``max(wm, end)``; the
        caller resumes with ``max(saved, entry examined)``.  Memo hits fold
        the stored examined end into ``wm``.  Reads that leave no failure
        record — succeeding ``&``/``!`` operands, dispatch probes of
        ``text[pos]`` (SWITCH/GUARD/GCHOICE), SPAN stop positions — bump
        ``wm`` explicitly; recorded failures bump it in the unwinder.
        """
        program = self._program
        code = program.code
        entries = program.entries
        if start not in entries:
            raise AnalysisError(f"undefined production {start!r}")
        text = self._text
        length = self._length
        memo = self._memo
        mput = memo.put
        cols = memo._cols  # position-indexed column list (IncrementalMemoTable)
        budget = self._depth_budget
        limit = DEFAULT_STACK_BUDGET if budget is None else budget

        pos = 0
        wm = 0
        ip = entries[start]
        vals: list = []
        env: dict[str, Any] = {}
        stack: list = [
            (K_CALL, HALT_IP, program.memo_index.get(start, -1), 0, env, None, 0)
        ]
        stack_append = stack.append
        vals_append = vals.append
        fail_pos = self._fail_pos
        fail_exp = self._fail_expected
        fmsg: str | None = None
        fpos = 0

        while True:
            inst = code[ip]
            op = inst[0]

            if op == OP_CALL:
                midx = inst[2]
                if midx >= 0:
                    column = cols[pos]
                    hit = column[midx] if column is not None else None
                    if hit is not None:
                        examined = pos + hit[1]
                        if examined > wm:
                            wm = examined
                        pair = hit[0]
                        span = pair[0]
                        if span < 0:
                            ip = 0
                        else:
                            pos += span
                            vals_append(pair[1])
                            ip += 1
                        continue
                if len(stack) >= limit:
                    self._fail_pos = fail_pos
                    self._fail_expected = fail_exp
                    raise self.depth_error(limit)
                stack_append((K_CALL, ip + 1, midx, pos, env, None, wm))
                wm = pos
                ip = inst[1]
            elif op == OP_GCHOICE:
                if pos >= wm:
                    wm = pos + 1  # the dispatch probe reads text[pos] / EOF
                if pos < length and text[pos] in inst[1]:
                    stack_append((K_CHOICE, inst[2], pos, len(vals), env))
                    ip += 1
                else:
                    msg = inst[3]
                    if pos > fail_pos:
                        fail_pos = pos
                        fail_exp = [msg]
                    elif pos == fail_pos and msg not in fail_exp:
                        fail_exp.append(msg)
                    ip = inst[2]
            elif op == OP_RET:
                frame = stack.pop()
                if wm < pos:
                    wm = pos
                if frame[2] >= 0:
                    base = frame[3]
                    mput(frame[2], base, ((pos - base, vals[-1]), wm - base))
                saved = frame[6]
                if saved > wm:
                    wm = saved
                env = frame[4]
                bind = frame[5]
                if bind is not None:
                    env[bind] = vals.pop()
                ip = frame[1]
            elif op == OP_ACTION_RET:
                value = eval(inst[1], ACTION_GLOBALS, env)  # noqa: S307
                frame = stack.pop()
                if wm < pos:
                    wm = pos
                if frame[2] >= 0:
                    base = frame[3]
                    mput(frame[2], base, ((pos - base, value), wm - base))
                saved = frame[6]
                if saved > wm:
                    wm = saved
                env = frame[4]
                bind = frame[5]
                if bind is not None:
                    env[bind] = value
                else:
                    vals_append(value)
                ip = frame[1]
            elif op == OP_CALL_BIND:
                midx = inst[2]
                if midx >= 0:
                    column = cols[pos]
                    hit = column[midx] if column is not None else None
                    if hit is not None:
                        examined = pos + hit[1]
                        if examined > wm:
                            wm = examined
                        pair = hit[0]
                        span = pair[0]
                        if span < 0:
                            ip = 0
                        else:
                            pos += span
                            env[inst[4]] = pair[1]
                            ip += 1
                        continue
                if len(stack) >= limit:
                    self._fail_pos = fail_pos
                    self._fail_expected = fail_exp
                    raise self.depth_error(limit)
                stack_append((K_CALL, ip + 1, midx, pos, env, inst[4], wm))
                wm = pos
                ip = inst[1]
            elif op == OP_FAIL:
                if fmsg is not None:
                    if fpos >= wm:
                        wm = fpos + 1  # the failed read examined text[fpos]
                    if fpos > fail_pos:
                        fail_pos = fpos
                        fail_exp = [fmsg]
                    elif fpos == fail_pos and fmsg not in fail_exp:
                        fail_exp.append(fmsg)
                    fmsg = None
                while True:
                    if not stack:
                        self._fail_pos = fail_pos
                        self._fail_expected = fail_exp
                        return FAILPAIR
                    entry = stack.pop()
                    kind = entry[0]
                    if kind == K_CHOICE:
                        ip = entry[1]
                        pos = entry[2]
                        del vals[entry[3]:]
                        env = entry[4]
                        break
                    if kind == K_CALL:
                        if entry[2] >= 0:
                            base = entry[3]
                            examined = wm if wm > base else base
                            mput(entry[2], base, (FAILPAIR, examined - base))
                        saved = entry[6]
                        if saved > wm:
                            wm = saved
                        continue
                    if kind == K_REP:
                        pos = entry[2]
                        del vals[entry[4]:]
                        env = entry[8]
                        if entry[5] < entry[6]:
                            continue
                        mode = entry[7]
                        if mode == 2:
                            collected = vals[entry[3]:]
                            del vals[entry[3]:]
                            vals_append(collected)
                        elif mode == 1:
                            vals_append(None)
                        ip = entry[1]
                        break
                    if kind == K_NOT:
                        ip = entry[1]
                        pos = entry[2]
                        del vals[entry[3]:]
                        env = entry[4]
                        break
                    # K_AND: the predicate's operand failed, so the predicate
                    # itself fails -- keep unwinding.
            elif op == OP_ENV_NEW:
                env = dict.fromkeys(inst[1])
                ip += 1
            elif op == OP_REP_BEGIN:
                stack_append([K_REP, inst[1], pos, len(vals), len(vals), 0, inst[2], inst[3], env])
                ip += 1
            elif op == OP_ACTION:
                value = eval(inst[1], ACTION_GLOBALS, env)  # noqa: S307
                if inst[2]:
                    vals_append(value)
                ip += 1
            elif op == OP_CHOICE:
                stack_append((K_CHOICE, inst[1], pos, len(vals), env))
                ip += 1
            elif op == OP_GUARD:
                if pos >= wm:
                    wm = pos + 1  # dispatch probe, as in OP_GCHOICE
                if pos < length and text[pos] in inst[1]:
                    ip += 1
                else:
                    msg = inst[3]
                    if pos > fail_pos:
                        fail_pos = pos
                        fail_exp = [msg]
                    elif pos == fail_pos and msg not in fail_exp:
                        fail_exp.append(msg)
                    ip = inst[2]
            elif op == OP_RED_NODE:
                count = inst[2]
                if count:
                    children = tuple(vals[-count:])
                    del vals[-count:]
                else:
                    children = ()
                location = self._location(stack[-1][3]) if inst[3] else None
                vals_append(GNode(inst[1], children, location))
                ip += 1
            elif op == OP_POPE:
                stack.pop()
                ip += 1
            elif op == OP_REP_NEXT:
                entry = stack[-1]
                if pos == entry[2]:
                    del vals[entry[4]:]
                    stack.pop()
                    if entry[5] < entry[6]:
                        ip = 0
                    else:
                        mode = entry[7]
                        if mode == 2:
                            collected = vals[entry[3]:]
                            del vals[entry[3]:]
                            vals_append(collected)
                        elif mode == 1:
                            vals_append(None)
                        ip += 1
                else:
                    entry[5] += 1
                    entry[2] = pos
                    entry[4] = len(vals)
                    ip = inst[1]
            elif op == OP_CHAR:
                if pos < length and text[pos] == inst[1]:
                    if inst[3]:
                        vals_append(inst[1])
                    pos += 1
                    ip += 1
                else:
                    fmsg = inst[2]
                    fpos = pos
                    ip = 0
            elif op == OP_PUSH_POS:
                vals_append(pos)
                ip += 1
            elif op == OP_TEXT_END:
                start_pos = vals.pop()
                vals_append(text[start_pos:pos])
                ip += 1
            elif op == OP_SET:
                if pos < length and text[pos] in inst[1]:
                    if inst[2]:
                        vals_append(text[pos])
                    pos += 1
                    ip += 1
                else:
                    fmsg = _CLASS_MSG
                    fpos = pos
                    ip = 0
            elif op == OP_LIT:
                if text.startswith(inst[1], pos):
                    if inst[4]:
                        vals_append(inst[1])
                    pos += inst[2]
                    ip += 1
                else:
                    lit = inst[1]
                    if pos < length and text[pos] == lit[0]:
                        fpos = self._literal_failure_pos(pos, lit)
                    else:
                        fpos = pos
                    fmsg = inst[3]
                    ip = 0
            elif op == OP_COMMIT:
                stack.pop()
                ip = inst[1]
            elif op == OP_BIND_POP:
                env[inst[1]] = vals.pop()
                ip += 1
            elif op == OP_PUSH:
                vals_append(inst[1])
                ip += 1
            elif op == OP_SWITCH:
                if pos >= wm:
                    wm = pos + 1  # dispatch probe reads text[pos] / EOF
                if pos < length:
                    target = inst[1].get(text[pos])
                    if target is not None:
                        stack_append((K_CHOICE, inst[2], pos, len(vals), env))
                        ip = target
                        continue
                ip = inst[2]
            elif op == OP_SEQ_TUPLE:
                count = inst[1]
                grouped = tuple(vals[-count:])
                del vals[-count:]
                vals_append(grouped)
                ip += 1
            elif op == OP_RED_TEXT:
                vals_append(text[stack[-1][3]:pos])
                ip += 1
            elif op == OP_SPAN:
                charset = inst[1]
                while pos < length and text[pos] in charset:
                    pos += 1
                if pos >= wm:
                    wm = pos + 1  # the stopping read examined text[pos] / EOF
                if pos > fail_pos:
                    fail_pos = pos
                    fail_exp = [_CLASS_MSG]
                elif pos == fail_pos and _CLASS_MSG not in fail_exp:
                    fail_exp.append(_CLASS_MSG)
                ip += 1
            elif op == OP_CLASS:
                if pos < length and inst[1](text[pos]):
                    if inst[2]:
                        vals_append(text[pos])
                    pos += 1
                    ip += 1
                else:
                    fmsg = _CLASS_MSG
                    fpos = pos
                    ip = 0
            elif op == OP_ANY:
                if pos < length:
                    if inst[1]:
                        vals_append(text[pos])
                    pos += 1
                    ip += 1
                else:
                    fmsg = _ANY_MSG
                    fpos = pos
                    ip = 0
            elif op == OP_POP:
                vals.pop()
                ip += 1
            elif op == OP_BIND:
                env[inst[1]] = vals[-1]
                ip += 1
            elif op == OP_NOT_BEGIN:
                stack_append((K_NOT, inst[1], pos, len(vals), env))
                ip += 1
            elif op == OP_NOT_FAIL:
                entry = stack.pop()
                if pos > wm:
                    wm = pos  # the operand's successful match was examined
                fmsg = "not-predicate"
                fpos = entry[2]
                ip = 0
            elif op == OP_AND_BEGIN:
                stack_append((K_AND, pos, len(vals), env))
                ip += 1
            elif op == OP_AND_END:
                entry = stack.pop()
                if pos > wm:
                    wm = pos  # succeeding lookahead leaves no failure record
                pos = entry[1]
                del vals[entry[2]:]
                env = entry[3]
                ip += 1
            elif op == OP_LIT_CI:
                end = pos + inst[3]
                chunk = text[pos:end]
                if chunk.lower() == inst[2]:
                    if inst[5]:
                        vals_append(chunk)
                    pos = end
                    ip += 1
                else:
                    fpos = self._literal_failure_pos(pos, inst[1], True)
                    fmsg = inst[4]
                    ip = 0
            elif op == OP_EXPECT_FAIL:
                fmsg = inst[1]
                fpos = pos
                ip = 0
            elif op == OP_HALT:
                self._fail_pos = fail_pos
                self._fail_expected = fail_exp
                return pos, (vals[-1] if vals else None)
            elif op == OP_JUMP:
                ip = inst[1]
            elif op == OP_REGEX:
                raise AnalysisError(
                    "vm machine: fused regex op in an incremental program "
                    "(compiler bug: incremental lowering missed a Regex)"
                )
            else:
                raise AnalysisError(f"vm machine: unknown opcode {op}")

    # -- the profiled machine -------------------------------------------------

    def _run_profiled(self, start: str) -> tuple[int, Any]:
        """The instrumented twin loop.

        Slower by design (method-based memo access so
        :class:`~repro.profile.collector.MemoEvents` fire, a production-name
        stack for farthest-failure attribution, per-alternative probes).
        Offsets, ASTs, and verdicts are identical to :meth:`_run`; the
        per-alternative *wasted* figure is an estimate — the distance from
        the alternative's entry to the failure position, which may include
        progress inside a failing callee.
        """
        program = self._program
        code = program.code
        entries = program.entries
        if start not in entries:
            raise AnalysisError(f"undefined production {start!r}")
        text = self._text
        length = self._length
        memo = self._memo
        mget = memo.get
        mput = memo.put
        budget = self._depth_budget
        limit = DEFAULT_STACK_BUDGET if budget is None else budget
        pending = self._fused_pending
        profile = self._profile
        prod_stack: list[str] = []
        self._prod_stack = prod_stack
        expected = self._expected

        pos = 0
        ip = entries[start]
        vals: list = []
        env: dict[str, Any] = {}
        stack: list = [(K_CALL, HALT_IP, program.memo_index.get(start, -1), 0, env, start)]
        stack_append = stack.append
        vals_append = vals.append
        failed = False
        # The start production is entered directly, not via OP_CALL: count
        # its invocation (and the inevitable memo miss on the fresh table)
        # and seed the attribution stack here.
        profile.invoke(start)
        if stack[0][2] >= 0:
            profile.memo_miss(start)
        prod_stack.append(start)

        while True:
            if failed:
                failed = False
                while True:
                    if not stack:
                        return FAILPAIR
                    entry = stack.pop()
                    kind = entry[0]
                    if kind == K_PCHOICE:
                        profile.alt_fail(entry[5], entry[6], max(0, pos - entry[2]))
                        ip = entry[1]
                        pos = entry[2]
                        del vals[entry[3]:]
                        env = entry[4]
                        break
                    if kind == K_CHOICE:
                        ip = entry[1]
                        pos = entry[2]
                        del vals[entry[3]:]
                        env = entry[4]
                        break
                    if kind == K_CALL:
                        prod_stack.pop()
                        profile.failure(entry[5])
                        if entry[2] >= 0:
                            mput(entry[2], entry[3], FAILPAIR)
                        continue
                    if kind == K_REP:
                        pos = entry[2]
                        del vals[entry[4]:]
                        env = entry[8]
                        if entry[5] < entry[6]:
                            continue
                        mode = entry[7]
                        if mode == 2:
                            collected = vals[entry[3]:]
                            del vals[entry[3]:]
                            vals_append(collected)
                        elif mode == 1:
                            vals_append(None)
                        ip = entry[1]
                        break
                    if kind == K_NOT:
                        ip = entry[1]
                        pos = entry[2]
                        del vals[entry[3]:]
                        env = entry[4]
                        break
                continue

            inst = code[ip]
            op = inst[0]

            if op == OP_CHAR:
                if pos < length and text[pos] == inst[1]:
                    if inst[3]:
                        vals_append(inst[1])
                    pos += 1
                    ip += 1
                else:
                    expected(pos, inst[2])
                    failed = True
            elif op == OP_SET:
                if pos < length and text[pos] in inst[1]:
                    if inst[2]:
                        vals_append(text[pos])
                    pos += 1
                    ip += 1
                else:
                    expected(pos, _CLASS_MSG)
                    failed = True
            elif op == OP_CALL:
                midx = inst[2]
                name = inst[3]
                profile.invoke(name)
                if midx >= 0:
                    hit = mget(midx, pos)
                    if hit is not None:
                        npos = hit[0]
                        if npos < 0:
                            profile.failure(name)
                            failed = True
                        else:
                            profile.success(name)
                            pos = npos
                            vals_append(hit[1])
                            ip += 1
                        continue
                if len(stack) >= limit:
                    raise self.depth_error(limit)
                stack_append((K_CALL, ip + 1, midx, pos, env, name))
                prod_stack.append(name)
                ip = inst[1]
            elif op == OP_RET:
                frame = stack.pop()
                prod_stack.pop()
                if frame[2] >= 0:
                    mput(frame[2], frame[3], (pos, vals[-1]))
                profile.success(frame[5])
                env = frame[4]
                ip = frame[1]
            elif op == OP_CHOICE:
                stack_append((K_CHOICE, inst[1], pos, len(vals), env))
                ip += 1
            elif op == OP_COMMIT:
                stack.pop()
                ip = inst[1]
            elif op == OP_POPE:
                stack.pop()
                ip += 1
            elif op == OP_LIT:
                if text.startswith(inst[1], pos):
                    if inst[4]:
                        vals_append(inst[1])
                    pos += inst[2]
                    ip += 1
                else:
                    expected(self._literal_failure_pos(pos, inst[1]), inst[3])
                    failed = True
            elif op == OP_REP_NEXT:
                entry = stack[-1]
                if pos == entry[2]:
                    del vals[entry[4]:]
                    stack.pop()
                    if entry[5] < entry[6]:
                        failed = True
                    else:
                        mode = entry[7]
                        if mode == 2:
                            collected = vals[entry[3]:]
                            del vals[entry[3]:]
                            vals_append(collected)
                        elif mode == 1:
                            vals_append(None)
                        ip += 1
                else:
                    entry[5] += 1
                    entry[2] = pos
                    entry[4] = len(vals)
                    ip = inst[1]
            elif op == OP_REP_BEGIN:
                stack_append([K_REP, inst[1], pos, len(vals), len(vals), 0, inst[2], inst[3], env])
                ip += 1
            elif op == OP_SWITCH:
                if pos < length:
                    target = inst[1].get(text[pos])
                    if target is not None:
                        stack_append((K_CHOICE, inst[2], pos, len(vals), env))
                        ip = target
                        continue
                ip = inst[2]
            elif op == OP_REGEX:
                profile.fused_scan(inst[5])
                match = inst[1](text, pos)
                if match is None:
                    pending.append((inst[4], pos))
                    failed = True
                else:
                    if not inst[3]:
                        pending.append((inst[4], pos))
                    end = match.end()
                    push_mode = inst[2]
                    if push_mode == 1:
                        vals_append(text[pos:end])
                    elif push_mode == 2:
                        vals_append(None)
                    pos = end
                    ip += 1
            elif op == OP_JUMP:
                ip = inst[1]
            elif op == OP_ANY:
                if pos < length:
                    if inst[1]:
                        vals_append(text[pos])
                    pos += 1
                    ip += 1
                else:
                    expected(pos, _ANY_MSG)
                    failed = True
            elif op == OP_CLASS:
                if pos < length and inst[1](text[pos]):
                    if inst[2]:
                        vals_append(text[pos])
                    pos += 1
                    ip += 1
                else:
                    expected(pos, _CLASS_MSG)
                    failed = True
            elif op == OP_SPAN:
                charset = inst[1]
                while pos < length and text[pos] in charset:
                    pos += 1
                expected(pos, _CLASS_MSG)
                ip += 1
            elif op == OP_NOT_BEGIN:
                stack_append((K_NOT, inst[1], pos, len(vals), env))
                ip += 1
            elif op == OP_NOT_FAIL:
                entry = stack.pop()
                expected(entry[2], "not-predicate")
                failed = True
            elif op == OP_AND_BEGIN:
                stack_append((K_AND, pos, len(vals), env))
                ip += 1
            elif op == OP_AND_END:
                entry = stack.pop()
                pos = entry[1]
                del vals[entry[2]:]
                env = entry[3]
                ip += 1
            elif op == OP_PUSH:
                vals_append(inst[1])
                ip += 1
            elif op == OP_POP:
                vals.pop()
                ip += 1
            elif op == OP_PUSH_POS:
                vals_append(pos)
                ip += 1
            elif op == OP_TEXT_END:
                start_pos = vals.pop()
                vals_append(text[start_pos:pos])
                ip += 1
            elif op == OP_BIND:
                env[inst[1]] = vals[-1]
                ip += 1
            elif op == OP_BIND_POP:
                env[inst[1]] = vals.pop()
                ip += 1
            elif op == OP_ACTION:
                value = eval(inst[1], ACTION_GLOBALS, env)  # noqa: S307
                if inst[2]:
                    vals_append(value)
                ip += 1
            elif op == OP_ENV_NEW:
                env = dict.fromkeys(inst[1])
                ip += 1
            elif op == OP_SEQ_TUPLE:
                count = inst[1]
                grouped = tuple(vals[-count:])
                del vals[-count:]
                vals_append(grouped)
                ip += 1
            elif op == OP_RED_TEXT:
                vals_append(text[stack[-1][3]:pos])
                ip += 1
            elif op == OP_RED_NODE:
                count = inst[2]
                if count:
                    children = tuple(vals[-count:])
                    del vals[-count:]
                else:
                    children = ()
                location = self._location(stack[-1][3]) if inst[3] else None
                vals_append(GNode(inst[1], children, location))
                ip += 1
            elif op == OP_LIT_CI:
                end = pos + inst[3]
                chunk = text[pos:end]
                if chunk.lower() == inst[2]:
                    if inst[5]:
                        vals_append(chunk)
                    pos = end
                    ip += 1
                else:
                    expected(self._literal_failure_pos(pos, inst[1], True), inst[4])
                    failed = True
            elif op == OP_PROF_ALT:
                profile.alt_enter(inst[1], inst[2])
                ip += 1
            elif op == OP_PROF_ALT_OK:
                profile.alt_success(inst[1], inst[2])
                ip += 1
            elif op == OP_PCHOICE:
                stack_append((K_PCHOICE, inst[1], pos, len(vals), env, inst[2], inst[3]))
                ip += 1
            elif op == OP_FAIL:
                failed = True
            elif op == OP_EXPECT_FAIL:
                expected(pos, inst[1])
                failed = True
            elif op == OP_HALT:
                return pos, (vals[-1] if vals else None)
            else:
                raise AnalysisError(f"vm machine: unknown opcode {op}")
