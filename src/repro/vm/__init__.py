"""Parsing-machine backend: the grammar IR compiled to flat bytecode.

This package is the fourth execution strategy, alongside the tree-walking
interpreter (:mod:`repro.interp`), closure compilation
(:mod:`repro.interp.closures`), and generated source (:mod:`repro.codegen`):

- :mod:`repro.vm.compiler` lowers the *post-optimization* PEG IR — including
  fused :class:`~repro.peg.expr.Regex` leaves and
  :class:`~repro.peg.expr.CharSwitch` dispatch — into one flat instruction
  array (:class:`VMProgram`);
- :mod:`repro.vm.machine` runs that program with an explicit backtrack/call
  stack (:class:`VMParser`) — no Python recursion on the hot path, so the
  depth budget becomes a stack-entry budget;
- :mod:`repro.vm.disasm` renders programs for inspection (``repro-stats
  --disasm``).

The semantics are bit-for-bit those of the other backends: same structural
ASTs, same farthest-failure offsets and expected sets, same memo-table
organizations, same deferred fused-failure replay.  The differential oracle
(:mod:`repro.difftest.oracle`) pins this down.
"""

from repro.vm.compiler import VMProgram, compile_program
from repro.vm.disasm import disassemble, summarize
from repro.vm.machine import DEFAULT_STACK_BUDGET, VMParser

__all__ = [
    "DEFAULT_STACK_BUDGET",
    "VMParser",
    "VMProgram",
    "compile_program",
    "disassemble",
    "summarize",
]
