"""IR-to-bytecode lowering for the parsing-machine backend.

The compiler turns the post-optimization grammar IR into one flat
instruction array in the style of LPeg/Nez parsing machines: ordered choice
becomes a backtrack-entry push (``CHOICE``) that a successful alternative
pops (``COMMIT``/``POPE``), productions become ``CALL``/``RET`` over a
return-frame stack, and predicates push handler entries that the failure
unwinder interprets.  Every instruction is a plain tuple ``(opcode,
arg...)``; :class:`repro.vm.machine.VMParser` dispatches over them in a
single loop.

Value construction is decided *statically*, exactly as the other backends
decide it (shared rules from :mod:`repro.peg.values`): each expression is
compiled in **value mode** (leaves exactly one value on the value stack) or
**void mode** (leaves none), and each production alternative ends in reduce
ops (``RED_NODE``/``RED_TEXT``/``SEQ_TUPLE``/…) that build the same
semantic values the interpreter, closure and generated backends produce.

Two compilations exist per grammar: the plain program, and on demand a
*profiled twin* (``profiled=True``) with per-alternative probe ops and
named backtrack entries so :class:`repro.profile.ParseProfile` counters can
be attributed from instruction indices back to production names.  The twin
drops the first-char alternative guards — like the generated parser's
guards they are ``dispatch_safe``-gated, so offsets (though not expected
message texts) are unchanged either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.first import FirstAnalysis
from repro.errors import AnalysisError
from repro.peg.expr import (
    Action,
    And,
    AnyChar,
    Binding,
    CharClass,
    CharSwitch,
    Choice,
    Epsilon,
    Expression,
    Fail,
    Literal,
    Nonterminal,
    Not,
    Option,
    Regex,
    Repetition,
    Sequence,
    Text,
    Voided,
)
from repro.peg.grammar import Grammar
from repro.peg.production import Production, ValueKind
from repro.peg.values import binding_names, contributes, kind_lookup, node_name

#: Minimum alternatives for production-level first-char guards (mirrors the
#: code generator's policy so guard-recorded expected messages agree).
GUARD_MIN_ALTERNATIVES = 3

# ---------------------------------------------------------------------------
# Opcodes.  Numbered roughly by dispatch frequency: the machine's if/elif
# ladder tests them in this order, so hot ops must come first.
# ---------------------------------------------------------------------------

OP_CHAR = 0        # (op, ch, msg, push): match one exact character
OP_SET = 1         # (op, charset, push): match one char in a frozenset
OP_CALL = 2        # (op, target_ip, memo_index, name): invoke a production
OP_RET = 3         # (op,): return from a production (memo-store on the way)
OP_CHOICE = 4      # (op, alt_ip): push a backtrack entry
OP_COMMIT = 5      # (op, target_ip): pop the entry, jump
OP_POPE = 6        # (op,): pop the entry, fall through
OP_LIT = 7         # (op, text, len, msg, push): match a multi-char literal
OP_REP_NEXT = 8    # (op, body_ip): close one repetition iteration
OP_REP_BEGIN = 9   # (op, end_ip, min, mode): open a repetition
OP_GUARD = 10      # (op, charset, target_ip, msg): first-char alt guard
OP_SWITCH = 11     # (op, {ch: ip}, default_ip): first-char dispatch
OP_REGEX = 12      # (op, scan, push_mode, silent, token, label): fused scan
OP_JUMP = 13       # (op, target_ip)
OP_ANY = 14        # (op, push): match any one character
OP_CLASS = 15      # (op, matches, push): char class via a membership fn
OP_SPAN = 16       # (op, charset): void (CharClass)* as one scan loop
OP_NOT_BEGIN = 17  # (op, cont_ip): open a !e predicate
OP_NOT_FAIL = 18   # (op,): !e operand matched -> predicate fails
OP_AND_BEGIN = 19  # (op,): open a &e predicate
OP_AND_END = 20    # (op,): &e operand matched -> rewind, continue
OP_PUSH = 21       # (op, const): push a constant value
OP_POP = 22        # (op,): drop the top value
OP_PUSH_POS = 23   # (op,): push the current position (for text: capture)
OP_TEXT_END = 24   # (op,): replace pushed start pos with the matched span
OP_BIND = 25       # (op, name): env[name] = top value (kept on stack)
OP_BIND_POP = 26   # (op, name): env[name] = popped value
OP_ACTION = 27     # (op, code, push): evaluate a semantic action
OP_ENV_NEW = 28    # (op, names): fresh binding env for this alternative
OP_SEQ_TUPLE = 29  # (op, n): collapse top n values into a tuple
OP_RED_TEXT = 30   # (op,): push the text consumed by this production call
OP_RED_NODE = 31   # (op, name, n, with_loc): build a GNode from top n values
OP_LIT_CI = 32     # (op, text, folded, len, msg, push): case-insensitive lit
OP_FAIL = 33       # (op,): unconditional failure (no record)
OP_EXPECT_FAIL = 34  # (op, msg): record an expectation, then fail
OP_HALT = 35       # (op,): successful end of the start production
# Profiled-twin only:
OP_PROF_ALT = 36     # (op, prod, idx): ParseProfile.alt_enter
OP_PROF_ALT_OK = 37  # (op, prod, idx): ParseProfile.alt_success
OP_PCHOICE = 38      # (op, alt_ip, prod, idx): CHOICE with attribution
# Superinstructions (plain program only; the profiled twin keeps the
# separate ops so its probes see every step):
OP_CALL_BIND = 39  # (op, target_ip, memo_index, name, bind): CALL + BIND_POP
OP_GCHOICE = 40    # (op, charset, alt_ip, msg): GUARD + CHOICE fused
OP_ACTION_RET = 41  # (op, code): trailing semantic action + RET in one step

OP_NAMES = {
    OP_CHAR: "char",
    OP_SET: "set",
    OP_CALL: "call",
    OP_RET: "ret",
    OP_CHOICE: "choice",
    OP_COMMIT: "commit",
    OP_POPE: "pope",
    OP_LIT: "lit",
    OP_REP_NEXT: "rep_next",
    OP_REP_BEGIN: "rep_begin",
    OP_GUARD: "guard",
    OP_SWITCH: "switch",
    OP_REGEX: "regex",
    OP_JUMP: "jump",
    OP_ANY: "any",
    OP_CLASS: "class",
    OP_SPAN: "span",
    OP_NOT_BEGIN: "not_begin",
    OP_NOT_FAIL: "not_fail",
    OP_AND_BEGIN: "and_begin",
    OP_AND_END: "and_end",
    OP_PUSH: "push",
    OP_POP: "pop",
    OP_PUSH_POS: "push_pos",
    OP_TEXT_END: "text_end",
    OP_BIND: "bind",
    OP_BIND_POP: "bind_pop",
    OP_ACTION: "action",
    OP_ENV_NEW: "env_new",
    OP_SEQ_TUPLE: "seq_tuple",
    OP_RED_TEXT: "red_text",
    OP_RED_NODE: "red_node",
    OP_LIT_CI: "lit_ci",
    OP_FAIL: "fail",
    OP_EXPECT_FAIL: "expect_fail",
    OP_HALT: "halt",
    OP_PROF_ALT: "prof_alt",
    OP_PROF_ALT_OK: "prof_alt_ok",
    OP_PCHOICE: "pchoice",
    OP_CALL_BIND: "call_bind",
    OP_GCHOICE: "gchoice",
    OP_ACTION_RET: "action_ret",
}

#: Shared program prologue: ip 0 unwinds, ip 1 halts.
FAIL_IP = 0
HALT_IP = 1


def _first_set_message(chars: frozenset[str]) -> str:
    """Guard-skip expected message; must match the code generator's."""
    shown = "".join(sorted(chars))
    if len(shown) > 16:
        shown = shown[:16] + "…"
    return f"one of {shown!r}"


class _Label:
    """A forward-reference instruction address, patched at finalize time."""

    __slots__ = ("ip",)

    def __init__(self) -> None:
        self.ip: int | None = None


@dataclass(frozen=True)
class VMProgram:
    """One grammar compiled to a flat instruction array.

    ``entries`` maps production names to entry addresses; ``memo_rules`` /
    ``memo_index`` give the dense memo-table indices (non-transient
    productions in grammar order, identical to every other memoizing
    backend); ``rule_spans`` maps instruction ranges back to production
    names for the disassembler and the profiler.
    """

    code: tuple[tuple, ...]
    entries: dict[str, int]
    start: str
    memo_rules: tuple[str, ...]
    memo_index: dict[str, int]
    rule_spans: tuple[tuple[str, int, int], ...]
    profiled: bool = False
    chunked: bool = True
    incremental: bool = False
    grammar_name: str = "grammar"
    grammar: Grammar | None = field(default=None, repr=False, compare=False)

    def production_at(self, ip: int) -> str | None:
        """The production whose body contains instruction ``ip``."""
        for name, start, end in self.rule_spans:
            if start <= ip < end:
                return name
        return None


def compile_program(
    source: Any,
    *,
    profiled: bool = False,
    guards: bool | None = None,
    incremental: bool = False,
) -> VMProgram:
    """Compile a grammar (or a :class:`~repro.optim.PreparedGrammar`) to a
    :class:`VMProgram`.

    For a prepared grammar the first-char alternative guards follow the
    ``terminals`` optimization flag (like the code generator); for a bare
    grammar they default to on.  ``guards`` overrides either way;
    ``profiled=True`` always disables them and emits probe ops instead.

    ``incremental=True`` builds the variant executed by
    :meth:`VMParser._run_incremental` (see docs/incremental.md): fused
    ``Regex`` regions are lowered back to their original expressions, whose
    reads the examined watermark can account for exactly — a single C scan
    probes unboundedly far past its match end.  Everything else is compiled
    identically, so incremental and plain runs agree bit for bit.
    """
    if hasattr(source, "grammar"):
        grammar = source.grammar
        if guards is None:
            guards = bool(source.options.terminals)
        chunked = bool(source.chunked_memo)
    else:
        grammar = source
        if guards is None:
            guards = True
        chunked = True
    if profiled and incremental:
        raise AnalysisError("vm compiler: profiled and incremental are exclusive")
    return _Compiler(
        grammar,
        profiled=profiled,
        guards=guards,
        chunked=chunked,
        incremental=incremental,
    ).compile()


class _Compiler:
    def __init__(
        self,
        grammar: Grammar,
        *,
        profiled: bool,
        guards: bool,
        chunked: bool,
        incremental: bool = False,
    ):
        grammar.validate()
        self.grammar = grammar
        self.profiled = profiled
        self.chunked = chunked
        self.incremental = incremental
        self.kind_of = kind_lookup(grammar)
        self.with_location = "withLocation" in grammar.options
        self.first = FirstAnalysis(grammar) if guards and not profiled else None
        self.code: list[list] = []
        # Incremental programs memoize every production (see closures.py:
        # reuse happens at stored-entry granularity, and un-memoized
        # structural glue would make warm reparses re-derive the spine).
        self.memo_rules = tuple(
            p.name
            for p in grammar.productions
            if incremental or not p.is_transient
        )
        self.memo_index = {name: i for i, name in enumerate(self.memo_rules)}
        self.rule_labels = {p.name: _Label() for p in grammar.productions}

    # -- emission helpers ---------------------------------------------------

    def _emit(self, *parts: Any) -> int:
        self.code.append(list(parts))
        return len(self.code) - 1

    def _mark(self, label: _Label) -> None:
        label.ip = len(self.code)

    # -- top level ----------------------------------------------------------

    def compile(self) -> VMProgram:
        self._emit(OP_FAIL)   # FAIL_IP: shared unwind target
        self._emit(OP_HALT)   # HALT_IP: return address of the start frame
        spans: list[tuple[str, int, int]] = []
        for production in self.grammar.productions:
            start = len(self.code)
            self._compile_production(production)
            spans.append((production.name, start, len(self.code)))
        code = tuple(tuple(self._patch(part) for part in inst) for inst in self.code)
        entries = {name: label.ip for name, label in self.rule_labels.items()}
        return VMProgram(
            code=code,
            entries=entries,
            start=self.grammar.start,
            memo_rules=self.memo_rules,
            memo_index=self.memo_index,
            rule_spans=tuple(spans),
            profiled=self.profiled,
            chunked=self.chunked,
            incremental=self.incremental,
            grammar_name=self.grammar.name,
            grammar=self.grammar,
        )

    @staticmethod
    def _patch(part: Any) -> Any:
        if isinstance(part, _Label):
            if part.ip is None:
                raise AnalysisError("vm compiler bug: unmarked label")
            return part.ip
        if isinstance(part, dict):
            return {key: _Compiler._patch(value) for key, value in part.items()}
        return part

    # -- productions --------------------------------------------------------

    def _compile_production(self, production: Production) -> None:
        if not production.alternatives:
            raise AnalysisError(f"production {production.name} has no alternatives")
        self._mark(self.rule_labels[production.name])
        guards = self._alternative_guards(production)
        count = len(production.alternatives)
        for index, alternative in enumerate(production.alternatives):
            next_label = _Label() if index < count - 1 else None
            fail_target: Any = next_label if next_label is not None else FAIL_IP
            if self.profiled:
                self._emit(OP_PROF_ALT, production.name, index)
                self._emit(OP_PCHOICE, fail_target, production.name, index)
                pushed = True
            else:
                pushed = next_label is not None
                if guards is not None and guards[index] is not None:
                    charset, message = guards[index]
                    if pushed:
                        # Fused guard + backtrack push: the guard's skip
                        # target and the choice's resume target coincide.
                        self._emit(OP_GCHOICE, charset, next_label, message)
                    else:
                        self._emit(OP_GUARD, charset, fail_target, message)
                elif pushed:
                    self._emit(OP_CHOICE, next_label)
            self._compile_alternative(production, alternative, index, pushed)
            if next_label is not None:
                self._mark(next_label)

    def _alternative_guards(self, production: Production):
        """Per-alternative ``(charset, message)`` guards, or None.

        Same policy as the code generator: only with the ``terminals``
        analysis available, only for productions with enough alternatives,
        and only where skipping is provably ``dispatch_safe``.
        """
        if self.first is None or len(production.alternatives) < GUARD_MIN_ALTERNATIVES:
            return None
        guards: list[tuple[frozenset[str], str] | None] = []
        useful = False
        for alternative in production.alternatives:
            fs = self.first.first(alternative.expr)
            if (
                fs.known
                and fs.chars
                and len(fs.chars) <= 64
                and self.first.dispatch_safe(alternative.expr)
            ):
                guards.append((fs.chars, _first_set_message(fs.chars)))
                useful = True
            else:
                guards.append(None)
        return guards if useful else None

    def _compile_alternative(
        self, production: Production, alternative, index: int, pushed: bool
    ) -> None:
        expr = alternative.expr
        items = expr.items if isinstance(expr, Sequence) else (expr,)
        names = tuple(binding_names(expr))
        if names:
            self._emit(OP_ENV_NEW, names)
        wants, reduce_ops = self._alternative_plan(production, alternative, items)
        if (
            not self.profiled
            and not reduce_ops
            and items
            and isinstance(items[-1], Action)
            and wants[-1]
        ):
            # The alternative's value IS its trailing action (OBJECT kind):
            # fuse evaluation with the return.  Popping the backtrack entry
            # first is safe — actions consume nothing and never fail.
            for item, want in zip(items[:-1], wants[:-1]):
                self._compile_expr(item, want)
            if pushed:
                self._emit(OP_POPE)
            self._emit(OP_ACTION_RET, compile(items[-1].code, "<action>", "eval"))
            return
        for item, want in zip(items, wants):
            self._compile_expr(item, want)
        if self.profiled:
            self._emit(OP_PROF_ALT_OK, production.name, index)
        if pushed:
            self._emit(OP_POPE)
        for op in reduce_ops:
            self._emit(*op)
        self._emit(OP_RET)

    def _alternative_plan(self, production: Production, alternative, items):
        """Per-item value-mode flags plus the alternative's reduce ops.

        Encodes the shared static value semantics: VOID/TEXT alternatives run
        all items void; GENERIC builds a GNode (pass-through for an unlabeled
        single contribution); OBJECT takes the last top-level action's value,
        falling back to the pass-through rule.
        """
        kind = production.kind
        contrib = [contributes(item, self.kind_of) for item in items]
        if kind is ValueKind.VOID:
            return [False] * len(items), [(OP_PUSH, None)]
        if kind is ValueKind.TEXT:
            return [False] * len(items), [(OP_RED_TEXT,)]
        if kind is ValueKind.GENERIC:
            count = sum(contrib)
            label = alternative.label
            with_loc = self.with_location or production.has("withLocation")
            if label is None and count == 1:
                return contrib, []
            gname = node_name(production.name, label)
            return contrib, [(OP_RED_NODE, gname, count, with_loc)]
        # OBJECT: an explicit action (the last top-level one) wins.
        action_indices = [i for i, item in enumerate(items) if isinstance(item, Action)]
        if action_indices:
            last = action_indices[-1]
            return [i == last for i in range(len(items))], []
        count = sum(contrib)
        if count == 0:
            return contrib, [(OP_PUSH, None)]
        if count == 1:
            return contrib, []
        return contrib, [(OP_SEQ_TUPLE, count)]

    # -- expressions --------------------------------------------------------

    def _compile_expr(self, expr: Expression, want: bool) -> None:
        """Emit code for ``expr``; leaves exactly one value iff ``want``."""
        if isinstance(expr, Literal):
            text = expr.text
            if expr.ignore_case:
                self._emit(OP_LIT_CI, text, text.lower(), len(text), repr(text), want)
            elif len(text) == 1:
                self._emit(OP_CHAR, text, repr(text), want)
            else:
                self._emit(OP_LIT, text, len(text), repr(text), want)
            return
        if isinstance(expr, CharClass):
            chars = expr.first_chars()
            if chars is not None:
                self._emit(OP_SET, chars, want)
            else:
                self._emit(OP_CLASS, expr.matches, want)
            return
        if isinstance(expr, AnyChar):
            self._emit(OP_ANY, want)
            return
        if isinstance(expr, Nonterminal):
            self._emit(
                OP_CALL,
                self.rule_labels[expr.name],
                self.memo_index.get(expr.name, -1),
                expr.name,
            )
            if not want:
                self._emit(OP_POP)
            return
        if isinstance(expr, Sequence):
            self._compile_sequence(expr, want)
            return
        if isinstance(expr, Choice):
            self._compile_choice(expr, want)
            return
        if isinstance(expr, Repetition):
            self._compile_repetition(expr, want)
            return
        if isinstance(expr, Option):
            self._compile_option(expr, want)
            return
        if isinstance(expr, And):
            self._emit(OP_AND_BEGIN)
            self._compile_expr(expr.expr, False)
            self._emit(OP_AND_END)
            if want:
                self._emit(OP_PUSH, None)
            return
        if isinstance(expr, Not):
            cont = _Label()
            self._emit(OP_NOT_BEGIN, cont)
            self._compile_expr(expr.expr, False)
            self._emit(OP_NOT_FAIL)
            self._mark(cont)
            if want:
                self._emit(OP_PUSH, None)
            return
        if isinstance(expr, Binding):
            if (
                not want
                and not self.profiled
                and not self.incremental
                and isinstance(expr.expr, Regex)
            ):
                self._compile_regex(expr.expr, True, bind=expr.name)
                return
            if not want and not self.profiled and isinstance(expr.expr, Nonterminal):
                # The hottest binding shape (``x:Rule`` in an action
                # alternative) as one instruction: the return value goes
                # straight into the env, never through the value stack.
                target = expr.expr.name
                self._emit(
                    OP_CALL_BIND,
                    self.rule_labels[target],
                    self.memo_index.get(target, -1),
                    target,
                    expr.name,
                )
                return
            self._compile_expr(expr.expr, True)
            self._emit(OP_BIND if want else OP_BIND_POP, expr.name)
            return
        if isinstance(expr, Voided):
            self._compile_expr(expr.expr, False)
            if want:
                self._emit(OP_PUSH, None)
            return
        if isinstance(expr, Text):
            if want:
                self._emit(OP_PUSH_POS)
                self._compile_expr(expr.expr, False)
                self._emit(OP_TEXT_END)
            else:
                self._compile_expr(expr.expr, False)
            return
        if isinstance(expr, Action):
            self._emit(OP_ACTION, compile(expr.code, "<action>", "eval"), want)
            return
        if isinstance(expr, Epsilon):
            if want:
                self._emit(OP_PUSH, None)
            return
        if isinstance(expr, Fail):
            self._emit(OP_EXPECT_FAIL, expr.message or "nothing")
            return
        if isinstance(expr, Regex):
            if self.incremental:
                # Incremental programs must not execute single-scan fused
                # regions: a possessive C scan examines unboundedly far past
                # its match end, which the watermark cannot bound.  Lower the
                # region's *original* (nonterminal-free) expression instead;
                # PR 5 guarantees identical outcomes and error reporting.
                inner = expr.original
                if expr.capture:
                    self._compile_expr(
                        inner if isinstance(inner, Text) else Text(inner), want
                    )
                else:
                    self._compile_expr(Voided(inner) if want else inner, want)
                return
            self._compile_regex(expr, want)
            return
        if isinstance(expr, CharSwitch):
            self._compile_switch(expr, want)
            return
        raise AnalysisError(f"vm compiler: cannot compile {type(expr).__name__}")

    def _compile_sequence(self, expr: Sequence, want: bool) -> None:
        if not want:
            for item in expr.items:
                self._compile_expr(item, False)
            return
        contrib = [contributes(item, self.kind_of) for item in expr.items]
        for item, c in zip(expr.items, contrib):
            self._compile_expr(item, c)
        count = sum(contrib)
        if count == 0:
            self._emit(OP_PUSH, None)
        elif count >= 2:
            self._emit(OP_SEQ_TUPLE, count)

    def _compile_choice(self, expr: Choice, want: bool) -> None:
        end = _Label()
        last = len(expr.alternatives) - 1
        for index, branch in enumerate(expr.alternatives):
            if index < last:
                next_label = _Label()
                self._emit(OP_CHOICE, next_label)
                self._compile_expr(branch, want)
                self._emit(OP_COMMIT, end)
                self._mark(next_label)
            else:
                self._compile_expr(branch, want)
        self._mark(end)

    def _compile_repetition(self, expr: Repetition, want: bool) -> None:
        item = expr.expr
        collect = contributes(item, self.kind_of)
        # Value modes mirror the closure backend: a contributing item in a
        # value context collects a list (mode 2); a non-contributing
        # repetition still has the dynamic value None (mode 1); void mode
        # builds nothing (mode 0).
        mode = 2 if (want and collect) else (1 if want else 0)
        if mode == 0 and isinstance(item, CharClass):
            chars = item.first_chars()
            if chars is not None:
                # Single-op scan loop; the machine records the stopping
                # failure ("character class" at the stop position) exactly
                # as the per-iteration encoding would.
                if expr.min == 1:
                    self._emit(OP_SET, chars, False)
                self._emit(OP_SPAN, chars)
                return
        end = _Label()
        body = _Label()
        self._emit(OP_REP_BEGIN, end, expr.min, mode)
        self._mark(body)
        self._compile_expr(item, mode == 2)
        self._emit(OP_REP_NEXT, body)
        self._mark(end)

    def _compile_option(self, expr: Option, want: bool) -> None:
        keep = contributes(expr.expr, self.kind_of)
        if want and keep:
            none_label = _Label()
            after = _Label()
            self._emit(OP_CHOICE, none_label)
            self._compile_expr(expr.expr, True)
            self._emit(OP_COMMIT, after)
            self._mark(none_label)
            self._emit(OP_PUSH, None)
            self._mark(after)
            return
        none_label = _Label()
        self._emit(OP_CHOICE, none_label)
        self._compile_expr(expr.expr, False)
        self._emit(OP_POPE)
        self._mark(none_label)
        if want:
            self._emit(OP_PUSH, None)

    def _compile_regex(self, expr: Regex, want: bool, bind: str | None = None) -> None:
        from repro.analysis.fusable import compiled_pattern

        scan = compiled_pattern(expr.pattern).match
        if bind is not None:
            # Fused Binding(Regex): the matched span (or None for a
            # non-capturing region) goes straight into the env.
            push_mode = 3 if expr.capture else 4
            self._emit(
                OP_REGEX, scan, push_mode, expr.silent, expr, expr.label or "<fused>", bind
            )
            return
        if want:
            push_mode = 1 if expr.capture else 2
        else:
            push_mode = 0
        self._emit(OP_REGEX, scan, push_mode, expr.silent, expr, expr.label or "<fused>")

    def _compile_switch(self, expr: CharSwitch, want: bool) -> None:
        end = _Label()
        default_label = _Label()
        table: dict[str, _Label] = {}
        branch_labels: list[_Label] = []
        for chars, _branch in expr.cases:
            branch_label = _Label()
            branch_labels.append(branch_label)
            for ch in chars:
                # First case containing the character wins, like the
                # closure/interpreter dispatch loop.
                table.setdefault(ch, branch_label)
        self._emit(OP_SWITCH, table, default_label)
        for branch_label, (_chars, branch) in zip(branch_labels, expr.cases):
            self._mark(branch_label)
            self._compile_expr(branch, want)
            self._emit(OP_COMMIT, end)
        self._mark(default_label)
        self._compile_expr(expr.default, want)
        self._mark(end)
