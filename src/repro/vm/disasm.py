"""Human-readable listings of compiled :class:`~repro.vm.compiler.VMProgram`\\ s.

:func:`disassemble` renders the flat instruction array grouped by the
production each region was lowered from (``repro-stats --disasm`` prints
this); :func:`summarize` gives the opcode histogram and per-production
instruction counts used by docs and smoke checks.
"""

from __future__ import annotations

from collections import Counter

from repro.vm.compiler import (
    OP_ACTION,
    OP_CALL,
    OP_CALL_BIND,
    OP_CHAR,
    OP_CLASS,
    OP_GCHOICE,
    OP_GUARD,
    OP_LIT,
    OP_LIT_CI,
    OP_NAMES,
    OP_REGEX,
    OP_RED_NODE,
    OP_REP_BEGIN,
    OP_SET,
    OP_SPAN,
    OP_SWITCH,
    VMProgram,
)

_MAX_CHARSET = 12


def _charset(chars) -> str:
    shown = "".join(sorted(chars))
    if len(shown) > _MAX_CHARSET:
        shown = shown[:_MAX_CHARSET] + "…"
    return f"[{shown!r} #{len(chars)}]"


def _operands(inst: tuple) -> str:
    op = inst[0]
    if op == OP_CHAR:
        return f"{inst[1]!r} push={int(bool(inst[3]))}"
    if op == OP_SET:
        return f"{_charset(inst[1])} push={int(bool(inst[2]))}"
    if op == OP_CALL:
        return f"{inst[3]} @{inst[1]} memo={inst[2]}"
    if op == OP_CALL_BIND:
        return f"{inst[3]} @{inst[1]} memo={inst[2]} bind={inst[4]!r}"
    if op == OP_GCHOICE:
        return f"{_charset(inst[1])} else @{inst[2]}"
    if op == OP_RED_NODE:
        return f"{inst[1]!r} n={inst[2]} loc={int(bool(inst[3]))}"
    if op == OP_REP_BEGIN:
        return f"end @{inst[1]} min={inst[2]} mode={inst[3]}"
    if op == OP_LIT:
        return f"{inst[1]!r} push={int(bool(inst[4]))}"
    if op == OP_LIT_CI:
        return f"{inst[1]!r} ci push={int(bool(inst[5]))}"
    if op == OP_GUARD:
        return f"{_charset(inst[1])} else @{inst[2]}"
    if op == OP_SWITCH:
        cases = " ".join(f"{ch!r}->@{ip}" for ch, ip in sorted(inst[1].items()))
        return f"{{{cases}}} default @{inst[2]}"
    if op == OP_REGEX:
        return f"{inst[5]} push_mode={inst[2]} silent={int(bool(inst[3]))}"
    if op == OP_SPAN:
        return _charset(inst[1])
    if op == OP_CLASS:
        return f"<predicate> push={int(bool(inst[2]))}"
    if op == OP_ACTION:
        return f"<code> push={int(bool(inst[2]))}"
    # Generic rendering: ints are instruction targets or counts, everything
    # else reprs compactly.
    parts = []
    for arg in inst[1:]:
        if isinstance(arg, bool):
            parts.append(str(int(arg)))
        elif isinstance(arg, int):
            parts.append(f"@{arg}" if arg > 1 else str(arg))
        elif isinstance(arg, str):
            parts.append(repr(arg) if len(arg) <= 24 else repr(arg[:24] + "…"))
        elif isinstance(arg, (tuple, frozenset)):
            parts.append(f"#{len(arg)}")
        else:
            parts.append(f"<{type(arg).__name__}>")
    return " ".join(parts)


def disassemble(program: VMProgram, production: str | None = None) -> str:
    """Render the program (or one production of it) as an assembly listing."""
    spans = program.rule_spans
    if production is not None:
        spans = tuple(span for span in spans if span[0] == production)
        if not spans:
            raise KeyError(f"no production {production!r} in program")
    lines = [
        f"; program {program.grammar_name}: {len(program.code)} instructions, "
        f"{len(program.rule_spans)} productions, start={program.start}"
        f"{', profiled' if program.profiled else ''}"
    ]
    if production is None:
        lines.append("     0  FAIL                ; shared failure target")
        lines.append("     1  HALT                ; shared return target")
    for name, start_ip, end_ip in spans:
        memo = program.memo_index.get(name, -1)
        tag = f" memo={memo}" if memo >= 0 else " transient"
        lines.append(f"\n{name}:{tag}")
        for ip in range(start_ip, end_ip):
            inst = program.code[ip]
            mnemonic = OP_NAMES.get(inst[0], f"OP{inst[0]}")
            operands = _operands(inst)
            lines.append(f"{ip:6d}  {mnemonic:<10s} {operands}".rstrip())
    return "\n".join(lines)


def summarize(program: VMProgram) -> dict:
    """Opcode histogram plus per-production instruction counts."""
    histogram = Counter(OP_NAMES.get(inst[0], f"OP{inst[0]}") for inst in program.code)
    per_rule = {name: end - start for name, start, end in program.rule_spans}
    return {
        "grammar": program.grammar_name,
        "start": program.start,
        "instructions": len(program.code),
        "productions": len(program.rule_spans),
        "memo_rules": len(program.memo_rules),
        "profiled": program.profiled,
        "opcodes": dict(histogram.most_common()),
        "per_production": per_rule,
    }
