"""Incremental reparsing: memo-table reuse across edits.

An :class:`IncrementalSession` (built by :meth:`repro.Language.incremental`)
keeps one parser, one memo table and one line index alive across a sequence
of text edits.  :meth:`~IncrementalSession.apply_edit` translates an edit —
*replace* ``removed`` characters at ``offset`` with an inserted string —
into memo-table surgery instead of a cold start:

- entries whose **examined span** overlaps the damaged range are dropped
  (:meth:`~repro.runtime.memo.IncrementalMemoTable.drop_range`);
- entries entirely right of the damage are shifted by the length delta
  (:meth:`~repro.runtime.memo.IncrementalMemoTable.shift_from`) — pure
  column motion, since entries store relative spans; attached source
  locations move with them;
- everything else — typically the vast majority — is *retained* and served
  as memo hits by the next :meth:`~IncrementalSession.parse`.

The soundness of retention rests on the **examined watermark**: the
incremental twins of the closures backend
(:class:`repro.interp.closures.ClosureParser` with ``incremental=True``)
and the parsing machine (:class:`repro.vm.VMParser` with
``incremental=True``) record, per memo entry, the exclusive end of the
input span its computation *read* — consumed characters, lookahead-probe
spans (``&``/``!``), single-character dispatch reads, and failed
expectations alike.  An entry is reusable after an edit exactly when that
span misses the damage; fused ``Regex`` regions, whose single C scan can
examine unboundedly far past its match end, are compiled back to their
original expressions in incremental programs so the watermark stays tight.
See ``docs/incremental.md`` for the algorithm and invariant.

Failure fidelity: memoized results do not replay the expected-set records
their original computation made, so when a *warm* reparse rejects, the
session clears the memo table and re-runs cold — the reported error is
always bit-identical to a from-scratch parse.  The cold re-run also acts as
a tripwire: if it *accepts* where the warm pass rejected, an invalidation
bug exists, and :attr:`~IncrementalSession.last_parse_recovered` flags it
(the differential edit oracle asserts it never fires).

:class:`StreamFeeder` is the streaming half: it frames a chunked character
stream into newline-delimited documents and (optionally) parses each one as
it completes, which is how ``repro-serve --streaming`` consumes NDJSON and
log streams chunk-by-chunk (:mod:`repro.serve.wire`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ParseError
from repro.locations import LineIndex, Location
from repro.runtime.node import GNode

#: Backends :meth:`repro.Language.incremental` accepts.
BACKENDS = ("vm", "closures")


@dataclass(frozen=True)
class EditStats:
    """What one :meth:`IncrementalSession.apply_edit` did to the memo table."""

    offset: int
    removed: int
    inserted: int
    #: Entries whose examined span overlapped the damage (invalidated).
    dropped: int
    #: Entries right of the damage, relocated by the length delta.
    shifted: int
    #: Entries surviving the edit (shifted ones included).
    retained: int


class IncrementalSession:
    """One text buffer, edited in place and reparsed with memo reuse.

    Build via :meth:`repro.Language.incremental`; see the module docstring
    for the reuse algorithm.  Not thread-safe — one session, one buffer,
    one caller.
    """

    def __init__(
        self,
        language,
        start: str | None = None,
        backend: str = "vm",
        profile: Any = None,
        depth_budget: int | None = None,
    ):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        self._language = language
        self._start = start or language.grammar.start
        self._backend_name = backend
        self._profile = profile
        self._depth_budget = depth_budget
        self._text = ""
        self._source = "<input>"
        self._index = LineIndex("")
        self._recovered = False
        grammar = language.prepared.grammar
        self._with_location = "withLocation" in grammar.options or any(
            production.has("withLocation") for production in grammar
        )
        if backend == "vm":
            from repro.vm import VMParser

            program = language.vm_program(incremental=True)
            self._parser = VMParser(
                program, "", self._source, depth_budget=depth_budget, incremental=True
            )
            self._memo = self._parser._memo
            self._run = self._run_vm
        else:
            from repro.interp.closures import ClosureParser

            self._closures = ClosureParser(
                grammar, chunked=language.prepared.chunked_memo, incremental=True
            )
            self._state = self._closures.incremental_state("", self._source)
            self._memo = self._state.memo
            self._run = self._run_closures

    # -- backend adapters -----------------------------------------------------

    def _run_vm(self) -> Any:
        return self._parser.parse(self._start)

    def _run_closures(self) -> Any:
        from repro.runtime.base import recursion_budget

        with recursion_budget(self._depth_budget):
            return self._closures.reparse(self._state, self._start)

    def _rebind(self) -> None:
        target = self._parser if self._backend_name == "vm" else self._state
        target.rebind(self._text, self._index, source=self._source)

    # -- the buffer -----------------------------------------------------------

    @property
    def text(self) -> str:
        """The session's current buffer contents."""
        return self._text

    @property
    def line_index(self) -> LineIndex:
        """The incrementally maintained line index over :attr:`text`."""
        return self._index

    @property
    def last_parse_recovered(self) -> bool:
        """Did the last :meth:`parse` succeed only after the cold-rerun
        fallback?  Always False in a correct build — a warm reject that a
        cold parse accepts means a memo entry survived an edit it depended
        on.  The differential edit oracle asserts this never fires."""
        return self._recovered

    def memo_entry_count(self) -> int:
        """Memo entries currently stored (retained + rebuilt)."""
        return self._memo.entry_count()

    def set_text(self, text: str, source: str = "<input>") -> "IncrementalSession":
        """Replace the whole buffer, discarding all memoized state."""
        self._text = text
        self._source = source
        self._index = LineIndex(text)
        self._memo.resize(len(text))
        self._rebind()
        return self

    def apply_edit(self, offset: int, removed: int, inserted: str) -> EditStats:
        """Replace ``removed`` characters at ``offset`` with ``inserted``.

        Updates the buffer, splices the line index, drops memo entries whose
        examined span overlaps the damaged range ``[offset, offset+removed)``,
        and shifts the survivors right of it by the length delta (relocating
        any source locations attached to their values).  The next
        :meth:`parse` serves everything retained as memo hits.
        """
        old = self._text
        if not 0 <= offset <= len(old):
            raise ValueError(f"edit offset {offset} outside text of length {len(old)}")
        if removed < 0 or offset + removed > len(old):
            raise ValueError(f"edit removes [{offset}, {offset + removed}) beyond the text")
        hi = offset + removed
        removed_text = old[offset:hi]
        new = old[:offset] + inserted + old[hi:]
        delta = len(inserted) - removed

        old_index = self._index.clone()
        self._index.splice(new, offset, removed, len(inserted))
        self._text = new

        relocate = None
        if self._with_location and not _preserves_locations(delta, removed_text, inserted):
            relocate = _location_relocator(old_index, self._index, hi, delta)

        memo = self._memo
        dropped = memo.drop_range(offset, hi)
        shifted = memo.shift_from(hi, delta, on_value=relocate)
        retained = memo.entry_count()
        self._rebind()
        if self._profile is not None:
            self._profile.record_edit(retained, dropped, shifted)
        return EditStats(
            offset=offset,
            removed=removed,
            inserted=len(inserted),
            dropped=dropped,
            shifted=shifted,
            retained=retained,
        )

    def feed(self, chunk: str) -> "IncrementalSession":
        """Append ``chunk`` to the buffer (a pure-insertion edit at the end).

        Appending damages nothing behind it: only entries that probed the
        old end of input are dropped, so growing a stream and reparsing
        costs work proportional to the new tail, not the buffer.
        """
        self.apply_edit(len(self._text), 0, chunk)
        return self

    # -- parsing --------------------------------------------------------------

    def parse(self) -> Any:
        """Parse the current buffer, serving surviving memo entries.

        Raises :class:`~repro.errors.ParseError` on failure with exactly the
        error a cold parse reports (warm failures re-run cold — see the
        module docstring).
        """
        self._recovered = False
        try:
            value = self._run()
        except ParseError:
            # A memo hit swallows the expected-set records its original
            # computation made, so a warm reject's diagnosis may be
            # incomplete.  Re-derive it cold; same verdict, exact error.
            self._memo.reset()
            self._rebind()
            try:
                value = self._run()
            except ParseError:
                self._count_parse(False)
                raise
            self._recovered = True
            self._count_parse(True)
            return value
        self._count_parse(True)
        return value

    def _count_parse(self, accepted: bool) -> None:
        if self._profile is not None:
            self._profile.count_parse(self._text, accepted=accepted)

    def close(self) -> None:
        """Release the memo table's entries (the session stays usable)."""
        self._memo.reset()
        self._rebind()

    def __enter__(self) -> "IncrementalSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _preserves_locations(delta: int, removed_text: str, inserted: str) -> bool:
    """Is the location mapping across this edit the identity?

    True when the edit neither changes the text length nor touches any line
    break: every retained location's (line, column) is then unchanged, and
    the relocation walk can be skipped entirely (the common case for
    editor-style replacements, e.g. renaming an identifier in place).
    ``\\r`` counts as a break character even mid-``\\r\\n``: removing or
    inserting either half re-tokenizes the terminator.
    """
    if delta != 0:
        return False
    for chunk in (removed_text, inserted):
        if "\n" in chunk or "\r" in chunk:
            return False
    return True


def _location_relocator(
    old_index: LineIndex, new_index: LineIndex, hi: int, delta: int
) -> Callable[[Any], None]:
    """A per-value walker that rewrites stale :class:`Location` objects.

    Called by ``shift_from`` on each relocated memo entry's value.  Every
    node inside such a value starts at an old offset >= ``hi`` (the damage
    end), so its new offset is exactly ``old + delta``; the walker maps the
    stale (line, column) back to the old offset via the pre-splice index
    snapshot and forward to the new pair via the post-splice index.  Both
    lookups are O(log lines) binary searches — no text rescan.

    Relocation mutates nodes in place (locations move, identity is shared
    with any previously returned tree — the tree-sitter tradeoff), and it
    is not idempotent, so one ``visited`` identity set per edit guards
    values that share memoized substructure.
    """
    visited: set[int] = set()

    def relocate(value: Any) -> None:
        stack = [value]
        while stack:
            node = stack.pop()
            if isinstance(node, GNode):
                if id(node) in visited:
                    continue
                visited.add(id(node))
                location = node.location
                if location is not None:
                    old_offset = old_index.offset_of(location.line, location.column)
                    if old_offset >= hi:
                        line, column = new_index.line_column(old_offset + delta)
                        node.location = Location(location.source, line, column)
                stack.extend(node.children)
            elif isinstance(node, (tuple, list)):
                if id(node) in visited:
                    continue
                visited.add(id(node))
                stack.extend(node)

    return relocate


# -- streaming ----------------------------------------------------------------


@dataclass(frozen=True)
class FeedRecord:
    """One newline-framed document completed by a :class:`StreamFeeder`.

    ``value``/``error`` are populated only when the feeder was built with a
    parse callable; framing-only feeders (``repro-serve`` submits documents
    to its own worker queue) leave both None.
    """

    index: int
    text: str
    value: Any = None
    error: ParseError | None = None


class StreamFeeder:
    """Frame a chunked character stream into newline-delimited documents.

    ``feed(chunk)`` buffers arbitrary chunk boundaries (a document may span
    many chunks; a chunk may complete many documents) and returns a
    :class:`FeedRecord` per *completed* document, in order; ``end()``
    flushes the unterminated tail.  Documents are 1-indexed per stream —
    ``repro-serve`` uses ``<stream>:<index>`` result ids.  Blank documents
    (empty lines) are skipped, matching the NDJSON wire's blank-line rule.
    A trailing ``\\r`` is stripped, so CRLF-framed streams work unchanged.
    """

    def __init__(self, parse: Callable[[str], Any] | None = None):
        self._parse = parse
        self._buffer = ""
        self._count = 0
        self._ended = False

    @property
    def pending(self) -> str:
        """The buffered, not-yet-terminated tail."""
        return self._buffer

    @property
    def count(self) -> int:
        """Documents completed so far."""
        return self._count

    def feed(self, chunk: str) -> list[FeedRecord]:
        """Buffer ``chunk``; return records for every document it completes."""
        if self._ended:
            raise ValueError("stream already ended")
        self._buffer += chunk
        records: list[FeedRecord] = []
        while True:
            cut = self._buffer.find("\n")
            if cut < 0:
                return records
            line = self._buffer[:cut]
            self._buffer = self._buffer[cut + 1:]
            self._emit(line, records)

    def end(self) -> list[FeedRecord]:
        """Flush the unterminated tail (if any) and seal the stream."""
        if self._ended:
            return []
        self._ended = True
        records: list[FeedRecord] = []
        tail, self._buffer = self._buffer, ""
        self._emit(tail, records)
        return records

    def _emit(self, line: str, records: list[FeedRecord]) -> None:
        if line.endswith("\r"):
            line = line[:-1]
        if not line.strip():
            return
        self._count += 1
        if self._parse is None:
            records.append(FeedRecord(index=self._count, text=line))
            return
        try:
            value = self._parse(line)
        except ParseError as error:
            records.append(FeedRecord(index=self._count, text=line, error=error))
        else:
            records.append(FeedRecord(index=self._count, text=line, value=value))

    def __repr__(self) -> str:
        state = "ended" if self._ended else f"{len(self._buffer)} buffered"
        return f"<StreamFeeder {self._count} documents, {state}>"
