"""Hand-written recursive-descent parser for JSON.

Produces exactly the trees of the ``json.Json`` grammar:
``(Object [members]|None)``, ``(Array [values]|None)``, ``(String 'raw')``,
``(Number 'text')``, ``(True)``, ``(False)``, ``(Null)``,
``(Member 'key' value)``.  String contents stay raw (escapes undecoded),
matching the grammar's text capture.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.locations import line_column
from repro.runtime.node import GNode

_SPACE = " \t\r\n"
_DIGITS = "0123456789"
_HEX = "0123456789abcdefABCDEF"


class JsonParser:
    def __init__(self, text: str, source: str = "<input>"):
        self._text = text
        self._length = len(text)
        self._pos = 0

    def parse(self) -> GNode:
        self._skip_space()
        value = self._value()
        if self._pos != self._length:
            self._error("trailing input")
        return value

    # -- helpers -----------------------------------------------------------------

    def _error(self, message: str) -> None:
        line, column = line_column(self._text, self._pos)
        raise ParseError(message, self._pos, line, column)

    def _skip_space(self) -> None:
        pos, text, n = self._pos, self._text, self._length
        while pos < n and text[pos] in _SPACE:
            pos += 1
        self._pos = pos

    def _eat(self, ch: str) -> bool:
        if self._pos < self._length and self._text[self._pos] == ch:
            self._pos += 1
            self._skip_space()
            return True
        return False

    def _eat_word(self, word: str) -> bool:
        if self._text.startswith(word, self._pos):
            self._pos += len(word)
            self._skip_space()
            return True
        return False

    # -- grammar -----------------------------------------------------------------

    def _value(self) -> GNode:
        ch = self._text[self._pos] if self._pos < self._length else ""
        if ch == "{":
            return self._object()
        if ch == "[":
            return self._array()
        if ch == '"':
            return GNode("String", (self._string(),))
        if ch in "-0123456789":
            return GNode("Number", (self._number(),))
        if self._eat_word("true"):
            return GNode("True")
        if self._eat_word("false"):
            return GNode("False")
        if self._eat_word("null"):
            return GNode("Null")
        self._error("expected JSON value")

    def _object(self) -> GNode:
        self._eat("{")
        if self._eat("}"):
            return GNode("Object", (None,))
        members = [self._member()]
        while self._eat(","):
            members.append(self._member())
        if not self._eat("}"):
            self._error("expected '}'")
        return GNode("Object", (members,))

    def _member(self) -> GNode:
        key = self._string()
        if not self._eat(":"):
            self._error("expected ':'")
        return GNode("Member", (key, self._value()))

    def _array(self) -> GNode:
        self._eat("[")
        if self._eat("]"):
            return GNode("Array", (None,))
        values = [self._value()]
        while self._eat(","):
            values.append(self._value())
        if not self._eat("]"):
            self._error("expected ']'")
        return GNode("Array", (values,))

    def _string(self) -> str:
        text, n = self._text, self._length
        if self._pos >= n or text[self._pos] != '"':
            self._error("expected string")
        pos = self._pos + 1
        start = pos
        while pos < n:
            ch = text[pos]
            if ch == '"':
                raw = text[start:pos]
                self._pos = pos + 1
                self._skip_space()
                return raw
            if ch == "\\":
                # RFC 8259 escapes only: \" \\ \/ \b \f \n \r \t \uXXXX.
                escape = text[pos + 1] if pos + 1 < n else ""
                if escape == "u":
                    digits = text[pos + 2 : pos + 6]
                    if len(digits) < 4 or any(d not in _HEX for d in digits):
                        self._pos = pos
                        self._error("invalid unicode escape")
                    pos += 6
                elif escape in '"\\/bfnrt':
                    pos += 2
                else:
                    self._pos = pos
                    self._error("invalid escape")
            else:
                pos += 1
        self._error("unterminated string")

    def _number(self) -> str:
        text, n = self._text, self._length
        start = pos = self._pos
        if pos < n and text[pos] == "-":
            pos += 1
        if pos < n and text[pos] == "0":
            pos += 1
        else:
            if pos >= n or text[pos] not in _DIGITS:
                self._error("expected digit")
            while pos < n and text[pos] in _DIGITS:
                pos += 1
        if pos + 1 < n and text[pos] == "." and text[pos + 1] in _DIGITS:
            pos += 1
            while pos < n and text[pos] in _DIGITS:
                pos += 1
        if pos < n and text[pos] in "eE":
            look = pos + 1
            if look < n and text[look] in "+-":
                look += 1
            if look < n and text[look] in _DIGITS:
                pos = look
                while pos < n and text[pos] in _DIGITS:
                    pos += 1
        value = text[start:pos]
        self._pos = pos
        self._skip_space()
        return value
