"""Hand-written recursive-descent baseline parsers.

These play the role of the conventional, deterministic parsers the paper
compares its generated packrat parsers against.  Each produces exactly the
same :class:`~repro.runtime.node.GNode` trees as the corresponding shipped
grammar (the test suite cross-checks them), so throughput comparisons are
apples to apples: same host language, same input, same output values.
"""

from repro.baselines.calc_rd import CalcParser
from repro.baselines.json_rd import JsonParser
from repro.baselines.jay_rd import JayParser
from repro.baselines.xc_rd import XcParser

#: Root grammar module -> hand-written parser class.  The differential
#: oracle (:mod:`repro.difftest`) uses this to attach the baseline backend
#: automatically when one exists for the grammar under test.
BASELINES: dict[str, type] = {
    "calc.Calculator": CalcParser,
    "json.Json": JsonParser,
    "jay.Jay": JayParser,
    "xc.XC": XcParser,
}

__all__ = ["CalcParser", "JsonParser", "JayParser", "XcParser", "BASELINES"]
