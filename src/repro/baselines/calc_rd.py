"""Hand-written recursive-descent parser for the calc.Calculator language.

Produces exactly the trees of the ``calc.Calculator`` grammar:
``(Add l r)``, ``(Sub l r)``, ``(Mul l r)``, ``(Div l r)``, ``(Neg x)``,
``(Int 'text')``, ``(Float 'text')``; parentheses pass through.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.locations import line_column
from repro.runtime.node import GNode

_SPACE = " \t\r\n"
_DIGITS = "0123456789"


class CalcParser:
    """One instance per input text, like generated parsers."""

    def __init__(self, text: str, source: str = "<input>"):
        self._text = text
        self._length = len(text)
        self._pos = 0

    # -- public ------------------------------------------------------------------

    def parse(self) -> GNode:
        self._skip_space()
        value = self._expression()
        if self._pos != self._length:
            self._error("trailing input")
        return value

    # -- helpers ------------------------------------------------------------------

    def _error(self, message: str) -> None:
        line, column = line_column(self._text, self._pos)
        raise ParseError(message, self._pos, line, column)

    def _skip_space(self) -> None:
        pos, text, n = self._pos, self._text, self._length
        while pos < n and text[pos] in _SPACE:
            pos += 1
        self._pos = pos

    def _eat(self, ch: str) -> bool:
        if self._pos < self._length and self._text[self._pos] == ch:
            self._pos += 1
            self._skip_space()
            return True
        return False

    def _peek(self) -> str:
        return self._text[self._pos] if self._pos < self._length else ""

    # -- grammar ------------------------------------------------------------------

    def _expression(self) -> GNode:
        value = self._term()
        while True:
            if self._eat("+"):
                value = GNode("Add", (value, self._term()))
            elif self._eat("-"):
                value = GNode("Sub", (value, self._term()))
            else:
                return value

    def _term(self) -> GNode:
        value = self._factor()
        while True:
            if self._eat("*"):
                value = GNode("Mul", (value, self._factor()))
            elif self._eat("/"):
                value = GNode("Div", (value, self._factor()))
            else:
                return value

    def _factor(self) -> GNode:
        if self._eat("-"):
            return GNode("Neg", (self._factor(),))
        return self._primary()

    def _primary(self) -> GNode:
        if self._eat("("):
            value = self._expression()
            if not self._eat(")"):
                self._error("expected ')'")
            return value
        return self._number()

    def _number(self) -> GNode:
        text, n = self._text, self._length
        start = self._pos
        pos = start
        while pos < n and text[pos] in _DIGITS:
            pos += 1
        if pos == start:
            self._error("expected number")
        kind = "Int"
        if pos + 1 < n and text[pos] == "." and text[pos + 1] in _DIGITS:
            kind = "Float"
            pos += 1
            while pos < n and text[pos] in _DIGITS:
                pos += 1
        value = text[start:pos]
        self._pos = pos
        self._skip_space()
        return GNode(kind, (value,))
