"""Hand-written recursive-descent parser for the Jay language.

This is the "conventional parser" baseline of the throughput experiment
(E5): a deterministic, non-memoizing recursive-descent parser of the kind a
compiler engineer writes by hand, producing exactly the same generic trees
as the ``jay.Jay`` grammar (cross-checked by the test suite — GNode
equality ignores source locations).

Structure mirrors the grammar module by module; each token helper consumes
trailing white space, as the grammar's token productions do.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.locations import line_column
from repro.runtime.node import GNode

KEYWORDS = frozenset(
    "protected continue boolean extends private package return public static "
    "import final break while class false null true void else char this new "
    "int for if do".split()
)

MODIFIERS = ("public", "private", "protected", "static", "final")
PRIMITIVES = ("boolean", "char", "int")

_SPACE = " \t\r\n"
_DIGITS = "0123456789"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch in "_$"


def _is_ident_part(ch: str) -> bool:
    return ch.isalnum() or ch in "_$"


class JayParser:
    """One instance per input text."""

    def __init__(self, text: str, source: str = "<input>"):
        self._text = text
        self._length = len(text)
        self._pos = 0
        self._source = source

    # -- public --------------------------------------------------------------------

    def parse(self) -> GNode:
        """Parse a compilation unit; returns the (Unit …) tree."""
        self._skip_space()
        package = self._package_decl()
        imports = []
        while True:
            imported = self._import_decl()
            if imported is None:
                break
            imports.append(imported)
        classes = [self._class_decl()]
        while self._pos < self._length:
            classes.append(self._class_decl())
        return GNode("Unit", (package, imports, classes))

    # -- scanning helpers --------------------------------------------------------------

    def _error(self, message: str) -> None:
        line, column = line_column(self._text, self._pos)
        raise ParseError(message, self._pos, line, column)

    def _skip_space(self) -> None:
        text, n = self._text, self._length
        pos = self._pos
        while pos < n:
            ch = text[pos]
            if ch in _SPACE:
                pos += 1
            elif text.startswith("//", pos):
                end = text.find("\n", pos)
                pos = n if end == -1 else end + 1
            elif text.startswith("/*", pos):
                end = text.find("*/", pos + 2)
                if end == -1:
                    self._pos = pos
                    self._error("unterminated comment")
                pos = end + 2
            else:
                break
        self._pos = pos

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < self._length else ""

    def _at_word(self, word: str) -> bool:
        if not self._text.startswith(word, self._pos):
            return False
        after = self._pos + len(word)
        return after >= self._length or not _is_ident_part(self._text[after])

    def _eat_word(self, word: str) -> bool:
        if self._at_word(word):
            self._pos += len(word)
            self._skip_space()
            return True
        return False

    def _expect_word(self, word: str) -> None:
        if not self._eat_word(word):
            self._error(f"expected {word!r}")

    def _eat(self, symbol: str, not_followed_by: str = "") -> bool:
        if not self._text.startswith(symbol, self._pos):
            return False
        after = self._pos + len(symbol)
        if not_followed_by and after < self._length and self._text[after] in not_followed_by:
            return False
        self._pos = after
        self._skip_space()
        return True

    def _expect(self, symbol: str) -> None:
        if not self._eat(symbol):
            self._error(f"expected {symbol!r}")

    def _identifier(self) -> str | None:
        text = self._text
        pos = self._pos
        if pos >= self._length or not _is_ident_start(text[pos]):
            return None
        end = pos + 1
        while end < self._length and _is_ident_part(text[end]):
            end += 1
        word = text[pos:end]
        if word in KEYWORDS:
            return None
        self._pos = end
        self._skip_space()
        return word

    def _expect_identifier(self) -> str:
        name = self._identifier()
        if name is None:
            self._error("expected identifier")
        return name

    def _qualified_name(self):
        first = self._expect_identifier()
        rest = []
        while self._peek() == ".":
            # The grammar allows spacing (including comments) between the
            # dot and the next identifier; backtrack if none follows.
            saved = self._pos
            self._pos += 1
            self._skip_space()
            name = self._identifier()
            if name is None:
                self._pos = saved
                break
            rest.append(name)
        if rest:
            return GNode("QName", (first, rest))
        return first

    # -- declarations -----------------------------------------------------------------

    def _package_decl(self):
        if not self._eat_word("package"):
            return None
        name = self._qualified_name()
        self._expect(";")
        return GNode("Package", (name,))

    def _import_decl(self):
        if not self._eat_word("import"):
            return None
        name = self._qualified_name()
        self._expect(";")
        return GNode("Import", (name,))

    def _modifiers(self) -> list[str]:
        found: list[str] = []
        while True:
            for word in MODIFIERS:
                if self._eat_word(word):
                    found.append(word)
                    break
            else:
                return found

    def _class_decl(self) -> GNode:
        modifiers = self._modifiers()
        self._expect_word("class")
        name = self._expect_identifier()
        parent = self._qualified_name() if self._eat_word("extends") else None
        self._expect("{")
        members = []
        while not self._eat("}"):
            members.append(self._member())
        return GNode("Class", (modifiers, name, parent, members))

    def _member(self) -> GNode:
        saved = self._pos
        modifiers = self._modifiers()
        # Try a method first (mirrors the grammar's alternative order).
        result = self._result_type()
        if result is not None:
            name = self._identifier()
            if name is not None and self._eat("("):
                parameters = None
                if not self._eat(")"):
                    parameters = [self._parameter()]
                    while self._eat(","):
                        parameters.append(self._parameter())
                    self._expect(")")
                body = self._method_body()
                return GNode("Method", (modifiers, result, name, parameters, body))
        # Backtrack and parse a field.
        self._pos = saved
        self._skip_space()
        modifiers = self._modifiers()
        ftype = self._type()
        if ftype is None:
            self._error("expected member declaration")
        declarators = self._declarators()
        self._expect(";")
        return GNode("Field", (modifiers, ftype, declarators))

    def _result_type(self):
        if self._eat_word("void"):
            return GNode("Void")
        return self._type()

    def _method_body(self):
        if self._eat(";"):
            return None
        return self._block()

    def _parameter(self) -> GNode:
        ptype = self._type()
        if ptype is None:
            self._error("expected parameter type")
        return GNode("Parameter", (ptype, self._expect_identifier()))

    # -- types ---------------------------------------------------------------------------

    def _type(self):
        base = None
        for primitive in PRIMITIVES:
            if self._eat_word(primitive):
                base = GNode("PrimitiveType", (primitive,))
                break
        if base is None:
            saved = self._pos
            name = self._identifier()
            if name is None:
                return None
            rest = []
            while self._peek() == ".":
                # As in _qualified_name: spacing may follow the dot, and a
                # dot with no identifier after it ends the name (the
                # grammar's QName alternative backtracks to the last part).
                dot = self._pos
                self._pos += 1
                self._skip_space()
                part = self._identifier()
                if part is None:
                    self._pos = dot
                    break
                rest.append(part)
            qname = GNode("QName", (name, rest)) if rest else name
            base = GNode("ClassType", (qname,))
        while self._peek() == "[":
            saved = self._pos
            self._pos += 1
            self._skip_space()
            if not self._eat("]"):
                self._pos = saved
                break
            base = GNode("ArrayType", (base,))
        return base

    # -- statements -------------------------------------------------------------------------

    def _block(self) -> GNode:
        self._expect("{")
        statements = []
        while not self._eat("}"):
            statements.append(self._statement())
        return GNode("Block", (statements,))

    def _statement(self) -> GNode:
        ch = self._peek()
        if ch == "{":
            return self._block()
        if self._eat_word("if"):
            self._expect("(")
            condition = self._expression()
            self._expect(")")
            then = self._statement()
            otherwise = self._statement() if self._eat_word("else") else None
            return GNode("If", (condition, then, otherwise))
        if self._eat_word("while"):
            self._expect("(")
            condition = self._expression()
            self._expect(")")
            return GNode("While", (condition, self._statement()))
        if self._eat_word("do"):
            body = self._statement()
            self._expect_word("while")
            self._expect("(")
            condition = self._expression()
            self._expect(")")
            self._expect(";")
            return GNode("DoWhile", (body, condition))
        if self._eat_word("for"):
            return self._for_statement()
        if self._eat_word("return"):
            value = None if self._peek() == ";" else self._expression()
            self._expect(";")
            return GNode("Return", (value,))
        if self._eat_word("break"):
            self._expect(";")
            return GNode("Break")
        if self._eat_word("continue"):
            self._expect(";")
            return GNode("Continue")
        if self._eat(";"):
            return GNode("Empty")
        saved = self._pos
        declared = self._try_local_declaration()
        if declared is not None:
            return declared
        self._pos = saved
        self._skip_space()
        expression = self._expression()
        self._expect(";")
        return GNode("ExprStmt", (expression,))

    def _for_statement(self) -> GNode:
        self._expect("(")
        init = None
        if self._peek() != ";":
            init = self._for_init()
        self._expect(";")
        condition = None if self._peek() == ";" else self._expression()
        self._expect(";")
        update = None
        if self._peek() != ")":
            update = GNode("ForUpdate", (self._expression_list(),))
        self._expect(")")
        return GNode("For", (init, condition, update, self._statement()))

    def _for_init(self) -> GNode:
        saved = self._pos
        try:
            dtype = self._type()
            if dtype is not None:
                declarators = self._declarators()
                if self._peek() == ";":
                    return GNode("ForDecl", (dtype, declarators))
        except ParseError:
            pass
        self._pos = saved
        self._skip_space()
        return GNode("ForExpr", (self._expression_list(),))

    def _expression_list(self) -> list[GNode]:
        expressions = [self._expression()]
        while self._eat(","):
            expressions.append(self._expression())
        return expressions

    def _try_local_declaration(self):
        """Attempt ``Type Declarators ;`` — mirroring the grammar, any
        failure inside backtracks to the expression-statement alternative."""
        saved = self._pos
        try:
            dtype = self._type()
            if dtype is None:
                return None
            declarators = self._declarators()
            if not self._eat(";"):
                self._pos = saved
                self._skip_space()
                return None
            return GNode("LocalDecl", (dtype, declarators))
        except ParseError:
            self._pos = saved
            self._skip_space()
            return None

    # -- expressions ----------------------------------------------------------------------

    def _expression(self) -> GNode:
        saved = self._pos
        target = self._postfix_expression_or_none()
        if target is not None:
            operator = self._assignment_operator()
            if operator is not None:
                return GNode("Assign", (target, operator, self._expression()))
        self._pos = saved
        self._skip_space()
        return self._conditional()

    def _assignment_operator(self):
        for op in ("+=", "-=", "*=", "/=", "%="):
            if self._eat(op):
                return op
        if self._eat("=", not_followed_by="="):
            return "="
        return None

    def _conditional(self) -> GNode:
        condition = self._logical_or()
        if self._eat("?"):
            then = self._expression()
            self._expect(":")
            return GNode("Conditional", (condition, then, self._conditional()))
        return condition

    def _logical_or(self) -> GNode:
        value = self._logical_and()
        while self._eat("||"):
            value = GNode("LogicalOr", (value, self._logical_and()))
        return value

    def _logical_and(self) -> GNode:
        value = self._equality()
        while self._eat("&&"):
            value = GNode("LogicalAnd", (value, self._equality()))
        return value

    def _equality(self) -> GNode:
        value = self._relational()
        while True:
            if self._eat("=="):
                value = GNode("Equal", (value, self._relational()))
            elif self._eat("!="):
                value = GNode("NotEqual", (value, self._relational()))
            else:
                return value

    def _relational(self) -> GNode:
        value = self._additive()
        while True:
            if self._eat("<="):
                value = GNode("LessEqual", (value, self._additive()))
            elif self._eat(">="):
                value = GNode("GreaterEqual", (value, self._additive()))
            elif self._eat("<"):
                value = GNode("Less", (value, self._additive()))
            elif self._eat(">"):
                value = GNode("Greater", (value, self._additive()))
            else:
                return value

    def _additive(self) -> GNode:
        value = self._multiplicative()
        while True:
            if self._eat("+", not_followed_by="+="):
                value = GNode("Add", (value, self._multiplicative()))
            elif self._eat("-", not_followed_by="-="):
                value = GNode("Sub", (value, self._multiplicative()))
            else:
                return value

    def _multiplicative(self) -> GNode:
        value = self._unary()
        while True:
            if self._eat("*", not_followed_by="="):
                value = GNode("Mul", (value, self._unary()))
            elif self._eat("/", not_followed_by="=/*"):
                value = GNode("Div", (value, self._unary()))
            elif self._eat("%", not_followed_by="="):
                value = GNode("Mod", (value, self._unary()))
            else:
                return value

    def _unary(self) -> GNode:
        if self._eat("-", not_followed_by="-="):
            return GNode("Neg", (self._unary(),))
        if self._eat("!", not_followed_by="="):
            return GNode("Not", (self._unary(),))
        return self._postfix()

    def _postfix_expression_or_none(self):
        try:
            return self._postfix()
        except ParseError:
            return None

    def _postfix(self) -> GNode:
        value = self._primary()
        while True:
            if self._eat("("):
                arguments = None
                if not self._eat(")"):
                    arguments = [self._expression()]
                    while self._eat(","):
                        arguments.append(self._expression())
                    self._expect(")")
                value = GNode("Call", (value, arguments))
            elif self._eat("["):
                index = self._expression()
                self._expect("]")
                value = GNode("Index", (value, index))
            elif self._peek() == ".":
                # Spacing (including comments) may separate the dot from
                # the field name; backtrack if no identifier follows.
                saved = self._pos
                self._pos += 1
                self._skip_space()
                name = self._identifier()
                if name is None:
                    self._pos = saved
                    return value
                value = GNode("Field", (value, name))
            else:
                return value

    def _primary(self) -> GNode:
        if self._eat_word("new"):
            ntype = self._type()
            if ntype is None:
                self._error("expected type after 'new'")
            if self._eat("["):
                size = self._expression()
                self._expect("]")
                return GNode("NewArray", (ntype, size))
            self._expect("(")
            arguments = None
            if not self._eat(")"):
                arguments = [self._expression()]
                while self._eat(","):
                    arguments.append(self._expression())
                self._expect(")")
            return GNode("New", (ntype, arguments))
        if self._eat_word("this"):
            return GNode("This")
        if self._eat("("):
            value = self._expression()
            self._expect(")")
            return value
        literal = self._literal()
        if literal is not None:
            return literal
        name = self._identifier()
        if name is not None:
            return GNode("Var", (name,))
        self._error("expected expression")

    def _literal(self):
        text, n = self._text, self._length
        pos = self._pos
        ch = text[pos] if pos < n else ""
        if ch in _DIGITS:
            end = pos
            while end < n and text[end] in _DIGITS:
                end += 1
            if end + 1 < n and text[end] == "." and text[end + 1] in _DIGITS:
                end += 1
                while end < n and text[end] in _DIGITS:
                    end += 1
                value = text[pos:end]
                self._pos = end
                self._skip_space()
                return GNode("FloatLit", (value,))
            value = text[pos:end]
            self._pos = end
            self._skip_space()
            return GNode("IntLit", (value,))
        if ch == '"':
            end = pos + 1
            while end < n and text[end] != '"':
                end += 2 if text[end] == "\\" else 1
            if end >= n:
                self._error("unterminated string")
            value = text[pos + 1 : end]
            self._pos = end + 1
            self._skip_space()
            return GNode("StringLit", (value,))
        if ch == "'":
            end = pos + 1
            if end < n and text[end] == "\\":
                end += 2
            else:
                end += 1
            if end >= n or text[end] != "'":
                self._error("bad character literal")
            value = text[pos + 1 : end]
            self._pos = end + 1
            self._skip_space()
            return GNode("CharLit", (value,))
        if self._eat_word("true"):
            return GNode("True")
        if self._eat_word("false"):
            return GNode("False")
        if self._eat_word("null"):
            return GNode("Null")
        return None

    # -- local declarations (needs two-token lookahead) -------------------------------------

    def _declarators(self) -> list[GNode]:
        declarators = [self._declarator()]
        while self._eat(","):
            declarators.append(self._declarator())
        return declarators

    def _declarator(self) -> GNode:
        name = self._expect_identifier()
        init = None
        if self._eat("=", not_followed_by="="):
            init = self._expression()
        return GNode("Declarator", (name, init))
