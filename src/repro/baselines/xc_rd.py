"""Hand-written recursive-descent parser for the xC language.

The C-family counterpart of :mod:`repro.baselines.jay_rd`: a conventional
deterministic parser producing exactly the same generic trees as the
``xc.XC`` grammar (cross-checked by the tests), used as the second
hand-written comparator in the throughput experiment.

The operator lookahead rules mirror the grammar's predicates one for one:
``|`` must not start ``||``/``|=``, ``<`` must not start ``<<``/``<=``,
``-`` must not start ``--``/``-=``/``->``, and so on.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.locations import line_column
from repro.runtime.node import GNode

KEYWORDS = frozenset(
    "continue unsigned default typedef double return signed sizeof struct "
    "switch break float short while case char else goto long void for int "
    "do if".split()
)

BASIC_TYPES = ("unsigned", "signed", "double", "float", "short", "char", "long", "void", "int")

_SPACE = " \t\r\n"
_DIGITS = "0123456789"
_HEX = "0123456789abcdefABCDEF"

#: Compound assignment operators, longest first.
ASSIGN_OPS = ("<<=", ">>=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=")


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_part(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


class XcParser:
    """One instance per input text."""

    def __init__(self, text: str, source: str = "<input>"):
        self._text = text
        self._length = len(text)
        self._pos = 0
        self._source = source

    # -- public --------------------------------------------------------------------

    def parse(self) -> GNode:
        self._skip_space()
        declarations = [self._external_declaration()]
        while self._pos < self._length:
            declarations.append(self._external_declaration())
        return GNode("Unit", (declarations,))

    # -- scanning ------------------------------------------------------------------

    def _error(self, message: str) -> None:
        line, column = line_column(self._text, self._pos)
        raise ParseError(message, self._pos, line, column)

    def _skip_space(self) -> None:
        text, n = self._text, self._length
        pos = self._pos
        while pos < n:
            ch = text[pos]
            if ch in _SPACE:
                pos += 1
            elif ch == "#" or text.startswith("//", pos):
                end = text.find("\n", pos)
                pos = n if end == -1 else end + 1
            elif text.startswith("/*", pos):
                end = text.find("*/", pos + 2)
                if end == -1:
                    self._pos = pos
                    self._error("unterminated comment")
                pos = end + 2
            else:
                break
        self._pos = pos

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < self._length else ""

    def _at_word(self, word: str) -> bool:
        if not self._text.startswith(word, self._pos):
            return False
        after = self._pos + len(word)
        return after >= self._length or not _is_ident_part(self._text[after])

    def _eat_word(self, word: str) -> bool:
        if self._at_word(word):
            self._pos += len(word)
            self._skip_space()
            return True
        return False

    def _expect_word(self, word: str) -> None:
        if not self._eat_word(word):
            self._error(f"expected {word!r}")

    def _eat(self, symbol: str, not_followed_by: str = "") -> bool:
        if not self._text.startswith(symbol, self._pos):
            return False
        after = self._pos + len(symbol)
        if not_followed_by and after < self._length and self._text[after] in not_followed_by:
            return False
        self._pos = after
        self._skip_space()
        return True

    def _expect(self, symbol: str) -> None:
        if not self._eat(symbol):
            self._error(f"expected {symbol!r}")

    def _identifier(self) -> str | None:
        text = self._text
        pos = self._pos
        if pos >= self._length or not _is_ident_start(text[pos]):
            return None
        end = pos + 1
        while end < self._length and _is_ident_part(text[end]):
            end += 1
        word = text[pos:end]
        if word in KEYWORDS:
            return None
        self._pos = end
        self._skip_space()
        return word

    def _expect_identifier(self) -> str:
        name = self._identifier()
        if name is None:
            self._error("expected identifier")
        return name

    # -- external declarations ---------------------------------------------------------

    def _external_declaration(self) -> GNode:
        saved = self._pos
        if self._eat_word("struct"):
            name = self._identifier()
            if name is not None and self._eat("{"):
                fields = [self._struct_field()]
                while not self._eat("}"):
                    fields.append(self._struct_field())
                self._expect(";")
                return GNode("StructDef", (name, fields))
            self._pos = saved
            self._skip_space()
        # Function: specs declarator '(' params? ')' block
        try:
            specs = self._declaration_specifiers()
            if specs is not None:
                declarator = self._declarator()
                if declarator is not None and self._eat("("):
                    parameters = None
                    if not self._eat(")"):
                        parameters = self._parameter_list()
                        self._expect(")")
                    if self._peek() == "{":
                        return GNode("Function", (specs, declarator, parameters, self._compound()))
        except ParseError:
            pass
        self._pos = saved
        self._skip_space()
        declaration = self._declaration()
        if declaration is None:
            self._error("expected external declaration")
        return GNode("Global", (declaration,))

    def _struct_field(self) -> GNode:
        specs = self._declaration_specifiers()
        if specs is None:
            self._error("expected struct field type")
        declarator = self._declarator()
        if declarator is None:
            self._error("expected struct field declarator")
        self._expect(";")
        return GNode("StructField", (specs, declarator))

    def _parameter_list(self):
        saved = self._pos
        if self._eat_word("void") and self._peek() == ")":
            return "void"
        self._pos = saved
        self._skip_space()
        parameters = [self._parameter()]
        while self._eat(","):
            parameters.append(self._parameter())
        return parameters

    def _parameter(self) -> GNode:
        specs = self._declaration_specifiers()
        if specs is None:
            self._error("expected parameter type")
        declarator = self._declarator()
        if declarator is None:
            self._error("expected parameter declarator")
        return GNode("Parameter", (specs, declarator))

    # -- declarations -----------------------------------------------------------------

    def _declaration_specifiers(self):
        specifiers = []
        while True:
            saved = self._pos
            if self._eat_word("struct"):
                name = self._identifier()
                if name is None:
                    self._pos = saved
                    self._skip_space()
                    break
                specifiers.append(GNode("StructType", (name,)))
                continue
            for basic in BASIC_TYPES:
                if self._eat_word(basic):
                    specifiers.append(GNode("BasicType", (basic,)))
                    break
            else:
                break
        return specifiers or None

    def _declarator(self):
        if self._eat("*"):
            inner = self._declarator()
            if inner is None:
                self._error("expected declarator after '*'")
            return GNode("Pointer", (inner,))
        return self._direct_declarator()

    def _direct_declarator(self):
        name = self._identifier()
        if name is None:
            return None
        node = GNode("NameDecl", (name,))
        while self._peek() == "[":
            saved = self._pos
            self._pos += 1
            self._skip_space()
            size = None
            start = self._pos
            while self._pos < self._length and self._text[self._pos] in _DIGITS:
                self._pos += 1
            if self._pos > start:
                size = self._text[start : self._pos]
                self._skip_space()
            if not self._eat("]"):
                self._pos = saved
                break
            node = GNode("ArrayDecl", (node, size))
        return node

    def _declaration(self):
        saved = self._pos
        specs = self._declaration_specifiers()
        if specs is None:
            return None
        try:
            declarators = [self._init_declarator()]
            while self._eat(","):
                declarators.append(self._init_declarator())
            if not self._eat(";"):
                self._pos = saved
                self._skip_space()
                return None
            return GNode("Declaration", (specs, declarators))
        except ParseError:
            self._pos = saved
            self._skip_space()
            return None

    def _init_declarator(self) -> GNode:
        declarator = self._declarator()
        if declarator is None:
            self._error("expected declarator")
        init = None
        if self._eat("=", not_followed_by="="):
            init = self._assignment()
        return GNode("InitDeclarator", (declarator, init))

    # -- statements --------------------------------------------------------------------

    def _compound(self) -> GNode:
        self._expect("{")
        statements = []
        while not self._eat("}"):
            statements.append(self._statement())
        return GNode("Block", (statements,))

    def _statement(self) -> GNode:
        ch = self._peek()
        if ch == "{":
            return self._compound()
        if self._eat_word("if"):
            self._expect("(")
            condition = self._expression()
            self._expect(")")
            then = self._statement()
            otherwise = self._statement() if self._eat_word("else") else None
            return GNode("If", (condition, then, otherwise))
        if self._eat_word("switch"):
            self._expect("(")
            value = self._expression()
            self._expect(")")
            return GNode("Switch", (value, self._statement()))
        if self._eat_word("case"):
            value = self._conditional()
            self._expect(":")
            return GNode("Case", (value,))
        if self._eat_word("default"):
            self._expect(":")
            return GNode("Default")
        if self._eat_word("while"):
            self._expect("(")
            condition = self._expression()
            self._expect(")")
            return GNode("While", (condition, self._statement()))
        if self._eat_word("do"):
            body = self._statement()
            self._expect_word("while")
            self._expect("(")
            condition = self._expression()
            self._expect(")")
            self._expect(";")
            return GNode("DoWhile", (body, condition))
        if self._eat_word("for"):
            return self._for_statement()
        if self._eat_word("return"):
            value = None if self._peek() == ";" else self._expression()
            self._expect(";")
            return GNode("Return", (value,))
        if self._eat_word("break"):
            self._expect(";")
            return GNode("Break")
        if self._eat_word("continue"):
            self._expect(";")
            return GNode("Continue")
        if self._eat_word("goto"):
            name = self._expect_identifier()
            self._expect(";")
            return GNode("Goto", (name,))
        if self._eat(";"):
            return GNode("Empty")
        # Label: identifier ':'  (before declarations/expressions, as in
        # the grammar's alternative order)
        saved = self._pos
        name = self._identifier()
        if name is not None and self._eat(":"):
            return GNode("Label", (name,))
        self._pos = saved
        self._skip_space()
        declaration = self._declaration()
        if declaration is not None:
            return GNode("Decl", (declaration,))
        expression = self._expression()
        self._expect(";")
        return GNode("ExprStmt", (expression,))

    def _for_statement(self) -> GNode:
        self._expect("(")
        init = None
        if self._peek() != ";":
            init = self._for_init()
        self._expect(";")
        condition = None if self._peek() == ";" else self._expression()
        self._expect(";")
        update = None if self._peek() == ")" else self._expression()
        self._expect(")")
        return GNode("For", (init, condition, update, self._statement()))

    def _for_init(self) -> GNode:
        saved = self._pos
        specs = self._declaration_specifiers()
        if specs is not None:
            try:
                declarators = [self._init_declarator()]
                while self._eat(","):
                    declarators.append(self._init_declarator())
                return GNode("ForDecl", (specs, declarators))
            except ParseError:
                self._pos = saved
                self._skip_space()
        return GNode("ForExpr", (self._expression(),))

    # -- expressions --------------------------------------------------------------------

    def _expression(self) -> GNode:
        value = self._assignment()
        while self._eat(","):
            value = GNode("Comma", (value, self._assignment()))
        return value

    def _assignment(self) -> GNode:
        saved = self._pos
        target = self._unary_or_none()
        if target is not None:
            operator = self._assignment_operator()
            if operator is not None:
                return GNode("Assign", (target, operator, self._assignment()))
        self._pos = saved
        self._skip_space()
        return self._conditional()

    def _assignment_operator(self):
        for op in ASSIGN_OPS:
            if self._eat(op):
                return op
        if self._eat("=", not_followed_by="="):
            return "="
        return None

    def _conditional(self) -> GNode:
        condition = self._logical_or()
        if self._eat("?"):
            then = self._expression()
            self._expect(":")
            return GNode("Conditional", (condition, then, self._conditional()))
        return condition

    def _logical_or(self) -> GNode:
        value = self._logical_and()
        while self._eat("||"):
            value = GNode("LogicalOr", (value, self._logical_and()))
        return value

    def _logical_and(self) -> GNode:
        value = self._bit_or()
        while self._eat("&&"):
            value = GNode("LogicalAnd", (value, self._bit_or()))
        return value

    def _bit_or(self) -> GNode:
        value = self._bit_xor()
        while self._eat("|", not_followed_by="|="):
            value = GNode("BitOr", (value, self._bit_xor()))
        return value

    def _bit_xor(self) -> GNode:
        value = self._bit_and()
        while self._eat("^", not_followed_by="="):
            value = GNode("BitXor", (value, self._bit_and()))
        return value

    def _bit_and(self) -> GNode:
        value = self._equality()
        while self._eat("&", not_followed_by="&="):
            value = GNode("BitAnd", (value, self._equality()))
        return value

    def _equality(self) -> GNode:
        value = self._relational()
        while True:
            if self._eat("=="):
                value = GNode("Equal", (value, self._relational()))
            elif self._eat("!="):
                value = GNode("NotEqual", (value, self._relational()))
            else:
                return value

    def _relational(self) -> GNode:
        value = self._shift()
        while True:
            if self._eat("<="):
                value = GNode("LessEqual", (value, self._shift()))
            elif self._eat(">="):
                value = GNode("GreaterEqual", (value, self._shift()))
            elif self._eat("<", not_followed_by="<"):
                value = GNode("Less", (value, self._shift()))
            elif self._eat(">", not_followed_by=">"):
                value = GNode("Greater", (value, self._shift()))
            else:
                return value

    def _shift(self) -> GNode:
        value = self._additive()
        while True:
            if self._eat("<<", not_followed_by="="):
                value = GNode("ShiftLeft", (value, self._additive()))
            elif self._eat(">>", not_followed_by="="):
                value = GNode("ShiftRight", (value, self._additive()))
            else:
                return value

    def _additive(self) -> GNode:
        value = self._multiplicative()
        while True:
            if self._eat("+", not_followed_by="+="):
                value = GNode("Add", (value, self._multiplicative()))
            elif self._eat("-", not_followed_by="-=>"):
                value = GNode("Sub", (value, self._multiplicative()))
            else:
                return value

    def _multiplicative(self) -> GNode:
        value = self._unary()
        while True:
            if self._eat("*", not_followed_by="="):
                value = GNode("Mul", (value, self._unary()))
            elif self._eat("/", not_followed_by="=/*"):
                value = GNode("Div", (value, self._unary()))
            elif self._eat("%", not_followed_by="="):
                value = GNode("Mod", (value, self._unary()))
            else:
                return value

    def _unary_or_none(self):
        try:
            return self._unary()
        except ParseError:
            return None

    def _unary(self) -> GNode:
        if self._eat("++"):
            return GNode("PreIncrement", (self._unary(),))
        if self._eat("--"):
            return GNode("PreDecrement", (self._unary(),))
        if self._eat("-", not_followed_by="-="):
            return GNode("Neg", (self._unary(),))
        if self._eat("!", not_followed_by="="):
            return GNode("Not", (self._unary(),))
        if self._eat("~"):
            return GNode("BitNot", (self._unary(),))
        if self._eat("*", not_followed_by="="):
            return GNode("Deref", (self._unary(),))
        if self._eat("&", not_followed_by="&="):
            return GNode("AddrOf", (self._unary(),))
        return self._postfix()

    def _postfix(self) -> GNode:
        value = self._primary()
        while True:
            if self._eat("("):
                arguments = None
                if not self._eat(")"):
                    arguments = [self._assignment()]
                    while self._eat(","):
                        arguments.append(self._assignment())
                    self._expect(")")
                value = GNode("Call", (value, arguments))
            elif self._eat("["):
                index = self._expression()
                self._expect("]")
                value = GNode("Index", (value, index))
            elif self._eat("->"):
                value = GNode("Arrow", (value, self._expect_identifier()))
            elif self._peek() == ".":
                # Spacing (including comments) may separate the dot from
                # the member name; backtrack if no identifier follows.
                saved = self._pos
                self._pos += 1
                self._skip_space()
                name = self._identifier()
                if name is None:
                    self._pos = saved
                    return value
                value = GNode("Member", (value, name))
            elif self._eat("++"):
                value = GNode("PostIncrement", (value,))
            elif self._eat("--"):
                value = GNode("PostDecrement", (value,))
            else:
                return value

    def _primary(self) -> GNode:
        if self._eat("("):
            value = self._expression()
            self._expect(")")
            return value
        constant = self._constant()
        if constant is not None:
            return constant
        name = self._identifier()
        if name is not None:
            return GNode("Var", (name,))
        self._error("expected expression")

    # -- constants ----------------------------------------------------------------------

    def _constant(self):
        text, n = self._text, self._length
        pos = self._pos
        ch = text[pos] if pos < n else ""
        # ``ch`` must be non-empty: ``"" in _DIGITS`` is True (empty string
        # is a substring), which would send an at-EOF position into _number.
        if (ch and ch in _DIGITS) or (ch == "." and pos + 1 < n and text[pos + 1] in _DIGITS):
            return self._number()
        if ch == "'":
            end = pos + 1
            if end < n and text[end] == "\\":
                end += 2
            else:
                end += 1
            if end >= n or text[end] != "'":
                self._error("bad character constant")
            value = text[pos + 1 : end]
            self._pos = end + 1
            self._skip_space()
            return GNode("CharConst", (value,))
        if ch == '"':
            end = pos + 1
            while end < n and text[end] != '"':
                end += 2 if text[end] == "\\" else 1
            if end >= n:
                self._error("unterminated string")
            value = text[pos + 1 : end]
            self._pos = end + 1
            self._skip_space()
            return GNode("StringConst", (value,))
        return None

    def _number(self) -> GNode:
        text, n = self._text, self._length
        pos = self._pos
        # Float: digits '.' digits* suffix?   or   '.' digits suffix?
        if text[pos] == ".":
            end = pos + 1
            while end < n and text[end] in _DIGITS:
                end += 1
            if end < n and text[end] in "fFlL":
                end += 1
            value = text[pos:end]
            self._pos = end
            self._skip_space()
            return GNode("FloatConst", (value,))
        digits_end = pos
        while digits_end < n and text[digits_end] in _DIGITS:
            digits_end += 1
        if digits_end < n and text[digits_end] == ".":
            end = digits_end + 1
            while end < n and text[end] in _DIGITS:
                end += 1
            if end < n and text[end] in "fFlL":
                end += 1
            value = text[pos:end]
            self._pos = end
            self._skip_space()
            return GNode("FloatConst", (value,))
        # Hex: 0x… / 0X… (tried before plain int, as in the grammar)
        if text[pos] == "0" and pos + 1 < n and text[pos + 1] in "xX" and pos + 2 < n and text[pos + 2] in _HEX:
            end = pos + 2
            while end < n and text[end] in _HEX:
                end += 1
            value = text[pos:end]
            self._pos = end
            self._int_suffix()
            self._skip_space()
            return GNode("HexConst", (value,))
        value = text[pos:digits_end]
        self._pos = digits_end
        self._int_suffix()
        self._skip_space()
        return GNode("IntConst", (value,))

    def _int_suffix(self) -> None:
        text, n = self._text, self._length
        pos = self._pos
        if pos < n and text[pos] in "uU":
            pos += 1
            if pos < n and text[pos] in "lL":
                pos += 1
        elif pos < n and text[pos] in "lL":
            pos += 1
            if pos < n and text[pos] in "uU":
                pos += 1
        self._pos = pos
