#!/usr/bin/env python3
"""Quickstart: define a grammar, generate a packrat parser, parse, evaluate.

Shows the two front doors of the library:

1. composing the shipped ``.mg`` grammar modules (``calc.Calculator``), and
2. registering grammar modules from in-memory strings,

then walking the resulting generic AST to evaluate arithmetic.

Run:  python examples/quickstart.py
"""

import operator

import repro
from repro.runtime import GNode

# ---------------------------------------------------------------------------
# 1. Compile a shipped grammar.  compile_grammar composes the module graph,
#    runs the optimizer, generates Python parser source, and loads it.
# ---------------------------------------------------------------------------

calc = repro.compile_grammar("calc.Calculator")

TEXT = "2 + 3 * (10 - 4.5) / -2"
tree = calc.parse(TEXT)
print("input:  ", TEXT)
print("tree:   ", tree)

# ---------------------------------------------------------------------------
# 2. Evaluate the generic AST.  Node names come from the grammar's labeled
#    alternatives: (Add l r), (Sub l r), (Mul l r), (Div l r), (Neg x),
#    (Int 'text'), (Float 'text').
# ---------------------------------------------------------------------------

OPS = {"Add": operator.add, "Sub": operator.sub, "Mul": operator.mul, "Div": operator.truediv}


def evaluate(node):
    if node.name in OPS:
        return OPS[node.name](evaluate(node[0]), evaluate(node[1]))
    if node.name == "Neg":
        return -evaluate(node[0])
    if node.name == "Int":
        return int(node[0])
    if node.name == "Float":
        return float(node[0])
    raise ValueError(f"unknown node {node.name}")


print("value:  ", evaluate(tree))

# ---------------------------------------------------------------------------
# 3. Define a brand-new language from strings.  Modules registered on a
#    loader behave exactly like .mg files on disk.
# ---------------------------------------------------------------------------

loader = repro.ModuleLoader()
loader.register_source(
    "demo.Greeting",
    """
    module demo.Greeting;

    public generic Greeting =
        <Hello> void:"hello"i Space Name
      / <Bye>   void:"bye"i   Space Name
      ;

    Object Name = text:( [a-zA-Z]+ ) ;

    transient void Space = " "+ ;
    """,
)
greeting = repro.compile_grammar("demo.Greeting", loader=loader)
print("greeting:", greeting.parse("Hello world"))

# ---------------------------------------------------------------------------
# 4. Inspect the machinery: generated parser source and the optimized grammar.
# ---------------------------------------------------------------------------

print("\ngenerated parser is", len(calc.parser_source.splitlines()), "lines;")
print("optimizations enabled:", ", ".join(calc.options.enabled()))
print("productions after optimization:", ", ".join(calc.prepared.grammar.names()))

# Error reporting points at the farthest failure:
try:
    calc.parse("1 + * 2")
except repro.ParseError as error:
    print("\nerror example:", error)
