#!/usr/bin/env python3
"""The bootstrap: the grammar language, defined in the grammar language.

The ``.mg`` surface syntax is itself a modular PEG — the shipped
``meta.*`` modules.  This example compiles that grammar with the library's
own pipeline, parses a grammar file with it, rebuilds the module AST, and
closes the loop by parsing the meta grammar's own source with itself.

Run:  python examples/selfhosted_meta.py
"""

import importlib.resources

import repro
from repro.meta.parser import parse_module
from repro.meta.selfhost import meta_language, parse_module_selfhosted
from repro.runtime.visitor import dump_tree

SOURCE = """
module demo.Ini;

public Object File = Line* EndOfInput ;

generic Line =
    <Section> void:"[" Name void:"]" Eol
  / <Setting> Name void:"=" Value Eol
  / <Blank>   Eol
  ;

Object Name  = text:( [a-zA-Z0-9_.]+ ) ;
Object Value = text:( [^\\n]* ) ;

transient void Eol = "\\n" ;
transient void EndOfInput = !_ ;
"""

# 1. The meta language is an ordinary compiled Language.
meta = meta_language()
print("meta grammar:", len(meta.grammar), "productions from the meta.* modules")

# 2. Parse a grammar file *as data* and look at its tree.
tree = meta.parse(SOURCE)
print("\nfirst definition as a generic tree:")
definitions = tree.find_all("Production")
print(dump_tree(definitions[0], max_depth=4))

# 3. The bridge turns that tree into the same ModuleAst the hand-written
#    reader produces.
hand = parse_module(SOURCE)
self_hosted = parse_module_selfhosted(SOURCE)
print("\nhand-written reader == self-hosted reader:", hand == self_hosted)

# 4. And the composed module actually works as a language:
loader = repro.ModuleLoader()
loader.register_source("demo.Ini", SOURCE)
ini = repro.compile_grammar("demo.Ini", loader=loader)
print("\nparsed ini:", ini.parse("[core]\nuser=grimm\n\n[ui]\ncolor=auto\n"))

# 5. Close the loop: the meta grammar parses its own source.
meta_source = (importlib.resources.files("repro.grammars") / "meta/Module.mg").read_text()
self_description = parse_module_selfhosted(meta_source, "meta/Module.mg")
print(
    "\nbootstrap fixpoint: meta.Module parsed by itself ->",
    f"{len(self_description.productions)} productions,",
    f"same as hand-written: {self_description == parse_module(meta_source)}",
)
