#!/usr/bin/env python3
"""A realistic pipeline: generated JSON parser vs. the standard library.

Parses randomly generated JSON documents with the grammar-generated packrat
parser, decodes the generic AST into plain Python objects, and verifies the
result against ``json.loads`` — then reports relative throughput for the
generated parser, the grammar interpreter, and the hand-written baseline.

Run:  python examples/json_pipeline.py
"""

import json
import time

import repro
from repro.baselines import JsonParser
from repro.runtime import GNode
from repro.workloads import generate_json_document

# ---------------------------------------------------------------------------
# Decode (Object …) / (Array …) / (String 'raw') generic nodes into Python.
# ---------------------------------------------------------------------------

_ESCAPES = {'"': '"', "\\": "\\", "/": "/", "b": "\b", "f": "\f", "n": "\n", "r": "\r", "t": "\t"}


def decode_string(raw: str) -> str:
    out = []
    index = 0
    while index < len(raw):
        ch = raw[index]
        if ch != "\\":
            out.append(ch)
            index += 1
            continue
        escape = raw[index + 1]
        if escape == "u":
            out.append(chr(int(raw[index + 2 : index + 6], 16)))
            index += 6
        else:
            out.append(_ESCAPES[escape])
            index += 2
    return "".join(out)


def decode(node):
    if isinstance(node, GNode):
        if node.name == "Object":
            members = node[0] or []
            return {decode_string(m[0]): decode(m[1]) for m in members}
        if node.name == "Array":
            return [decode(v) for v in (node[0] or [])]
        if node.name == "String":
            return decode_string(node[0])
        if node.name == "Number":
            text = node[0]
            return int(text) if text.lstrip("-").isdigit() else float(text)
        if node.name == "True":
            return True
        if node.name == "False":
            return False
        if node.name == "Null":
            return None
    raise ValueError(f"unexpected node {node!r}")


# ---------------------------------------------------------------------------
# Verify against the standard library on a corpus of generated documents.
# ---------------------------------------------------------------------------

lang = repro.compile_grammar("json.Json")
documents = [generate_json_document(size=12, seed=seed) for seed in range(25)]

for document in documents:
    ours = decode(lang.parse(document))
    stdlib = json.loads(document)
    assert ours == stdlib, "decoded value differs from json.loads!"
print(f"{len(documents)} documents decode identically to json.loads")

# ---------------------------------------------------------------------------
# Throughput comparison (relative numbers are what matter).
# ---------------------------------------------------------------------------

big = generate_json_document(size=400, seed=7)
interp = lang.interpreter()


def timed(label, fn, repeat=3):
    best = min(_time_once(fn) for _ in range(repeat))
    kb_per_s = len(big) / 1024 / best
    print(f"{label:28s} {best * 1000:8.2f} ms   {kb_per_s:8.1f} KB/s")
    return best


def _time_once(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


print(f"\ninput: {len(big) / 1024:.1f} KB of JSON")
timed("generated packrat parser", lambda: lang.parse(big))
timed("grammar interpreter", lambda: interp.parse(big))
timed("hand-written baseline", lambda: JsonParser(big).parse())
timed("stdlib json.loads (C)", lambda: json.loads(big))
