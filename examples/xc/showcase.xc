#include <stdio.h>
// Line comment before the first declaration.
/* Block comment
   spanning lines. */

struct point {
    int x;
    int y;
    struct point *next;
    double weights[4];
    char tag[];
};

unsigned long counter = 0x1Fu;
signed short offset = 0X2aL;
float ratio = 1.5f;
double tail = .25;
double plain = 2.;
char letter = '\n';
char other = 'q';
char message[16] = "hi \"there\"\n";
int flags = 7ul, mask = 3lu, bits = 9l;

int classify(int score, unsigned limit) {
    int grade = score >= 90 ? 1 : score > 50 ? 2 : 3;
    if (score <= 0 || score != score) {
        grade = -1;
    } else if (score < 10 && limit == 0) {
        grade = grade % 4;
    }
    switch (grade) {
        case 1:
            break;
        case 2 + 1:
            grade = 0;
            break;
        default:
            ;
    }
    return grade;
}

void pump(void) {
    int total = 0, step = 1;
    for (int i = 0; i < 8; ++i) {
        total += i << 2;
        total -= step >> 1;
        total *= 2;
        total /= 3;
        total %= 100;
        total &= 0xFF;
        total |= 1;
        total ^= mask;
        total <<= 1;
        total >>= 2;
        if (total == 13) {
            continue;
        }
    }
    for (total = 1; total; total--) {
        break;
    }
    for ( ; ; ) {
        goto done;
    }
    while (total > 0) {
        total = total - 1;
    }
    do {
        ++total;
        --total;
        total++;
    } while (!(total & 1) && total | 2 ^ 3);
done:
    return;
}

struct point *walk(struct point *start, int hops) {
    struct point *cursor = start;
    int distance = (hops + 1) * ~0 - -1;
    while (cursor->next != 0) {
        cursor = cursor->next;
        cursor->x = cursor[0].y;
        distance = *start.next->weights[1] > 1.0 ? distance : hops;
        (&counter, classify(distance, 2u));
    }
    return cursor;
}

int ready() {
    pump();
    return flags / 2;
}

int naming(void) {
    int continued, unsignedly, defaulted, typedefs, doubled, returned;
    int signedness, sizeofs, structs, switches, breaker, floats, shorts;
    int whiled, cases, chars, elsewhere, gotos, longs, voids, fors, ints, dos, ifs;
    return ints;
}
