(* mini-ML showcase, with a (* nested comment *) inside it *)
let width = 42;;
let rec fact n = if n = 0 then 1 else n * fact (n - 1);;
let compose f g x = f (g x);;
let ignore _ = 0;;
let first (h :: _) = h;;
let pair = fun a b -> a :: b :: [];;
let classify xs =
  match xs with
  | [] -> 0
  | 0 :: _ -> 1
  | true :: (x :: rest) -> x
  | false :: _ -> 2
  | _ -> 3;;
let flags = true || false && maybe;;
let cmp a b = a <> b || a <= b || a >= b || a < b || a > b;;
let arith = 1 + 2 - 3 * 4 / 5 mod 6;;
let text = "hello \"world\"\n" ^ "tail";;
let unit_value = ();;
let items = [1; 2; fact 3];;
let shadowed = let inner = width in inner;;
classify (pair arith width)
