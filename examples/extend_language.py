#!/usr/bin/env python3
"""Extending a language without touching its grammar — the paper's pitch.

Three independent deltas over the shipped Jay (Java subset) grammar:

- ``jay.ForEach``     adds ``for (Type x : expr) stmt``
- ``jay.AssertStmt``  adds ``assert expr : expr ;`` *and* reserves the word
  ``assert`` by modifying the keyword list — two modifications from one
  module
- a new extension written right here, in memory: an ``unless`` statement

Each extension is a handful of lines; none of them copies or edits the base
grammar.  ``jay.Extended`` composes all shipped extensions at once.

Run:  python examples/extend_language.py
"""

import repro

BASE_PROGRAM = """
class Sample {
    int sum(int[] values) {
        int total = 0;
        for (int i = 0; i < 10; i = i + 1) { total = total + values[i]; }
        return total;
    }
}
"""

FOREACH_PROGRAM = """
class Sample {
    int sum(int[] values) {
        int total = 0;
        for (int v : values) { total = total + v; }
        return total;
    }
}
"""

UNLESS_PROGRAM = """
class Sample {
    void check(int n) {
        unless (n > 0) { this.fail("expected positive"); }
    }
}
"""

# 1. The base language: the enhanced for loop is a syntax error.
base = repro.compile_grammar("jay.Jay")
print("base parses plain Jay:     ", base.recognize(BASE_PROGRAM))
print("base rejects for-each:     ", not base.recognize(FOREACH_PROGRAM))

# 2. One shipped extension module later, it parses.  An aggregator module
#    names the composition: the base language plus the delta.
loader = repro.ModuleLoader()
loader.register_source(
    "demo.JayWithForEach",
    """
    module demo.JayWithForEach;
    import jay.Jay;
    import jay.ForEach;
    public Object ForEachProgram = CompilationUnit ;
    """,
)
foreach = repro.compile_grammar("demo.JayWithForEach", loader=loader)
print("jay.ForEach parses for-each:", foreach.recognize(FOREACH_PROGRAM))
tree = foreach.parse(FOREACH_PROGRAM)
print("new node:", tree.find_all("ForEach")[0].name, "statement found")

# 3. Write a new extension here, against the *installed* grammar library.
loader.register_source(
    "demo.Unless",
    """
    module demo.Unless;

    modify jay.Statements;
    modify jay.Keywords;

    import jay.Characters;
    import jay.Symbols;
    import jay.Expressions;
    import jay.Spacing;

    KeywordWord += "unless" / ... ;

    Statement +=
        <Unless> UNLESS LPAREN Expression RPAREN Statement
      / ...
      ;

    transient void UNLESS = "unless" !IdentifierPart Spacing ;
    """,
)
loader.register_source(
    "demo.JayWithUnless",
    """
    module demo.JayWithUnless;
    import jay.Jay;
    import demo.Unless;
    public Object UnlessProgram = CompilationUnit ;
    """,
)
unless = repro.compile_grammar("demo.JayWithUnless", loader=loader)
print("demo.Unless parses unless:  ", unless.recognize(UNLESS_PROGRAM))
print("unless tree:", unless.parse(UNLESS_PROGRAM).find_all("Unless")[0])

# 4. Removing syntax is a delta too: a Jay without do-while.
loader.register_source(
    "demo.NoDoWhile",
    """
    module demo.NoDoWhile;
    modify jay.Statements;
    Statement -= <DoWhile> ;
    """,
)
loader.register_source(
    "demo.StrictJay",
    """
    module demo.StrictJay;
    import jay.Jay;
    import demo.NoDoWhile;
    public Object StrictProgram = CompilationUnit ;
    """,
)
strict = repro.compile_grammar("demo.StrictJay", loader=loader)
DO_WHILE = "class A { void m() { do { this.x(); } while (true); } }"
print("strict Jay rejects do-while:", not strict.recognize(DO_WHILE))

# 5. Everything at once, as shipped.
extended = repro.compile_grammar("jay.Extended")
print(
    "jay.Extended =",
    f"{len(extended.grammar)} productions from",
    "17 modules (ForEach + Assert + SQL embedding)",
)
