#!/usr/bin/env python3
"""Downstream tooling on generic ASTs: a Jay unparser (AST → source).

Because generic productions give every language one uniform tree type,
tools like printers are ordinary Python over GNodes.  This example
implements a complete Jay pretty-printer with the Transformer-free,
name-dispatch style, and closes the loop:

    parse(source) == parse(unparse(parse(source)))

Run:  python examples/unparse_jay.py
"""

from __future__ import annotations

import repro
from repro.runtime.node import GNode
from repro.workloads import generate_jay_program

# Operator spellings for binary node names.
BINARY = {
    "LogicalOr": "||", "LogicalAnd": "&&",
    "Equal": "==", "NotEqual": "!=",
    "Less": "<", "Greater": ">", "LessEqual": "<=", "GreaterEqual": ">=",
    "Add": "+", "Sub": "-", "Mul": "*", "Div": "/", "Mod": "%",
}
UNARY = {"Neg": "-", "Not": "!"}


class JayUnparser:
    """Render a Jay compilation-unit tree back to compilable source."""

    def __init__(self) -> None:
        self._out: list[str] = []
        self._indent = 0

    # -- helpers -----------------------------------------------------------------

    def line(self, text: str) -> None:
        self._out.append("    " * self._indent + text)

    def render(self, unit: GNode) -> str:
        self._out = []
        self.unit(unit)
        return "\n".join(self._out) + "\n"

    # -- declarations ------------------------------------------------------------

    def unit(self, node: GNode) -> None:
        package, imports, classes = node.children
        if package is not None:
            self.line(f"package {self.name(package[0])};")
        for imported in imports:
            self.line(f"import {self.name(imported[0])};")
        for declaration in classes:
            self.line("")
            self.class_decl(declaration)

    def name(self, value) -> str:
        if isinstance(value, GNode) and value.name == "QName":
            return ".".join([value[0], *value[1]])
        return value

    def class_decl(self, node: GNode) -> None:
        modifiers, name, parent, members = node.children
        mods = "".join(f"{m} " for m in modifiers)
        extends = f" extends {self.name(parent)}" if parent is not None else ""
        self.line(f"{mods}class {name}{extends} {{")
        self._indent += 1
        for member in members:
            self.member(member)
        self._indent -= 1
        self.line("}")

    def member(self, node: GNode) -> None:
        if node.name == "Field":
            modifiers, ftype, declarators = node.children
            mods = "".join(f"{m} " for m in modifiers)
            decls = ", ".join(self.declarator(d) for d in declarators)
            self.line(f"{mods}{self.type(ftype)} {decls};")
            return
        modifiers, result, name, parameters, body = node.children
        mods = "".join(f"{m} " for m in modifiers)
        rtype = "void" if isinstance(result, GNode) and result.name == "Void" else self.type(result)
        params = ", ".join(
            f"{self.type(p[0])} {p[1]}" for p in (parameters or [])
        )
        if body is None:
            self.line(f"{mods}{rtype} {name}({params});")
        else:
            self.line(f"{mods}{rtype} {name}({params}) {{")
            self._indent += 1
            for statement in body[0]:
                self.statement(statement)
            self._indent -= 1
            self.line("}")

    def type(self, node: GNode) -> str:
        if node.name == "ArrayType":
            return f"{self.type(node[0])}[]"
        if node.name == "PrimitiveType":
            return node[0]
        return self.name(node[0])  # ClassType

    def declarator(self, node: GNode) -> str:
        name, init = node.children
        return name if init is None else f"{name} = {self.expr(init)}"

    # -- statements ---------------------------------------------------------------

    def statement(self, node: GNode) -> None:
        kind = node.name
        if kind == "Block":
            self.line("{")
            self._indent += 1
            for inner in node[0]:
                self.statement(inner)
            self._indent -= 1
            self.line("}")
        elif kind == "If":
            condition, then, otherwise = node.children
            self.line(f"if ({self.expr(condition)})")
            self.nested(then)
            if otherwise is not None:
                self.line("else")
                self.nested(otherwise)
        elif kind == "While":
            self.line(f"while ({self.expr(node[0])})")
            self.nested(node[1])
        elif kind == "DoWhile":
            self.line("do")
            self.nested(node[0])
            self.line(f"while ({self.expr(node[1])});")
        elif kind == "For":
            init, condition, update, body = node.children
            init_s = self.for_init(init)
            cond_s = self.expr(condition) if condition is not None else ""
            update_s = (
                ", ".join(self.expr(e) for e in update[0]) if update is not None else ""
            )
            self.line(f"for ({init_s}; {cond_s}; {update_s})")
            self.nested(body)
        elif kind == "Return":
            self.line("return;" if node[0] is None else f"return {self.expr(node[0])};")
        elif kind == "Break":
            self.line("break;")
        elif kind == "Continue":
            self.line("continue;")
        elif kind == "LocalDecl":
            decls = ", ".join(self.declarator(d) for d in node[1])
            self.line(f"{self.type(node[0])} {decls};")
        elif kind == "ExprStmt":
            self.line(f"{self.expr(node[0])};")
        elif kind == "Empty":
            self.line(";")
        else:
            raise ValueError(f"unknown statement {kind}")

    def nested(self, node: GNode) -> None:
        self._indent += 1
        self.statement(node)
        self._indent -= 1

    def for_init(self, node) -> str:
        if node is None:
            return ""
        if node.name == "ForDecl":
            decls = ", ".join(self.declarator(d) for d in node[1])
            return f"{self.type(node[0])} {decls}"
        return ", ".join(self.expr(e) for e in node[0])

    # -- expressions (fully parenthesized: simple and safe) -------------------------

    def expr(self, node) -> str:
        if not isinstance(node, GNode):
            return str(node)
        kind = node.name
        if kind in BINARY:
            return f"({self.expr(node[0])} {BINARY[kind]} {self.expr(node[1])})"
        if kind in UNARY:
            return f"({UNARY[kind]} {self.expr(node[0])})"
        if kind == "Assign":
            return f"{self.expr(node[0])} {node[1]} {self.expr(node[2])}"
        if kind == "Conditional":
            return f"({self.expr(node[0])} ? {self.expr(node[1])} : {self.expr(node[2])})"
        if kind == "Call":
            args = ", ".join(self.expr(a) for a in (node[1] or []))
            return f"{self.expr(node[0])}({args})"
        if kind == "Index":
            return f"{self.expr(node[0])}[{self.expr(node[1])}]"
        if kind == "Field":
            return f"{self.expr(node[0])}.{node[1]}"
        if kind == "New":
            args = ", ".join(self.expr(a) for a in (node[1] or []))
            return f"new {self.type(node[0])}({args})"
        if kind == "NewArray":
            return f"new {self.type(node[0])}[{self.expr(node[1])}]"
        if kind == "This":
            return "this"
        if kind == "Var":
            return node[0]
        if kind == "IntLit":
            return node[0]
        if kind == "FloatLit":
            return node[0]
        if kind == "StringLit":
            return f'"{node[0]}"'
        if kind == "CharLit":
            return f"'{node[0]}'"
        if kind == "True":
            return "true"
        if kind == "False":
            return "false"
        if kind == "Null":
            return "null"
        if kind == "QName":
            return self.name(node)
        raise ValueError(f"unknown expression {kind}")


def main() -> None:
    jay = repro.compile_grammar("jay.Jay")
    unparser = JayUnparser()

    source = generate_jay_program(size=4, seed=2026)
    tree = jay.parse(source)
    regenerated = unparser.render(tree)
    print(regenerated[:600], "…\n")

    # The round trip: unparse then reparse must give the same tree (the
    # unparser normalizes whitespace and parenthesization, so we compare
    # trees, not text).
    assert jay.parse(regenerated) == tree
    print("round trip OK: parse(unparse(parse(src))) == parse(src)")

    for seed in range(10):
        source = generate_jay_program(size=5, seed=seed)
        tree = jay.parse(source)
        assert jay.parse(unparser.render(tree)) == tree
    print("round trip holds on 10 generated programs")


if __name__ == "__main__":
    main()
