"""The parse service: many requests, one robust envelope.

Serves two grammars from a small worker pool and walks the outcome
taxonomy: ``ok`` (with the tree), ``parse_error`` (with offsets — an
answer, not an exception), ``rejected`` (oversized input, refused before
queueing), and ``timeout`` (a genuinely pathological parse, killed by the
watchdog, after which the recycled worker keeps serving).  Ends with the
service's own telemetry snapshot.

See docs/serving.md, and ``repro-serve`` for the same engine as a CLI.
"""

from repro.serve import GrammarSpec, ParseService, format_stats
from repro.workloads import slow_request_input

GRAMMARS = {
    "calc": "calc.Calculator",
    # A factory spec: the exponential-backtracking witness grammar with
    # memoization disabled — a real parse that cannot finish, which is how
    # the docs (and the test suite) simulate a hung request without sleeps.
    "slow": GrammarSpec(factory="repro.workloads.pathological:exponential_setup"),
}

with ParseService(
    GRAMMARS, workers=1, timeout=0.5, max_input_chars=10_000
) as service:
    # The happy path: ordered results, values attached.
    for result in service.map(["1+2*3", "(4-5)*6"]):
        print(f"{result.outcome:12} {result.value}")

    # A parse failure is a structured result, not an exception.
    failed = service.submit("1 + * 2", source="req.calc").result()
    error = failed.error
    print(f"{failed.outcome:12} {error.source}:{error.line}:{error.column}: "
          f"expected {', '.join(error.expected)}")

    # Oversized input never reaches the queue.
    oversized = service.submit("1+" * 10_000).result()
    print(f"{oversized.outcome:12} {oversized.detail}")

    # A pathological request blows its budget; the watchdog kills the hung
    # worker, the request resolves `timeout`, and the slot respawns...
    hung = service.submit(slow_request_input(), grammar="slow").result()
    print(f"{hung.outcome:12} {hung.detail}")

    # ...so the very next request is business as usual.
    after = service.submit("7*(8+9)").result()
    print(f"{after.outcome:12} {after.value}  (on the recycled worker)")

    stats = service.stats()

print()
print(format_stats(stats))
assert stats.recycles >= 1 and not stats.degraded
