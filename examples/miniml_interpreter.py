#!/usr/bin/env python3
"""A complete little language on top of the library: mini-ML.

The shipped ``ml.*`` grammar modules define an OCaml-flavored functional
language (let/let rec, first-class functions by juxtaposition, cons lists,
pattern matching).  This example is its *interpreter*: ~150 lines of plain
Python over the generic AST — closures, recursion, structural patterns.

Run:  python examples/miniml_interpreter.py
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import repro
from repro.runtime.node import GNode


# ---------------------------------------------------------------------------
# Runtime values
# ---------------------------------------------------------------------------

@dataclass
class Closure:
    params: list[GNode]  # patterns
    body: GNode
    env: dict[str, Any]
    name: str | None = None  # for let rec

    def __repr__(self) -> str:
        return f"<fun {self.name or ''}/{len(self.params)}>"


class MatchFailure(Exception):
    pass


UNIT = ()


# ---------------------------------------------------------------------------
# Pattern matching: returns new bindings or raises MatchFailure
# ---------------------------------------------------------------------------

def match(pattern: GNode, value: Any, bindings: dict[str, Any]) -> dict[str, Any]:
    kind = pattern.name
    if kind == "PWildcard":
        return bindings
    if kind == "PVar":
        bindings[pattern[0]] = value
        return bindings
    if kind == "PInt":
        if value == int(pattern[0]):
            return bindings
        raise MatchFailure
    if kind in ("PTrue", "PFalse"):
        if value is (kind == "PTrue"):
            return bindings
        raise MatchFailure
    if kind == "PNil":
        if value == []:
            return bindings
        raise MatchFailure
    if kind == "PCons":
        if isinstance(value, list) and value:
            match(pattern[0], value[0], bindings)
            return match(pattern[1], value[1:], bindings)
        raise MatchFailure
    raise ValueError(f"unknown pattern {kind}")


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------

BINOPS: dict[str, Callable[[Any, Any], Any]] = {
    "Add": lambda a, b: a + b,
    "Sub": lambda a, b: a - b,
    "Mul": lambda a, b: a * b,
    "Div": lambda a, b: a // b,
    "Mod": lambda a, b: a % b,
    "Concat": lambda a, b: a + b,
    "Equal": lambda a, b: a == b,
    "NotEqual": lambda a, b: a != b,
    "Less": lambda a, b: a < b,
    "Greater": lambda a, b: a > b,
    "LessEqual": lambda a, b: a <= b,
    "GreaterEqual": lambda a, b: a >= b,
}


def evaluate(node: GNode, env: dict[str, Any]) -> Any:
    kind = node.name
    if kind == "IntLit":
        return int(node[0])
    if kind == "StringLit":
        return node[0]
    if kind == "True":
        return True
    if kind == "False":
        return False
    if kind == "Unit":
        return UNIT
    if kind == "Var":
        try:
            return env[node[0]]
        except KeyError:
            raise NameError(f"unbound variable {node[0]!r}") from None
    if kind == "ListLit":
        return [evaluate(e, env) for e in (node[0] or [])]
    if kind == "Cons":
        return [evaluate(node[0], env), *evaluate(node[1], env)]
    if kind in BINOPS:
        return BINOPS[kind](evaluate(node[0], env), evaluate(node[1], env))
    if kind == "Or":
        return evaluate(node[0], env) or evaluate(node[1], env)
    if kind == "And":
        return evaluate(node[0], env) and evaluate(node[1], env)
    if kind == "If":
        branch = node[1] if evaluate(node[0], env) else node[2]
        return evaluate(branch, env)
    if kind == "Fun":
        return Closure(list(node[0]), node[1], env)
    if kind == "Let":
        rec, name, params, value_expr, body = node.children
        value = make_binding(rec, name, params, value_expr, env)
        inner = dict(env)
        inner[name] = value
        return evaluate(body, inner)
    if kind == "Apply":
        function = evaluate(node[0], env)
        argument = evaluate(node[1], env)
        return apply(function, argument)
    if kind == "Match":
        scrutinee = evaluate(node[0], env)
        for arm in node[1]:
            try:
                bindings = match(arm[0], scrutinee, dict(env))
            except MatchFailure:
                continue
            return evaluate(arm[1], bindings)
        raise MatchFailure(f"no pattern matched {scrutinee!r}")
    raise ValueError(f"unknown expression {kind}")


def make_binding(rec, name, params, value_expr, env):
    if params:
        closure = Closure(list(params), value_expr, env, name if rec else None)
        if rec:
            closure.env = env  # recursive lookup goes through its own name
        return closure
    return evaluate(value_expr, env)


def apply(function: Any, argument: Any) -> Any:
    if callable(function) and not isinstance(function, Closure):
        return function(argument)
    if not isinstance(function, Closure):
        raise TypeError(f"cannot apply non-function {function!r}")
    head, *rest = function.params
    bindings = dict(function.env)
    if function.name is not None:
        # let rec: the function sees itself under its own name.
        bindings[function.name] = function
    match(head, argument, bindings)
    if rest:
        # Partial application: the recursive self-reference is already in
        # `bindings`, so the partial closure must stay anonymous (a named
        # partial would shadow the full function on the next application).
        return Closure(rest, function.body, bindings, None)
    return evaluate(function.body, bindings)


def run(source: str) -> Any:
    """Parse and evaluate a mini-ML program; returns the result value."""
    program = LANG.parse(source)
    env: dict[str, Any] = dict(BUILTINS)
    for binding in program[0]:
        rec, name, params, value_expr = binding.children
        env[name] = make_binding(rec, name, params, value_expr, env)
    return evaluate(program[1], env)


LANG = repro.compile_grammar("ml.ML")
BUILTINS: dict[str, Any] = {
    "length": len,
    "string_of_int": str,
}


# ---------------------------------------------------------------------------
# Demo programs
# ---------------------------------------------------------------------------

QUICKSORT = """
let rec append xs ys =
  match xs with
  | [] -> ys
  | h :: t -> h :: append t ys ;;

let rec filter p xs =
  match xs with
  | [] -> []
  | h :: t -> if p h then h :: filter p t else filter p t ;;

let rec sort xs =
  match xs with
  | [] -> []
  | pivot :: rest ->
      append (sort (filter (fun x -> x < pivot) rest))
             (pivot :: sort (filter (fun x -> x >= pivot) rest)) ;;

sort [3; 1; 4; 1; 5; 9; 2; 6; 5; 3]
"""

CHURCH = """
let compose f g = fun x -> f (g x) ;;
let twice f = compose f f ;;
let add3 x = x + 3 ;;
twice (twice add3) 0
"""

FIB = """
let rec fib n = if n <= 1 then n else fib (n - 1) + fib (n - 2) ;;
let rec map f xs = match xs with | [] -> [] | h :: t -> f h :: map f t ;;
let rec range a b = if a >= b then [] else a :: range (a + 1) b ;;
map fib (range 0 15)
"""


def main() -> None:
    print("quicksort:", run(QUICKSORT))
    print("church:   ", run(CHURCH))
    print("fib map:  ", run(FIB))
    print("builtins: ", run('length [1; 2; 3] + length "abcd"'))
    print("strings:  ", run('let greet who = "hello, " ^ who ;; greet "world"'))


if __name__ == "__main__":
    main()
