"""Weak reference support for Python.

This module is an implementation of PEP 205:

https://peps.python.org/pep-0205/
"""

# Naming convention: Variables named "wr" are weak reference objects;
# they are called this instead of "ref" to avoid name collisions with
# the module-global ref() function imported from _weakref.

from _weakref import (
     getweakrefcount,
     getweakrefs,
     ref,
     proxy,
     CallableProxyType,
     ProxyType,
     ReferenceType,
     _remove_dead_weakref)

from _weakrefset import WeakSet, _IterationGuard

import _collections_abc  # Import after _weakref to avoid circular import.
import sys
import itertools

ProxyTypes = (ProxyType, CallableProxyType)

__all__ = ["ref", "proxy", "getweakrefcount", "getweakrefs",
           "WeakKeyDictionary", "ReferenceType", "ProxyType",
           "CallableProxyType", "ProxyTypes", "WeakValueDictionary",
           "WeakSet", "WeakMethod", "finalize"]


_collections_abc.MutableSet.register(WeakSet)

class WeakMethod(ref):
    """
    A custom `weakref.ref` subclass which simulates a weak reference to
    a bound method, working around the lifetime problem of bound methods.
    """

    __slots__ = "_func_ref", "_meth_type", "_alive", "__weakref__"

    def __new__(cls, meth, callback=None):
        try:
            obj = meth.__self__
            func = meth.__func__
        except AttributeError:
            raise TypeError("argument should be a bound method, not {}"
                            .format(type(meth))) from None
        def _cb(arg):
            # The self-weakref trick is needed to avoid creating a reference
            # cycle.
            self = self_wr()
            if self._alive:
                self._alive = False
                if callback is not None:
                    callback(self)
        self = ref.__new__(cls, obj, _cb)
        self._func_ref = ref(func, _cb)
        self._meth_type = type(meth)
        self._alive = True
        self_wr = ref(self)
        return self

    def __call__(self):
        obj = super().__call__()
        func = self._func_ref()
        if obj is None or func is None:
            return None
        return self._meth_type(func, obj)

    def __eq__(self, other):
        if isinstance(other, WeakMethod):
            if not self._alive or not other._alive:
                return self is other
            return ref.__eq__(self, other) and self._func_ref == other._func_ref
        return NotImplemented

    def __ne__(self, other):
        if isinstance(other, WeakMethod):
            if not self._alive or not other._alive:
                return self is not other
            return ref.__ne__(self, other) or self._func_ref != other._func_ref
        return NotImplemented

    __hash__ = ref.__hash__


class WeakValueDictionary(_collections_abc.MutableMapping):
    """Mapping class that references values weakly.

    Entries in the dictionary will be discarded when no strong
    reference to the value exists anymore
    """
    # We inherit the constructor without worrying about the input
    # dictionary; since it uses our .update() method, we get the right
    # checks (if the other dictionary is a WeakValueDictionary,
    # objects are unwrapped on the way out, and we always wrap on the
    # way in).

    def __init__(self, other=(), /, **kw):
        def remove(wr, selfref=ref(self), _atomic_removal=_remove_dead_weakref):
            self = selfref()
            if self is not None:
                if self._iterating:
                    self._pending_removals.append(wr.key)
                else:
                    # Atomic removal is necessary since this function
                    # can be called asynchronously by the GC
                    _atomic_removal(self.data, wr.key)
        self._remove = remove
        # A list of keys to be removed
        self._pending_removals = []
        self._iterating = set()
        self.data = {}
        self.update(other, **kw)

    def _commit_removals(self, _atomic_removal=_remove_dead_weakref):
        pop = self._pending_removals.pop
        d = self.data
        # We shouldn't encounter any KeyError, because this method should
        # always be called *before* mutating the dict.
        while True:
            try:
                key = pop()
            except IndexError:
                return
            _atomic_removal(d, key)

    def __getitem__(self, key):
        if self._pending_removals:
            self._commit_removals()
        o = self.data[key]()
        if o is None:
            raise KeyError(key)
        else:
            return o

    def __delitem__(self, key):
        if self._pending_removals:
            self._commit_removals()
        del self.data[key]

    def __len__(self):
        if self._pending_removals:
            self._commit_removals()
        return len(self.data)

    def __contains__(self, key):
        if self._pending_removals:
            self._commit_removals()
        try:
            o = self.data[key]()
        except KeyError:
            return False
        return o is not None

    def __repr__(self):
        return "<%s at %#x>" % (self.__class__.__name__, id(self))

    def __setitem__(self, key, value):
        if self._pending_removals:
            self._commit_removals()
        self.data[key] = KeyedRef(value, self._remove, key)

    def copy(self):
        if self._pending_removals:
            self._commit_removals()
        new = WeakValueDictionary()
        with _IterationGuard(self):
            for key, wr in self.data.items():
                o = wr()
                if o is not None:
                    new[key] = o
        return new

    __copy__ = copy

    def __deepcopy__(self, memo):
        from copy import deepcopy
        if self._pending_removals:
            self._commit_removals()
        new = self.__class__()
        with _IterationGuard(self):
            for key, wr in self.data.items():
                o = wr()
                if o is not None:
                    new[deepcopy(key, memo)] = o
        return new

    def get(self, key, default=None):
        if self._pending_removals:
            self._commit_removals()
        try:
            wr = self.data[key]
        except KeyError:
            return default
        else:
            o = wr()
            if o is None:
                # This should only happen
                return default
            else:
                return o

    def items(self):
        if self._pending_removals:
            self._commit_removals()
        with _IterationGuard(self):
            for k, wr in self.data.items():
                v = wr()
                if v is not None:
                    yield k, v

    def keys(self):
        if self._pending_removals:
            self._commit_removals()
        with _IterationGuard(self):
            for k, wr in self.data.items():
                if wr() is not None:
                    yield k

    __iter__ = keys

    def itervaluerefs(self):
        """Return an iterator that yields the weak references to the values.

        The references are not guaranteed to be 'live' at the time
        they are used, so the result of calling the references needs
        to be checked before being used.  This can be used to avoid
        creating references that will cause the garbage collector to
        keep the values around longer than needed.

        """
        if self._pending_removals:
            self._commit_removals()
        with _IterationGuard(self):
            yield from self.data.values()

    def values(self):
        if self._pending_removals:
            self._commit_removals()
        with _IterationGuard(self):
            for wr in self.data.values():
                obj = wr()
                if obj is not None:
                    yield obj

    def popitem(self):
        if self._pending_removals:
            self._commit_removals()
        while True:
            key, wr = self.data.popitem()
            o = wr()
            if o is not None:
                return key, o

    def pop(self, key, *args):
        if self._pending_removals:
            self._commit_removals()
        try:
            o = self.data.pop(key)()
        except KeyError:
            o = None
        if o is None:
            if args:
                return args[0]
            else:
                raise KeyError(key)
        else:
            return o

    def setdefault(self, key, default=None):
        try:
            o = self.data[key]()
        except KeyError:
            o = None
        if o is None:
            if self._pending_removals:
                self._commit_removals()
            self.data[key] = KeyedRef(default, self._remove, key)
            return default
        else:
            return o

    def update(self, other=None, /, **kwargs):
        if self._pending_removals:
            self._commit_removals()
        d = self.data
        if other is not None:
            if not hasattr(other, "items"):
                other = dict(other)
            for key, o in other.items():
                d[key] = KeyedRef(o, self._remove, key)
        for key, o in kwargs.items():
            d[key] = KeyedRef(o, self._remove, key)

    def valuerefs(self):
        """Return a list of weak references to the values.

        The references are not guaranteed to be 'live' at the time
        they are used, so the result of calling the references needs
        to be checked before being used.  This can be used to avoid
        creating references that will cause the garbage collector to
        keep the values around longer than needed.

        """
        if self._pending_removals:
            self._commit_removals()
        return list(self.data.values())

    def __ior__(self, other):
        self.update(other)
        return self

    def __or__(self, other):
        if isinstance(other, _collections_abc.Mapping):
            c = self.copy()
            c.update(other)
            return c
        return NotImplemented

    def __ror__(self, other):
        if isinstance(other, _collections_abc.Mapping):
            c = self.__class__()
            c.update(other)
            c.update(self)
            return c
        return NotImplemented


class KeyedRef(ref):
    """Specialized reference that includes a key corresponding to the value.

    This is used in the WeakValueDictionary to avoid having to create
    a function object for each key stored in the mapping.  A shared
    callback object can use the 'key' attribute of a KeyedRef instead
    of getting a reference to the key from an enclosing scope.

    """

    __slots__ = "key",

    def __new__(type, ob, callback, key):
        self = ref.__new__(type, ob, callback)
        self.key = key
        return self

    def __init__(self, ob, callback, key):
        super().__init__(ob, callback)


class WeakKeyDictionary(_collections_abc.MutableMapping):
    """ Mapping class that references keys weakly.

    Entries in the dictionary will be discarded when there is no
    longer a strong reference to the key. This can be used to
    associate additional data with an object owned by other parts of
    an application without adding attributes to those objects. This
    can be especially useful with objects that override attribute
    accesses.
    """

    def __init__(self, dict=None):
        self.data = {}
        def remove(k, selfref=ref(self)):
            self = selfref()
            if self is not None:
                if self._iterating:
                    self._pending_removals.append(k)
                else:
                    try:
                        del self.data[k]
                    except KeyError:
                        pass
        self._remove = remove
        # A list of dead weakrefs (keys to be removed)
        self._pending_removals = []
        self._iterating = set()
        self._dirty_len = False
        if dict is not None:
            self.update(dict)

    def _commit_removals(self):
        # NOTE: We don't need to call this method before mutating the dict,
        # because a dead weakref never compares equal to a live weakref,
        # even if they happened to refer to equal objects.
        # However, it means keys may already have been removed.
        pop = self._pending_removals.pop
        d = self.data
        while True:
            try:
                key = pop()
            except IndexError:
                return

            try:
                del d[key]
            except KeyError:
                pass

    def _scrub_removals(self):
        d = self.data
        self._pending_removals = [k for k in self._pending_removals if k in d]
        self._dirty_len = False

    def __delitem__(self, key):
        self._dirty_len = True
        del self.data[ref(key)]

    def __getitem__(self, key):
        return self.data[ref(key)]

    def __len__(self):
        if self._dirty_len and self._pending_removals:
            # self._pending_removals may still contain keys which were
            # explicitly removed, we have to scrub them (see issue #21173).
            self._scrub_removals()
        return len(self.data) - len(self._pending_removals)

    def __repr__(self):
        return "<%s at %#x>" % (self.__class__.__name__, id(self))

    def __setitem__(self, key, value):
        self.data[ref(key, self._remove)] = value

    def copy(self):
        new = WeakKeyDictionary()
        with _IterationGuard(self):
            for key, value in self.data.items():
                o = key()
                if o is not None:
                    new[o] = value
        return new

    __copy__ = copy

    def __deepcopy__(self, memo):
        from copy import deepcopy
        new = self.__class__()
        with _IterationGuard(self):
            for key, value in self.data.items():
                o = key()
                if o is not None:
                    new[o] = deepcopy(value, memo)
        return new

    def get(self, key, default=None):
        return self.data.get(ref(key),default)

    def __contains__(self, key):
        try:
            wr = ref(key)
        except TypeError:
            return False
        return wr in self.data

    def items(self):
        with _IterationGuard(self):
            for wr, value in self.data.items():
                key = wr()
                if key is not None:
                    yield key, value

    def keys(self):
        with _IterationGuard(self):
            for wr in self.data:
                obj = wr()
                if obj is not None:
                    yield obj

    __iter__ = keys

    def values(self):
        with _IterationGuard(self):
            for wr, value in self.data.items():
                if wr() is not None:
                    yield value

    def keyrefs(self):
        """Return a list of weak references to the keys.

        The references are not guaranteed to be 'live' at the time
        they are used, so the result of calling the references needs
        to be checked before being used.  This can be used to avoid
        creating references that will cause the garbage collector to
        keep the keys around longer than needed.

        """
        return list(self.data)

    def popitem(self):
        self._dirty_len = True
        while True:
            key, value = self.data.popitem()
            o = key()
            if o is not None:
                return o, value

    def pop(self, key, *args):
        self._dirty_len = True
        return self.data.pop(ref(key), *args)

    def setdefault(self, key, default=None):
        return self.data.setdefault(ref(key, self._remove),default)

    def update(self, dict=None, /, **kwargs):
        d = self.data
        if dict is not None:
            if not hasattr(dict, "items"):
                dict = type({})(dict)
            for key, value in dict.items():
                d[ref(key, self._remove)] = value
        if len(kwargs):
            self.update(kwargs)

    def __ior__(self, other):
        self.update(other)
        return self

    def __or__(self, other):
        if isinstance(other, _collections_abc.Mapping):
            c = self.copy()
            c.update(other)
            return c
        return NotImplemented

    def __ror__(self, other):
        if isinstance(other, _collections_abc.Mapping):
            c = self.__class__()
            c.update(other)
            c.update(self)
            return c
        return NotImplemented


class finalize:
    """Class for finalization of weakrefable objects

    finalize(obj, func, *args, **kwargs) returns a callable finalizer
    object which will be called when obj is garbage collected. The
    first time the finalizer is called it evaluates func(*arg, **kwargs)
    and returns the result. After this the finalizer is dead, and
    calling it just returns None.

    When the program exits any remaining finalizers for which the
    atexit attribute is true will be run in reverse order of creation.
    By default atexit is true.
    """

    # Finalizer objects don't have any state of their own.  They are
    # just used as keys to lookup _Info objects in the registry.  This
    # ensures that they cannot be part of a ref-cycle.

    __slots__ = ()
    _registry = {}
    _shutdown = False
    _index_iter = itertools.count()
    _dirty = False
    _registered_with_atexit = False

    class _Info:
        __slots__ = ("weakref", "func", "args", "kwargs", "atexit", "index")

    def __init__(self, obj, func, /, *args, **kwargs):
        if not self._registered_with_atexit:
            # We may register the exit function more than once because
            # of a thread race, but that is harmless
            import atexit
            atexit.register(self._exitfunc)
            finalize._registered_with_atexit = True
        info = self._Info()
        info.weakref = ref(obj, self)
        info.func = func
        info.args = args
        info.kwargs = kwargs or None
        info.atexit = True
        info.index = next(self._index_iter)
        self._registry[self] = info
        finalize._dirty = True

    def __call__(self, _=None):
        """If alive then mark as dead and return func(*args, **kwargs);
        otherwise return None"""
        info = self._registry.pop(self, None)
        if info and not self._shutdown:
            return info.func(*info.args, **(info.kwargs or {}))

    def detach(self):
        """If alive then mark as dead and return (obj, func, args, kwargs);
        otherwise return None"""
        info = self._registry.get(self)
        obj = info and info.weakref()
        if obj is not None and self._registry.pop(self, None):
            return (obj, info.func, info.args, info.kwargs or {})

    def peek(self):
        """If alive then return (obj, func, args, kwargs);
        otherwise return None"""
        info = self._registry.get(self)
        obj = info and info.weakref()
        if obj is not None:
            return (obj, info.func, info.args, info.kwargs or {})

    @property
    def alive(self):
        """Whether finalizer is alive"""
        return self in self._registry

    @property
    def atexit(self):
        """Whether finalizer should be called at exit"""
        info = self._registry.get(self)
        return bool(info) and info.atexit

    @atexit.setter
    def atexit(self, value):
        info = self._registry.get(self)
        if info:
            info.atexit = bool(value)

    def __repr__(self):
        info = self._registry.get(self)
        obj = info and info.weakref()
        if obj is None:
            return '<%s object at %#x; dead>' % (type(self).__name__, id(self))
        else:
            return '<%s object at %#x; for %r at %#x>' % \
                (type(self).__name__, id(self), type(obj).__name__, id(obj))

    @classmethod
    def _select_for_exit(cls):
        # Return live finalizers marked for exit, oldest first
        L = [(f,i) for (f,i) in cls._registry.items() if i.atexit]
        L.sort(key=lambda item:item[1].index)
        return [f for (f,i) in L]

    @classmethod
    def _exitfunc(cls):
        # At shutdown invoke finalizers for which atexit is true.
        # This is called once all other non-daemonic threads have been
        # joined.
        reenable_gc = False
        try:
            if cls._registry:
                import gc
                if gc.isenabled():
                    reenable_gc = True
                    gc.disable()
                pending = None
                while True:
                    if pending is None or finalize._dirty:
                        pending = cls._select_for_exit()
                        finalize._dirty = False
                    if not pending:
                        break
                    f = pending.pop()
                    try:
                        # gc is disabled, so (assuming no daemonic
                        # threads) the following is the only line in
                        # this function which might trigger creation
                        # of a new finalizer
                        f()
                    except Exception:
                        sys.excepthook(*sys.exc_info())
                    assert f not in cls._registry
        finally:
            # prevent any more finalizers from executing during shutdown
            finalize._shutdown = True
            if reenable_gc:
                gc.enable()
