"""Utilities for with-statement contexts.  See PEP 343."""
import abc
import os
import sys
import _collections_abc
from collections import deque
from functools import wraps
from types import MethodType, GenericAlias

__all__ = ["asynccontextmanager", "contextmanager", "closing", "nullcontext",
           "AbstractContextManager", "AbstractAsyncContextManager",
           "AsyncExitStack", "ContextDecorator", "ExitStack",
           "redirect_stdout", "redirect_stderr", "suppress", "aclosing",
           "chdir"]


class AbstractContextManager(abc.ABC):

    """An abstract base class for context managers."""

    __class_getitem__ = classmethod(GenericAlias)

    def __enter__(self):
        """Return `self` upon entering the runtime context."""
        return self

    @abc.abstractmethod
    def __exit__(self, exc_type, exc_value, traceback):
        """Raise any exception triggered within the runtime context."""
        return None

    @classmethod
    def __subclasshook__(cls, C):
        if cls is AbstractContextManager:
            return _collections_abc._check_methods(C, "__enter__", "__exit__")
        return NotImplemented


class AbstractAsyncContextManager(abc.ABC):

    """An abstract base class for asynchronous context managers."""

    __class_getitem__ = classmethod(GenericAlias)

    async def __aenter__(self):
        """Return `self` upon entering the runtime context."""
        return self

    @abc.abstractmethod
    async def __aexit__(self, exc_type, exc_value, traceback):
        """Raise any exception triggered within the runtime context."""
        return None

    @classmethod
    def __subclasshook__(cls, C):
        if cls is AbstractAsyncContextManager:
            return _collections_abc._check_methods(C, "__aenter__",
                                                   "__aexit__")
        return NotImplemented


class ContextDecorator(object):
    "A base class or mixin that enables context managers to work as decorators."

    def _recreate_cm(self):
        """Return a recreated instance of self.

        Allows an otherwise one-shot context manager like
        _GeneratorContextManager to support use as
        a decorator via implicit recreation.

        This is a private interface just for _GeneratorContextManager.
        See issue #11647 for details.
        """
        return self

    def __call__(self, func):
        @wraps(func)
        def inner(*args, **kwds):
            with self._recreate_cm():
                return func(*args, **kwds)
        return inner


class AsyncContextDecorator(object):
    "A base class or mixin that enables async context managers to work as decorators."

    def _recreate_cm(self):
        """Return a recreated instance of self.
        """
        return self

    def __call__(self, func):
        @wraps(func)
        async def inner(*args, **kwds):
            async with self._recreate_cm():
                return await func(*args, **kwds)
        return inner


class _GeneratorContextManagerBase:
    """Shared functionality for @contextmanager and @asynccontextmanager."""

    def __init__(self, func, args, kwds):
        self.gen = func(*args, **kwds)
        self.func, self.args, self.kwds = func, args, kwds
        # Issue 19330: ensure context manager instances have good docstrings
        doc = getattr(func, "__doc__", None)
        if doc is None:
            doc = type(self).__doc__
        self.__doc__ = doc
        # Unfortunately, this still doesn't provide good help output when
        # inspecting the created context manager instances, since pydoc
        # currently bypasses the instance docstring and shows the docstring
        # for the class instead.
        # See http://bugs.python.org/issue19404 for more details.

    def _recreate_cm(self):
        # _GCMB instances are one-shot context managers, so the
        # CM must be recreated each time a decorated function is
        # called
        return self.__class__(self.func, self.args, self.kwds)


class _GeneratorContextManager(
    _GeneratorContextManagerBase,
    AbstractContextManager,
    ContextDecorator,
):
    """Helper for @contextmanager decorator."""

    def __enter__(self):
        # do not keep args and kwds alive unnecessarily
        # they are only needed for recreation, which is not possible anymore
        del self.args, self.kwds, self.func
        try:
            return next(self.gen)
        except StopIteration:
            raise RuntimeError("generator didn't yield") from None

    def __exit__(self, typ, value, traceback):
        if typ is None:
            try:
                next(self.gen)
            except StopIteration:
                return False
            else:
                try:
                    raise RuntimeError("generator didn't stop")
                finally:
                    self.gen.close()
        else:
            if value is None:
                # Need to force instantiation so we can reliably
                # tell if we get the same exception back
                value = typ()
            try:
                self.gen.throw(typ, value, traceback)
            except StopIteration as exc:
                # Suppress StopIteration *unless* it's the same exception that
                # was passed to throw().  This prevents a StopIteration
                # raised inside the "with" statement from being suppressed.
                return exc is not value
            except RuntimeError as exc:
                # Don't re-raise the passed in exception. (issue27122)
                if exc is value:
                    exc.__traceback__ = traceback
                    return False
                # Avoid suppressing if a StopIteration exception
                # was passed to throw() and later wrapped into a RuntimeError
                # (see PEP 479 for sync generators; async generators also
                # have this behavior). But do this only if the exception wrapped
                # by the RuntimeError is actually Stop(Async)Iteration (see
                # issue29692).
                if (
                    isinstance(value, StopIteration)
                    and exc.__cause__ is value
                ):
                    value.__traceback__ = traceback
                    return False
                raise
            except BaseException as exc:
                # only re-raise if it's *not* the exception that was
                # passed to throw(), because __exit__() must not raise
                # an exception unless __exit__() itself failed.  But throw()
                # has to raise the exception to signal propagation, so this
                # fixes the impedance mismatch between the throw() protocol
                # and the __exit__() protocol.
                if exc is not value:
                    raise
                exc.__traceback__ = traceback
                return False
            try:
                raise RuntimeError("generator didn't stop after throw()")
            finally:
                self.gen.close()

class _AsyncGeneratorContextManager(
    _GeneratorContextManagerBase,
    AbstractAsyncContextManager,
    AsyncContextDecorator,
):
    """Helper for @asynccontextmanager decorator."""

    async def __aenter__(self):
        # do not keep args and kwds alive unnecessarily
        # they are only needed for recreation, which is not possible anymore
        del self.args, self.kwds, self.func
        try:
            return await anext(self.gen)
        except StopAsyncIteration:
            raise RuntimeError("generator didn't yield") from None

    async def __aexit__(self, typ, value, traceback):
        if typ is None:
            try:
                await anext(self.gen)
            except StopAsyncIteration:
                return False
            else:
                try:
                    raise RuntimeError("generator didn't stop")
                finally:
                    await self.gen.aclose()
        else:
            if value is None:
                # Need to force instantiation so we can reliably
                # tell if we get the same exception back
                value = typ()
            try:
                await self.gen.athrow(typ, value, traceback)
            except StopAsyncIteration as exc:
                # Suppress StopIteration *unless* it's the same exception that
                # was passed to throw().  This prevents a StopIteration
                # raised inside the "with" statement from being suppressed.
                return exc is not value
            except RuntimeError as exc:
                # Don't re-raise the passed in exception. (issue27122)
                if exc is value:
                    exc.__traceback__ = traceback
                    return False
                # Avoid suppressing if a Stop(Async)Iteration exception
                # was passed to athrow() and later wrapped into a RuntimeError
                # (see PEP 479 for sync generators; async generators also
                # have this behavior). But do this only if the exception wrapped
                # by the RuntimeError is actually Stop(Async)Iteration (see
                # issue29692).
                if (
                    isinstance(value, (StopIteration, StopAsyncIteration))
                    and exc.__cause__ is value
                ):
                    value.__traceback__ = traceback
                    return False
                raise
            except BaseException as exc:
                # only re-raise if it's *not* the exception that was
                # passed to throw(), because __exit__() must not raise
                # an exception unless __exit__() itself failed.  But throw()
                # has to raise the exception to signal propagation, so this
                # fixes the impedance mismatch between the throw() protocol
                # and the __exit__() protocol.
                if exc is not value:
                    raise
                exc.__traceback__ = traceback
                return False
            try:
                raise RuntimeError("generator didn't stop after athrow()")
            finally:
                await self.gen.aclose()


def contextmanager(func):
    """@contextmanager decorator.

    Typical usage:

        @contextmanager
        def some_generator(<arguments>):
            <setup>
            try:
                yield <value>
            finally:
                <cleanup>

    This makes this:

        with some_generator(<arguments>) as <variable>:
            <body>

    equivalent to this:

        <setup>
        try:
            <variable> = <value>
            <body>
        finally:
            <cleanup>
    """
    @wraps(func)
    def helper(*args, **kwds):
        return _GeneratorContextManager(func, args, kwds)
    return helper


def asynccontextmanager(func):
    """@asynccontextmanager decorator.

    Typical usage:

        @asynccontextmanager
        async def some_async_generator(<arguments>):
            <setup>
            try:
                yield <value>
            finally:
                <cleanup>

    This makes this:

        async with some_async_generator(<arguments>) as <variable>:
            <body>

    equivalent to this:

        <setup>
        try:
            <variable> = <value>
            <body>
        finally:
            <cleanup>
    """
    @wraps(func)
    def helper(*args, **kwds):
        return _AsyncGeneratorContextManager(func, args, kwds)
    return helper


class closing(AbstractContextManager):
    """Context to automatically close something at the end of a block.

    Code like this:

        with closing(<module>.open(<arguments>)) as f:
            <block>

    is equivalent to this:

        f = <module>.open(<arguments>)
        try:
            <block>
        finally:
            f.close()

    """
    def __init__(self, thing):
        self.thing = thing
    def __enter__(self):
        return self.thing
    def __exit__(self, *exc_info):
        self.thing.close()


class aclosing(AbstractAsyncContextManager):
    """Async context manager for safely finalizing an asynchronously cleaned-up
    resource such as an async generator, calling its ``aclose()`` method.

    Code like this:

        async with aclosing(<module>.fetch(<arguments>)) as agen:
            <block>

    is equivalent to this:

        agen = <module>.fetch(<arguments>)
        try:
            <block>
        finally:
            await agen.aclose()

    """
    def __init__(self, thing):
        self.thing = thing
    async def __aenter__(self):
        return self.thing
    async def __aexit__(self, *exc_info):
        await self.thing.aclose()


class _RedirectStream(AbstractContextManager):

    _stream = None

    def __init__(self, new_target):
        self._new_target = new_target
        # We use a list of old targets to make this CM re-entrant
        self._old_targets = []

    def __enter__(self):
        self._old_targets.append(getattr(sys, self._stream))
        setattr(sys, self._stream, self._new_target)
        return self._new_target

    def __exit__(self, exctype, excinst, exctb):
        setattr(sys, self._stream, self._old_targets.pop())


class redirect_stdout(_RedirectStream):
    """Context manager for temporarily redirecting stdout to another file.

        # How to send help() to stderr
        with redirect_stdout(sys.stderr):
            help(dir)

        # How to write help() to a file
        with open('help.txt', 'w') as f:
            with redirect_stdout(f):
                help(pow)
    """

    _stream = "stdout"


class redirect_stderr(_RedirectStream):
    """Context manager for temporarily redirecting stderr to another file."""

    _stream = "stderr"


class suppress(AbstractContextManager):
    """Context manager to suppress specified exceptions

    After the exception is suppressed, execution proceeds with the next
    statement following the with statement.

         with suppress(FileNotFoundError):
             os.remove(somefile)
         # Execution still resumes here if the file was already removed
    """

    def __init__(self, *exceptions):
        self._exceptions = exceptions

    def __enter__(self):
        pass

    def __exit__(self, exctype, excinst, exctb):
        # Unlike isinstance and issubclass, CPython exception handling
        # currently only looks at the concrete type hierarchy (ignoring
        # the instance and subclass checking hooks). While Guido considers
        # that a bug rather than a feature, it's a fairly hard one to fix
        # due to various internal implementation details. suppress provides
        # the simpler issubclass based semantics, rather than trying to
        # exactly reproduce the limitations of the CPython interpreter.
        #
        # See http://bugs.python.org/issue12029 for more details
        return exctype is not None and issubclass(exctype, self._exceptions)


class _BaseExitStack:
    """A base class for ExitStack and AsyncExitStack."""

    @staticmethod
    def _create_exit_wrapper(cm, cm_exit):
        return MethodType(cm_exit, cm)

    @staticmethod
    def _create_cb_wrapper(callback, /, *args, **kwds):
        def _exit_wrapper(exc_type, exc, tb):
            callback(*args, **kwds)
        return _exit_wrapper

    def __init__(self):
        self._exit_callbacks = deque()

    def pop_all(self):
        """Preserve the context stack by transferring it to a new instance."""
        new_stack = type(self)()
        new_stack._exit_callbacks = self._exit_callbacks
        self._exit_callbacks = deque()
        return new_stack

    def push(self, exit):
        """Registers a callback with the standard __exit__ method signature.

        Can suppress exceptions the same way __exit__ method can.
        Also accepts any object with an __exit__ method (registering a call
        to the method instead of the object itself).
        """
        # We use an unbound method rather than a bound method to follow
        # the standard lookup behaviour for special methods.
        _cb_type = type(exit)

        try:
            exit_method = _cb_type.__exit__
        except AttributeError:
            # Not a context manager, so assume it's a callable.
            self._push_exit_callback(exit)
        else:
            self._push_cm_exit(exit, exit_method)
        return exit  # Allow use as a decorator.

    def enter_context(self, cm):
        """Enters the supplied context manager.

        If successful, also pushes its __exit__ method as a callback and
        returns the result of the __enter__ method.
        """
        # We look up the special methods on the type to match the with
        # statement.
        cls = type(cm)
        try:
            _enter = cls.__enter__
            _exit = cls.__exit__
        except AttributeError:
            raise TypeError(f"'{cls.__module__}.{cls.__qualname__}' object does "
                            f"not support the context manager protocol") from None
        result = _enter(cm)
        self._push_cm_exit(cm, _exit)
        return result

    def callback(self, callback, /, *args, **kwds):
        """Registers an arbitrary callback and arguments.

        Cannot suppress exceptions.
        """
        _exit_wrapper = self._create_cb_wrapper(callback, *args, **kwds)

        # We changed the signature, so using @wraps is not appropriate, but
        # setting __wrapped__ may still help with introspection.
        _exit_wrapper.__wrapped__ = callback
        self._push_exit_callback(_exit_wrapper)
        return callback  # Allow use as a decorator

    def _push_cm_exit(self, cm, cm_exit):
        """Helper to correctly register callbacks to __exit__ methods."""
        _exit_wrapper = self._create_exit_wrapper(cm, cm_exit)
        self._push_exit_callback(_exit_wrapper, True)

    def _push_exit_callback(self, callback, is_sync=True):
        self._exit_callbacks.append((is_sync, callback))


# Inspired by discussions on http://bugs.python.org/issue13585
class ExitStack(_BaseExitStack, AbstractContextManager):
    """Context manager for dynamic management of a stack of exit callbacks.

    For example:
        with ExitStack() as stack:
            files = [stack.enter_context(open(fname)) for fname in filenames]
            # All opened files will automatically be closed at the end of
            # the with statement, even if attempts to open files later
            # in the list raise an exception.
    """

    def __enter__(self):
        return self

    def __exit__(self, *exc_details):
        received_exc = exc_details[0] is not None

        # We manipulate the exception state so it behaves as though
        # we were actually nesting multiple with statements
        frame_exc = sys.exc_info()[1]
        def _fix_exception_context(new_exc, old_exc):
            # Context may not be correct, so find the end of the chain
            while 1:
                exc_context = new_exc.__context__
                if exc_context is None or exc_context is old_exc:
                    # Context is already set correctly (see issue 20317)
                    return
                if exc_context is frame_exc:
                    break
                new_exc = exc_context
            # Change the end of the chain to point to the exception
            # we expect it to reference
            new_exc.__context__ = old_exc

        # Callbacks are invoked in LIFO order to match the behaviour of
        # nested context managers
        suppressed_exc = False
        pending_raise = False
        while self._exit_callbacks:
            is_sync, cb = self._exit_callbacks.pop()
            assert is_sync
            try:
                if cb(*exc_details):
                    suppressed_exc = True
                    pending_raise = False
                    exc_details = (None, None, None)
            except:
                new_exc_details = sys.exc_info()
                # simulate the stack of exceptions by setting the context
                _fix_exception_context(new_exc_details[1], exc_details[1])
                pending_raise = True
                exc_details = new_exc_details
        if pending_raise:
            try:
                # bare "raise exc_details[1]" replaces our carefully
                # set-up context
                fixed_ctx = exc_details[1].__context__
                raise exc_details[1]
            except BaseException:
                exc_details[1].__context__ = fixed_ctx
                raise
        return received_exc and suppressed_exc

    def close(self):
        """Immediately unwind the context stack."""
        self.__exit__(None, None, None)


# Inspired by discussions on https://bugs.python.org/issue29302
class AsyncExitStack(_BaseExitStack, AbstractAsyncContextManager):
    """Async context manager for dynamic management of a stack of exit
    callbacks.

    For example:
        async with AsyncExitStack() as stack:
            connections = [await stack.enter_async_context(get_connection())
                for i in range(5)]
            # All opened connections will automatically be released at the
            # end of the async with statement, even if attempts to open a
            # connection later in the list raise an exception.
    """

    @staticmethod
    def _create_async_exit_wrapper(cm, cm_exit):
        return MethodType(cm_exit, cm)

    @staticmethod
    def _create_async_cb_wrapper(callback, /, *args, **kwds):
        async def _exit_wrapper(exc_type, exc, tb):
            await callback(*args, **kwds)
        return _exit_wrapper

    async def enter_async_context(self, cm):
        """Enters the supplied async context manager.

        If successful, also pushes its __aexit__ method as a callback and
        returns the result of the __aenter__ method.
        """
        cls = type(cm)
        try:
            _enter = cls.__aenter__
            _exit = cls.__aexit__
        except AttributeError:
            raise TypeError(f"'{cls.__module__}.{cls.__qualname__}' object does "
                            f"not support the asynchronous context manager protocol"
                           ) from None
        result = await _enter(cm)
        self._push_async_cm_exit(cm, _exit)
        return result

    def push_async_exit(self, exit):
        """Registers a coroutine function with the standard __aexit__ method
        signature.

        Can suppress exceptions the same way __aexit__ method can.
        Also accepts any object with an __aexit__ method (registering a call
        to the method instead of the object itself).
        """
        _cb_type = type(exit)
        try:
            exit_method = _cb_type.__aexit__
        except AttributeError:
            # Not an async context manager, so assume it's a coroutine function
            self._push_exit_callback(exit, False)
        else:
            self._push_async_cm_exit(exit, exit_method)
        return exit  # Allow use as a decorator

    def push_async_callback(self, callback, /, *args, **kwds):
        """Registers an arbitrary coroutine function and arguments.

        Cannot suppress exceptions.
        """
        _exit_wrapper = self._create_async_cb_wrapper(callback, *args, **kwds)

        # We changed the signature, so using @wraps is not appropriate, but
        # setting __wrapped__ may still help with introspection.
        _exit_wrapper.__wrapped__ = callback
        self._push_exit_callback(_exit_wrapper, False)
        return callback  # Allow use as a decorator

    async def aclose(self):
        """Immediately unwind the context stack."""
        await self.__aexit__(None, None, None)

    def _push_async_cm_exit(self, cm, cm_exit):
        """Helper to correctly register coroutine function to __aexit__
        method."""
        _exit_wrapper = self._create_async_exit_wrapper(cm, cm_exit)
        self._push_exit_callback(_exit_wrapper, False)

    async def __aenter__(self):
        return self

    async def __aexit__(self, *exc_details):
        received_exc = exc_details[0] is not None

        # We manipulate the exception state so it behaves as though
        # we were actually nesting multiple with statements
        frame_exc = sys.exc_info()[1]
        def _fix_exception_context(new_exc, old_exc):
            # Context may not be correct, so find the end of the chain
            while 1:
                exc_context = new_exc.__context__
                if exc_context is None or exc_context is old_exc:
                    # Context is already set correctly (see issue 20317)
                    return
                if exc_context is frame_exc:
                    break
                new_exc = exc_context
            # Change the end of the chain to point to the exception
            # we expect it to reference
            new_exc.__context__ = old_exc

        # Callbacks are invoked in LIFO order to match the behaviour of
        # nested context managers
        suppressed_exc = False
        pending_raise = False
        while self._exit_callbacks:
            is_sync, cb = self._exit_callbacks.pop()
            try:
                if is_sync:
                    cb_suppress = cb(*exc_details)
                else:
                    cb_suppress = await cb(*exc_details)

                if cb_suppress:
                    suppressed_exc = True
                    pending_raise = False
                    exc_details = (None, None, None)
            except:
                new_exc_details = sys.exc_info()
                # simulate the stack of exceptions by setting the context
                _fix_exception_context(new_exc_details[1], exc_details[1])
                pending_raise = True
                exc_details = new_exc_details
        if pending_raise:
            try:
                # bare "raise exc_details[1]" replaces our carefully
                # set-up context
                fixed_ctx = exc_details[1].__context__
                raise exc_details[1]
            except BaseException:
                exc_details[1].__context__ = fixed_ctx
                raise
        return received_exc and suppressed_exc


class nullcontext(AbstractContextManager, AbstractAsyncContextManager):
    """Context manager that does no additional processing.

    Used as a stand-in for a normal context manager, when a particular
    block of code is only sometimes used with a normal context manager:

    cm = optional_cm if condition else nullcontext()
    with cm:
        # Perform operation, using optional_cm if condition is True
    """

    def __init__(self, enter_result=None):
        self.enter_result = enter_result

    def __enter__(self):
        return self.enter_result

    def __exit__(self, *excinfo):
        pass

    async def __aenter__(self):
        return self.enter_result

    async def __aexit__(self, *excinfo):
        pass


class chdir(AbstractContextManager):
    """Non thread-safe context manager to change the current working directory."""

    def __init__(self, path):
        self.path = path
        self._old_cwd = []

    def __enter__(self):
        self._old_cwd.append(os.getcwd())
        os.chdir(self.path)

    def __exit__(self, *excinfo):
        os.chdir(self._old_cwd.pop())
