'''A multi-producer, multi-consumer queue.'''

import threading
import types
from collections import deque
from heapq import heappush, heappop
from time import monotonic as time
try:
    from _queue import SimpleQueue
except ImportError:
    SimpleQueue = None

__all__ = ['Empty', 'Full', 'Queue', 'PriorityQueue', 'LifoQueue', 'SimpleQueue']


try:
    from _queue import Empty
except ImportError:
    class Empty(Exception):
        'Exception raised by Queue.get(block=0)/get_nowait().'
        pass

class Full(Exception):
    'Exception raised by Queue.put(block=0)/put_nowait().'
    pass


class Queue:
    '''Create a queue object with a given maximum size.

    If maxsize is <= 0, the queue size is infinite.
    '''

    def __init__(self, maxsize=0):
        self.maxsize = maxsize
        self._init(maxsize)

        # mutex must be held whenever the queue is mutating.  All methods
        # that acquire mutex must release it before returning.  mutex
        # is shared between the three conditions, so acquiring and
        # releasing the conditions also acquires and releases mutex.
        self.mutex = threading.Lock()

        # Notify not_empty whenever an item is added to the queue; a
        # thread waiting to get is notified then.
        self.not_empty = threading.Condition(self.mutex)

        # Notify not_full whenever an item is removed from the queue;
        # a thread waiting to put is notified then.
        self.not_full = threading.Condition(self.mutex)

        # Notify all_tasks_done whenever the number of unfinished tasks
        # drops to zero; thread waiting to join() is notified to resume
        self.all_tasks_done = threading.Condition(self.mutex)
        self.unfinished_tasks = 0

    def task_done(self):
        '''Indicate that a formerly enqueued task is complete.

        Used by Queue consumer threads.  For each get() used to fetch a task,
        a subsequent call to task_done() tells the queue that the processing
        on the task is complete.

        If a join() is currently blocking, it will resume when all items
        have been processed (meaning that a task_done() call was received
        for every item that had been put() into the queue).

        Raises a ValueError if called more times than there were items
        placed in the queue.
        '''
        with self.all_tasks_done:
            unfinished = self.unfinished_tasks - 1
            if unfinished <= 0:
                if unfinished < 0:
                    raise ValueError('task_done() called too many times')
                self.all_tasks_done.notify_all()
            self.unfinished_tasks = unfinished

    def join(self):
        '''Blocks until all items in the Queue have been gotten and processed.

        The count of unfinished tasks goes up whenever an item is added to the
        queue. The count goes down whenever a consumer thread calls task_done()
        to indicate the item was retrieved and all work on it is complete.

        When the count of unfinished tasks drops to zero, join() unblocks.
        '''
        with self.all_tasks_done:
            while self.unfinished_tasks:
                self.all_tasks_done.wait()

    def qsize(self):
        '''Return the approximate size of the queue (not reliable!).'''
        with self.mutex:
            return self._qsize()

    def empty(self):
        '''Return True if the queue is empty, False otherwise (not reliable!).

        This method is likely to be removed at some point.  Use qsize() == 0
        as a direct substitute, but be aware that either approach risks a race
        condition where a queue can grow before the result of empty() or
        qsize() can be used.

        To create code that needs to wait for all queued tasks to be
        completed, the preferred technique is to use the join() method.
        '''
        with self.mutex:
            return not self._qsize()

    def full(self):
        '''Return True if the queue is full, False otherwise (not reliable!).

        This method is likely to be removed at some point.  Use qsize() >= n
        as a direct substitute, but be aware that either approach risks a race
        condition where a queue can shrink before the result of full() or
        qsize() can be used.
        '''
        with self.mutex:
            return 0 < self.maxsize <= self._qsize()

    def put(self, item, block=True, timeout=None):
        '''Put an item into the queue.

        If optional args 'block' is true and 'timeout' is None (the default),
        block if necessary until a free slot is available. If 'timeout' is
        a non-negative number, it blocks at most 'timeout' seconds and raises
        the Full exception if no free slot was available within that time.
        Otherwise ('block' is false), put an item on the queue if a free slot
        is immediately available, else raise the Full exception ('timeout'
        is ignored in that case).
        '''
        with self.not_full:
            if self.maxsize > 0:
                if not block:
                    if self._qsize() >= self.maxsize:
                        raise Full
                elif timeout is None:
                    while self._qsize() >= self.maxsize:
                        self.not_full.wait()
                elif timeout < 0:
                    raise ValueError("'timeout' must be a non-negative number")
                else:
                    endtime = time() + timeout
                    while self._qsize() >= self.maxsize:
                        remaining = endtime - time()
                        if remaining <= 0.0:
                            raise Full
                        self.not_full.wait(remaining)
            self._put(item)
            self.unfinished_tasks += 1
            self.not_empty.notify()

    def get(self, block=True, timeout=None):
        '''Remove and return an item from the queue.

        If optional args 'block' is true and 'timeout' is None (the default),
        block if necessary until an item is available. If 'timeout' is
        a non-negative number, it blocks at most 'timeout' seconds and raises
        the Empty exception if no item was available within that time.
        Otherwise ('block' is false), return an item if one is immediately
        available, else raise the Empty exception ('timeout' is ignored
        in that case).
        '''
        with self.not_empty:
            if not block:
                if not self._qsize():
                    raise Empty
            elif timeout is None:
                while not self._qsize():
                    self.not_empty.wait()
            elif timeout < 0:
                raise ValueError("'timeout' must be a non-negative number")
            else:
                endtime = time() + timeout
                while not self._qsize():
                    remaining = endtime - time()
                    if remaining <= 0.0:
                        raise Empty
                    self.not_empty.wait(remaining)
            item = self._get()
            self.not_full.notify()
            return item

    def put_nowait(self, item):
        '''Put an item into the queue without blocking.

        Only enqueue the item if a free slot is immediately available.
        Otherwise raise the Full exception.
        '''
        return self.put(item, block=False)

    def get_nowait(self):
        '''Remove and return an item from the queue without blocking.

        Only get an item if one is immediately available. Otherwise
        raise the Empty exception.
        '''
        return self.get(block=False)

    # Override these methods to implement other queue organizations
    # (e.g. stack or priority queue).
    # These will only be called with appropriate locks held

    # Initialize the queue representation
    def _init(self, maxsize):
        self.queue = deque()

    def _qsize(self):
        return len(self.queue)

    # Put a new item in the queue
    def _put(self, item):
        self.queue.append(item)

    # Get an item from the queue
    def _get(self):
        return self.queue.popleft()

    __class_getitem__ = classmethod(types.GenericAlias)


class PriorityQueue(Queue):
    '''Variant of Queue that retrieves open entries in priority order (lowest first).

    Entries are typically tuples of the form:  (priority number, data).
    '''

    def _init(self, maxsize):
        self.queue = []

    def _qsize(self):
        return len(self.queue)

    def _put(self, item):
        heappush(self.queue, item)

    def _get(self):
        return heappop(self.queue)


class LifoQueue(Queue):
    '''Variant of Queue that retrieves most recently added entries first.'''

    def _init(self, maxsize):
        self.queue = []

    def _qsize(self):
        return len(self.queue)

    def _put(self, item):
        self.queue.append(item)

    def _get(self):
        return self.queue.pop()


class _PySimpleQueue:
    '''Simple, unbounded FIFO queue.

    This pure Python implementation is not reentrant.
    '''
    # Note: while this pure Python version provides fairness
    # (by using a threading.Semaphore which is itself fair, being based
    #  on threading.Condition), fairness is not part of the API contract.
    # This allows the C version to use a different implementation.

    def __init__(self):
        self._queue = deque()
        self._count = threading.Semaphore(0)

    def put(self, item, block=True, timeout=None):
        '''Put the item on the queue.

        The optional 'block' and 'timeout' arguments are ignored, as this method
        never blocks.  They are provided for compatibility with the Queue class.
        '''
        self._queue.append(item)
        self._count.release()

    def get(self, block=True, timeout=None):
        '''Remove and return an item from the queue.

        If optional args 'block' is true and 'timeout' is None (the default),
        block if necessary until an item is available. If 'timeout' is
        a non-negative number, it blocks at most 'timeout' seconds and raises
        the Empty exception if no item was available within that time.
        Otherwise ('block' is false), return an item if one is immediately
        available, else raise the Empty exception ('timeout' is ignored
        in that case).
        '''
        if timeout is not None and timeout < 0:
            raise ValueError("'timeout' must be a non-negative number")
        if not self._count.acquire(block, timeout):
            raise Empty
        return self._queue.popleft()

    def put_nowait(self, item):
        '''Put an item into the queue without blocking.

        This is exactly equivalent to `put(item, block=False)` and is only provided
        for compatibility with the Queue class.
        '''
        return self.put(item, block=False)

    def get_nowait(self):
        '''Remove and return an item from the queue without blocking.

        Only get an item if one is immediately available. Otherwise
        raise the Empty exception.
        '''
        return self.get(block=False)

    def empty(self):
        '''Return True if the queue is empty, False otherwise (not reliable!).'''
        return len(self._queue) == 0

    def qsize(self):
        '''Return the approximate size of the queue (not reliable!).'''
        return len(self._queue)

    __class_getitem__ = classmethod(types.GenericAlias)


if SimpleQueue is None:
    SimpleQueue = _PySimpleQueue
