import re
import sys
import copy
import types
import inspect
import keyword
import builtins
import functools
import itertools
import abc
import _thread
from types import FunctionType, GenericAlias


__all__ = ['dataclass',
           'field',
           'Field',
           'FrozenInstanceError',
           'InitVar',
           'KW_ONLY',
           'MISSING',

           # Helper functions.
           'fields',
           'asdict',
           'astuple',
           'make_dataclass',
           'replace',
           'is_dataclass',
           ]

# Conditions for adding methods.  The boxes indicate what action the
# dataclass decorator takes.  For all of these tables, when I talk
# about init=, repr=, eq=, order=, unsafe_hash=, or frozen=, I'm
# referring to the arguments to the @dataclass decorator.  When
# checking if a dunder method already exists, I mean check for an
# entry in the class's __dict__.  I never check to see if an attribute
# is defined in a base class.

# Key:
# +=========+=========================================+
# + Value   | Meaning                                 |
# +=========+=========================================+
# | <blank> | No action: no method is added.          |
# +---------+-----------------------------------------+
# | add     | Generated method is added.              |
# +---------+-----------------------------------------+
# | raise   | TypeError is raised.                    |
# +---------+-----------------------------------------+
# | None    | Attribute is set to None.               |
# +=========+=========================================+

# __init__
#
#   +--- init= parameter
#   |
#   v     |       |       |
#         |  no   |  yes  |  <--- class has __init__ in __dict__?
# +=======+=======+=======+
# | False |       |       |
# +-------+-------+-------+
# | True  | add   |       |  <- the default
# +=======+=======+=======+

# __repr__
#
#    +--- repr= parameter
#    |
#    v    |       |       |
#         |  no   |  yes  |  <--- class has __repr__ in __dict__?
# +=======+=======+=======+
# | False |       |       |
# +-------+-------+-------+
# | True  | add   |       |  <- the default
# +=======+=======+=======+


# __setattr__
# __delattr__
#
#    +--- frozen= parameter
#    |
#    v    |       |       |
#         |  no   |  yes  |  <--- class has __setattr__ or __delattr__ in __dict__?
# +=======+=======+=======+
# | False |       |       |  <- the default
# +-------+-------+-------+
# | True  | add   | raise |
# +=======+=======+=======+
# Raise because not adding these methods would break the "frozen-ness"
# of the class.

# __eq__
#
#    +--- eq= parameter
#    |
#    v    |       |       |
#         |  no   |  yes  |  <--- class has __eq__ in __dict__?
# +=======+=======+=======+
# | False |       |       |
# +-------+-------+-------+
# | True  | add   |       |  <- the default
# +=======+=======+=======+

# __lt__
# __le__
# __gt__
# __ge__
#
#    +--- order= parameter
#    |
#    v    |       |       |
#         |  no   |  yes  |  <--- class has any comparison method in __dict__?
# +=======+=======+=======+
# | False |       |       |  <- the default
# +-------+-------+-------+
# | True  | add   | raise |
# +=======+=======+=======+
# Raise because to allow this case would interfere with using
# functools.total_ordering.

# __hash__

#    +------------------- unsafe_hash= parameter
#    |       +----------- eq= parameter
#    |       |       +--- frozen= parameter
#    |       |       |
#    v       v       v    |        |        |
#                         |   no   |  yes   |  <--- class has explicitly defined __hash__
# +=======+=======+=======+========+========+
# | False | False | False |        |        | No __eq__, use the base class __hash__
# +-------+-------+-------+--------+--------+
# | False | False | True  |        |        | No __eq__, use the base class __hash__
# +-------+-------+-------+--------+--------+
# | False | True  | False | None   |        | <-- the default, not hashable
# +-------+-------+-------+--------+--------+
# | False | True  | True  | add    |        | Frozen, so hashable, allows override
# +-------+-------+-------+--------+--------+
# | True  | False | False | add    | raise  | Has no __eq__, but hashable
# +-------+-------+-------+--------+--------+
# | True  | False | True  | add    | raise  | Has no __eq__, but hashable
# +-------+-------+-------+--------+--------+
# | True  | True  | False | add    | raise  | Not frozen, but hashable
# +-------+-------+-------+--------+--------+
# | True  | True  | True  | add    | raise  | Frozen, so hashable
# +=======+=======+=======+========+========+
# For boxes that are blank, __hash__ is untouched and therefore
# inherited from the base class.  If the base is object, then
# id-based hashing is used.
#
# Note that a class may already have __hash__=None if it specified an
# __eq__ method in the class body (not one that was created by
# @dataclass).
#
# See _hash_action (below) for a coded version of this table.

# __match_args__
#
#    +--- match_args= parameter
#    |
#    v    |       |       |
#         |  no   |  yes  |  <--- class has __match_args__ in __dict__?
# +=======+=======+=======+
# | False |       |       |
# +-------+-------+-------+
# | True  | add   |       |  <- the default
# +=======+=======+=======+
# __match_args__ is always added unless the class already defines it. It is a
# tuple of __init__ parameter names; non-init fields must be matched by keyword.


# Raised when an attempt is made to modify a frozen class.
class FrozenInstanceError(AttributeError): pass

# A sentinel object for default values to signal that a default
# factory will be used.  This is given a nice repr() which will appear
# in the function signature of dataclasses' constructors.
class _HAS_DEFAULT_FACTORY_CLASS:
    def __repr__(self):
        return '<factory>'
_HAS_DEFAULT_FACTORY = _HAS_DEFAULT_FACTORY_CLASS()

# A sentinel object to detect if a parameter is supplied or not.  Use
# a class to give it a better repr.
class _MISSING_TYPE:
    pass
MISSING = _MISSING_TYPE()

# A sentinel object to indicate that following fields are keyword-only by
# default.  Use a class to give it a better repr.
class _KW_ONLY_TYPE:
    pass
KW_ONLY = _KW_ONLY_TYPE()

# Since most per-field metadata will be unused, create an empty
# read-only proxy that can be shared among all fields.
_EMPTY_METADATA = types.MappingProxyType({})

# Markers for the various kinds of fields and pseudo-fields.
class _FIELD_BASE:
    def __init__(self, name):
        self.name = name
    def __repr__(self):
        return self.name
_FIELD = _FIELD_BASE('_FIELD')
_FIELD_CLASSVAR = _FIELD_BASE('_FIELD_CLASSVAR')
_FIELD_INITVAR = _FIELD_BASE('_FIELD_INITVAR')

# The name of an attribute on the class where we store the Field
# objects.  Also used to check if a class is a Data Class.
_FIELDS = '__dataclass_fields__'

# The name of an attribute on the class that stores the parameters to
# @dataclass.
_PARAMS = '__dataclass_params__'

# The name of the function, that if it exists, is called at the end of
# __init__.
_POST_INIT_NAME = '__post_init__'

# String regex that string annotations for ClassVar or InitVar must match.
# Allows "identifier.identifier[" or "identifier[".
# https://bugs.python.org/issue33453 for details.
_MODULE_IDENTIFIER_RE = re.compile(r'^(?:\s*(\w+)\s*\.)?\s*(\w+)')

# This function's logic is copied from "recursive_repr" function in
# reprlib module to avoid dependency.
def _recursive_repr(user_function):
    # Decorator to make a repr function return "..." for a recursive
    # call.
    repr_running = set()

    @functools.wraps(user_function)
    def wrapper(self):
        key = id(self), _thread.get_ident()
        if key in repr_running:
            return '...'
        repr_running.add(key)
        try:
            result = user_function(self)
        finally:
            repr_running.discard(key)
        return result
    return wrapper

class InitVar:
    __slots__ = ('type', )

    def __init__(self, type):
        self.type = type

    def __repr__(self):
        if isinstance(self.type, type):
            type_name = self.type.__name__
        else:
            # typing objects, e.g. List[int]
            type_name = repr(self.type)
        return f'dataclasses.InitVar[{type_name}]'

    def __class_getitem__(cls, type):
        return InitVar(type)

# Instances of Field are only ever created from within this module,
# and only from the field() function, although Field instances are
# exposed externally as (conceptually) read-only objects.
#
# name and type are filled in after the fact, not in __init__.
# They're not known at the time this class is instantiated, but it's
# convenient if they're available later.
#
# When cls._FIELDS is filled in with a list of Field objects, the name
# and type fields will have been populated.
class Field:
    __slots__ = ('name',
                 'type',
                 'default',
                 'default_factory',
                 'repr',
                 'hash',
                 'init',
                 'compare',
                 'metadata',
                 'kw_only',
                 '_field_type',  # Private: not to be used by user code.
                 )

    def __init__(self, default, default_factory, init, repr, hash, compare,
                 metadata, kw_only):
        self.name = None
        self.type = None
        self.default = default
        self.default_factory = default_factory
        self.init = init
        self.repr = repr
        self.hash = hash
        self.compare = compare
        self.metadata = (_EMPTY_METADATA
                         if metadata is None else
                         types.MappingProxyType(metadata))
        self.kw_only = kw_only
        self._field_type = None

    @_recursive_repr
    def __repr__(self):
        return ('Field('
                f'name={self.name!r},'
                f'type={self.type!r},'
                f'default={self.default!r},'
                f'default_factory={self.default_factory!r},'
                f'init={self.init!r},'
                f'repr={self.repr!r},'
                f'hash={self.hash!r},'
                f'compare={self.compare!r},'
                f'metadata={self.metadata!r},'
                f'kw_only={self.kw_only!r},'
                f'_field_type={self._field_type}'
                ')')

    # This is used to support the PEP 487 __set_name__ protocol in the
    # case where we're using a field that contains a descriptor as a
    # default value.  For details on __set_name__, see
    # https://peps.python.org/pep-0487/#implementation-details.
    #
    # Note that in _process_class, this Field object is overwritten
    # with the default value, so the end result is a descriptor that
    # had __set_name__ called on it at the right time.
    def __set_name__(self, owner, name):
        func = getattr(type(self.default), '__set_name__', None)
        if func:
            # There is a __set_name__ method on the descriptor, call
            # it.
            func(self.default, owner, name)

    __class_getitem__ = classmethod(GenericAlias)


class _DataclassParams:
    __slots__ = ('init',
                 'repr',
                 'eq',
                 'order',
                 'unsafe_hash',
                 'frozen',
                 )

    def __init__(self, init, repr, eq, order, unsafe_hash, frozen):
        self.init = init
        self.repr = repr
        self.eq = eq
        self.order = order
        self.unsafe_hash = unsafe_hash
        self.frozen = frozen

    def __repr__(self):
        return ('_DataclassParams('
                f'init={self.init!r},'
                f'repr={self.repr!r},'
                f'eq={self.eq!r},'
                f'order={self.order!r},'
                f'unsafe_hash={self.unsafe_hash!r},'
                f'frozen={self.frozen!r}'
                ')')


# This function is used instead of exposing Field creation directly,
# so that a type checker can be told (via overloads) that this is a
# function whose type depends on its parameters.
def field(*, default=MISSING, default_factory=MISSING, init=True, repr=True,
          hash=None, compare=True, metadata=None, kw_only=MISSING):
    """Return an object to identify dataclass fields.

    default is the default value of the field.  default_factory is a
    0-argument function called to initialize a field's value.  If init
    is true, the field will be a parameter to the class's __init__()
    function.  If repr is true, the field will be included in the
    object's repr().  If hash is true, the field will be included in the
    object's hash().  If compare is true, the field will be used in
    comparison functions.  metadata, if specified, must be a mapping
    which is stored but not otherwise examined by dataclass.  If kw_only
    is true, the field will become a keyword-only parameter to
    __init__().

    It is an error to specify both default and default_factory.
    """

    if default is not MISSING and default_factory is not MISSING:
        raise ValueError('cannot specify both default and default_factory')
    return Field(default, default_factory, init, repr, hash, compare,
                 metadata, kw_only)


def _fields_in_init_order(fields):
    # Returns the fields as __init__ will output them.  It returns 2 tuples:
    # the first for normal args, and the second for keyword args.

    return (tuple(f for f in fields if f.init and not f.kw_only),
            tuple(f for f in fields if f.init and f.kw_only)
            )


def _tuple_str(obj_name, fields):
    # Return a string representing each field of obj_name as a tuple
    # member.  So, if fields is ['x', 'y'] and obj_name is "self",
    # return "(self.x,self.y)".

    # Special case for the 0-tuple.
    if not fields:
        return '()'
    # Note the trailing comma, needed if this turns out to be a 1-tuple.
    return f'({",".join([f"{obj_name}.{f.name}" for f in fields])},)'


def _create_fn(name, args, body, *, globals=None, locals=None,
               return_type=MISSING):
    # Note that we may mutate locals. Callers beware!
    # The only callers are internal to this module, so no
    # worries about external callers.
    if locals is None:
        locals = {}
    return_annotation = ''
    if return_type is not MISSING:
        locals['_return_type'] = return_type
        return_annotation = '->_return_type'
    args = ','.join(args)
    body = '\n'.join(f'  {b}' for b in body)

    # Compute the text of the entire function.
    txt = f' def {name}({args}){return_annotation}:\n{body}'

    local_vars = ', '.join(locals.keys())
    txt = f"def __create_fn__({local_vars}):\n{txt}\n return {name}"
    ns = {}
    exec(txt, globals, ns)
    return ns['__create_fn__'](**locals)


def _field_assign(frozen, name, value, self_name):
    # If we're a frozen class, then assign to our fields in __init__
    # via object.__setattr__.  Otherwise, just use a simple
    # assignment.
    #
    # self_name is what "self" is called in this function: don't
    # hard-code "self", since that might be a field name.
    if frozen:
        return f'__dataclass_builtins_object__.__setattr__({self_name},{name!r},{value})'
    return f'{self_name}.{name}={value}'


def _field_init(f, frozen, globals, self_name, slots):
    # Return the text of the line in the body of __init__ that will
    # initialize this field.

    default_name = f'_dflt_{f.name}'
    if f.default_factory is not MISSING:
        if f.init:
            # This field has a default factory.  If a parameter is
            # given, use it.  If not, call the factory.
            globals[default_name] = f.default_factory
            value = (f'{default_name}() '
                     f'if {f.name} is _HAS_DEFAULT_FACTORY '
                     f'else {f.name}')
        else:
            # This is a field that's not in the __init__ params, but
            # has a default factory function.  It needs to be
            # initialized here by calling the factory function,
            # because there's no other way to initialize it.

            # For a field initialized with a default=defaultvalue, the
            # class dict just has the default value
            # (cls.fieldname=defaultvalue).  But that won't work for a
            # default factory, the factory must be called in __init__
            # and we must assign that to self.fieldname.  We can't
            # fall back to the class dict's value, both because it's
            # not set, and because it might be different per-class
            # (which, after all, is why we have a factory function!).

            globals[default_name] = f.default_factory
            value = f'{default_name}()'
    else:
        # No default factory.
        if f.init:
            if f.default is MISSING:
                # There's no default, just do an assignment.
                value = f.name
            elif f.default is not MISSING:
                globals[default_name] = f.default
                value = f.name
        else:
            # If the class has slots, then initialize this field.
            if slots and f.default is not MISSING:
                globals[default_name] = f.default
                value = default_name
            else:
                # This field does not need initialization: reading from it will
                # just use the class attribute that contains the default.
                # Signify that to the caller by returning None.
                return None

    # Only test this now, so that we can create variables for the
    # default.  However, return None to signify that we're not going
    # to actually do the assignment statement for InitVars.
    if f._field_type is _FIELD_INITVAR:
        return None

    # Now, actually generate the field assignment.
    return _field_assign(frozen, f.name, value, self_name)


def _init_param(f):
    # Return the __init__ parameter string for this field.  For
    # example, the equivalent of 'x:int=3' (except instead of 'int',
    # reference a variable set to int, and instead of '3', reference a
    # variable set to 3).
    if f.default is MISSING and f.default_factory is MISSING:
        # There's no default, and no default_factory, just output the
        # variable name and type.
        default = ''
    elif f.default is not MISSING:
        # There's a default, this will be the name that's used to look
        # it up.
        default = f'=_dflt_{f.name}'
    elif f.default_factory is not MISSING:
        # There's a factory function.  Set a marker.
        default = '=_HAS_DEFAULT_FACTORY'
    return f'{f.name}:_type_{f.name}{default}'


def _init_fn(fields, std_fields, kw_only_fields, frozen, has_post_init,
             self_name, globals, slots):
    # fields contains both real fields and InitVar pseudo-fields.

    # Make sure we don't have fields without defaults following fields
    # with defaults.  This actually would be caught when exec-ing the
    # function source code, but catching it here gives a better error
    # message, and future-proofs us in case we build up the function
    # using ast.

    seen_default = False
    for f in std_fields:
        # Only consider the non-kw-only fields in the __init__ call.
        if f.init:
            if not (f.default is MISSING and f.default_factory is MISSING):
                seen_default = True
            elif seen_default:
                raise TypeError(f'non-default argument {f.name!r} '
                                'follows default argument')

    locals = {f'_type_{f.name}': f.type for f in fields}
    locals.update({
        'MISSING': MISSING,
        '_HAS_DEFAULT_FACTORY': _HAS_DEFAULT_FACTORY,
        '__dataclass_builtins_object__': object,
    })

    body_lines = []
    for f in fields:
        line = _field_init(f, frozen, locals, self_name, slots)
        # line is None means that this field doesn't require
        # initialization (it's a pseudo-field).  Just skip it.
        if line:
            body_lines.append(line)

    # Does this class have a post-init function?
    if has_post_init:
        params_str = ','.join(f.name for f in fields
                              if f._field_type is _FIELD_INITVAR)
        body_lines.append(f'{self_name}.{_POST_INIT_NAME}({params_str})')

    # If no body lines, use 'pass'.
    if not body_lines:
        body_lines = ['pass']

    _init_params = [_init_param(f) for f in std_fields]
    if kw_only_fields:
        # Add the keyword-only args.  Because the * can only be added if
        # there's at least one keyword-only arg, there needs to be a test here
        # (instead of just concatenting the lists together).
        _init_params += ['*']
        _init_params += [_init_param(f) for f in kw_only_fields]
    return _create_fn('__init__',
                      [self_name] + _init_params,
                      body_lines,
                      locals=locals,
                      globals=globals,
                      return_type=None)


def _repr_fn(fields, globals):
    fn = _create_fn('__repr__',
                    ('self',),
                    ['return self.__class__.__qualname__ + f"(' +
                     ', '.join([f"{f.name}={{self.{f.name}!r}}"
                                for f in fields]) +
                     ')"'],
                     globals=globals)
    return _recursive_repr(fn)


def _frozen_get_del_attr(cls, fields, globals):
    locals = {'cls': cls,
              'FrozenInstanceError': FrozenInstanceError}
    if fields:
        fields_str = '(' + ','.join(repr(f.name) for f in fields) + ',)'
    else:
        # Special case for the zero-length tuple.
        fields_str = '()'
    return (_create_fn('__setattr__',
                      ('self', 'name', 'value'),
                      (f'if type(self) is cls or name in {fields_str}:',
                        ' raise FrozenInstanceError(f"cannot assign to field {name!r}")',
                       f'super(cls, self).__setattr__(name, value)'),
                       locals=locals,
                       globals=globals),
            _create_fn('__delattr__',
                      ('self', 'name'),
                      (f'if type(self) is cls or name in {fields_str}:',
                        ' raise FrozenInstanceError(f"cannot delete field {name!r}")',
                       f'super(cls, self).__delattr__(name)'),
                       locals=locals,
                       globals=globals),
            )


def _cmp_fn(name, op, self_tuple, other_tuple, globals):
    # Create a comparison function.  If the fields in the object are
    # named 'x' and 'y', then self_tuple is the string
    # '(self.x,self.y)' and other_tuple is the string
    # '(other.x,other.y)'.

    return _create_fn(name,
                      ('self', 'other'),
                      [ 'if other.__class__ is self.__class__:',
                       f' return {self_tuple}{op}{other_tuple}',
                        'return NotImplemented'],
                      globals=globals)


def _hash_fn(fields, globals):
    self_tuple = _tuple_str('self', fields)
    return _create_fn('__hash__',
                      ('self',),
                      [f'return hash({self_tuple})'],
                      globals=globals)


def _is_classvar(a_type, typing):
    # This test uses a typing internal class, but it's the best way to
    # test if this is a ClassVar.
    return (a_type is typing.ClassVar
            or (type(a_type) is typing._GenericAlias
                and a_type.__origin__ is typing.ClassVar))


def _is_initvar(a_type, dataclasses):
    # The module we're checking against is the module we're
    # currently in (dataclasses.py).
    return (a_type is dataclasses.InitVar
            or type(a_type) is dataclasses.InitVar)

def _is_kw_only(a_type, dataclasses):
    return a_type is dataclasses.KW_ONLY


def _is_type(annotation, cls, a_module, a_type, is_type_predicate):
    # Given a type annotation string, does it refer to a_type in
    # a_module?  For example, when checking that annotation denotes a
    # ClassVar, then a_module is typing, and a_type is
    # typing.ClassVar.

    # It's possible to look up a_module given a_type, but it involves
    # looking in sys.modules (again!), and seems like a waste since
    # the caller already knows a_module.

    # - annotation is a string type annotation
    # - cls is the class that this annotation was found in
    # - a_module is the module we want to match
    # - a_type is the type in that module we want to match
    # - is_type_predicate is a function called with (obj, a_module)
    #   that determines if obj is of the desired type.

    # Since this test does not do a local namespace lookup (and
    # instead only a module (global) lookup), there are some things it
    # gets wrong.

    # With string annotations, cv0 will be detected as a ClassVar:
    #   CV = ClassVar
    #   @dataclass
    #   class C0:
    #     cv0: CV

    # But in this example cv1 will not be detected as a ClassVar:
    #   @dataclass
    #   class C1:
    #     CV = ClassVar
    #     cv1: CV

    # In C1, the code in this function (_is_type) will look up "CV" in
    # the module and not find it, so it will not consider cv1 as a
    # ClassVar.  This is a fairly obscure corner case, and the best
    # way to fix it would be to eval() the string "CV" with the
    # correct global and local namespaces.  However that would involve
    # a eval() penalty for every single field of every dataclass
    # that's defined.  It was judged not worth it.

    match = _MODULE_IDENTIFIER_RE.match(annotation)
    if match:
        ns = None
        module_name = match.group(1)
        if not module_name:
            # No module name, assume the class's module did
            # "from dataclasses import InitVar".
            ns = sys.modules.get(cls.__module__).__dict__
        else:
            # Look up module_name in the class's module.
            module = sys.modules.get(cls.__module__)
            if module and module.__dict__.get(module_name) is a_module:
                ns = sys.modules.get(a_type.__module__).__dict__
        if ns and is_type_predicate(ns.get(match.group(2)), a_module):
            return True
    return False


def _get_field(cls, a_name, a_type, default_kw_only):
    # Return a Field object for this field name and type.  ClassVars and
    # InitVars are also returned, but marked as such (see f._field_type).
    # default_kw_only is the value of kw_only to use if there isn't a field()
    # that defines it.

    # If the default value isn't derived from Field, then it's only a
    # normal default value.  Convert it to a Field().
    default = getattr(cls, a_name, MISSING)
    if isinstance(default, Field):
        f = default
    else:
        if isinstance(default, types.MemberDescriptorType):
            # This is a field in __slots__, so it has no default value.
            default = MISSING
        f = field(default=default)

    # Only at this point do we know the name and the type.  Set them.
    f.name = a_name
    f.type = a_type

    # Assume it's a normal field until proven otherwise.  We're next
    # going to decide if it's a ClassVar or InitVar, everything else
    # is just a normal field.
    f._field_type = _FIELD

    # In addition to checking for actual types here, also check for
    # string annotations.  get_type_hints() won't always work for us
    # (see https://github.com/python/typing/issues/508 for example),
    # plus it's expensive and would require an eval for every string
    # annotation.  So, make a best effort to see if this is a ClassVar
    # or InitVar using regex's and checking that the thing referenced
    # is actually of the correct type.

    # For the complete discussion, see https://bugs.python.org/issue33453

    # If typing has not been imported, then it's impossible for any
    # annotation to be a ClassVar.  So, only look for ClassVar if
    # typing has been imported by any module (not necessarily cls's
    # module).
    typing = sys.modules.get('typing')
    if typing:
        if (_is_classvar(a_type, typing)
            or (isinstance(f.type, str)
                and _is_type(f.type, cls, typing, typing.ClassVar,
                             _is_classvar))):
            f._field_type = _FIELD_CLASSVAR

    # If the type is InitVar, or if it's a matching string annotation,
    # then it's an InitVar.
    if f._field_type is _FIELD:
        # The module we're checking against is the module we're
        # currently in (dataclasses.py).
        dataclasses = sys.modules[__name__]
        if (_is_initvar(a_type, dataclasses)
            or (isinstance(f.type, str)
                and _is_type(f.type, cls, dataclasses, dataclasses.InitVar,
                             _is_initvar))):
            f._field_type = _FIELD_INITVAR

    # Validations for individual fields.  This is delayed until now,
    # instead of in the Field() constructor, since only here do we
    # know the field name, which allows for better error reporting.

    # Special restrictions for ClassVar and InitVar.
    if f._field_type in (_FIELD_CLASSVAR, _FIELD_INITVAR):
        if f.default_factory is not MISSING:
            raise TypeError(f'field {f.name} cannot have a '
                            'default factory')
        # Should I check for other field settings? default_factory
        # seems the most serious to check for.  Maybe add others.  For
        # example, how about init=False (or really,
        # init=<not-the-default-init-value>)?  It makes no sense for
        # ClassVar and InitVar to specify init=<anything>.

    # kw_only validation and assignment.
    if f._field_type in (_FIELD, _FIELD_INITVAR):
        # For real and InitVar fields, if kw_only wasn't specified use the
        # default value.
        if f.kw_only is MISSING:
            f.kw_only = default_kw_only
    else:
        # Make sure kw_only isn't set for ClassVars
        assert f._field_type is _FIELD_CLASSVAR
        if f.kw_only is not MISSING:
            raise TypeError(f'field {f.name} is a ClassVar but specifies '
                            'kw_only')

    # For real fields, disallow mutable defaults.  Use unhashable as a proxy
    # indicator for mutability.  Read the __hash__ attribute from the class,
    # not the instance.
    if f._field_type is _FIELD and f.default.__class__.__hash__ is None:
        raise ValueError(f'mutable default {type(f.default)} for field '
                         f'{f.name} is not allowed: use default_factory')

    return f

def _set_qualname(cls, value):
    # Ensure that the functions returned from _create_fn uses the proper
    # __qualname__ (the class they belong to).
    if isinstance(value, FunctionType):
        value.__qualname__ = f"{cls.__qualname__}.{value.__name__}"
    return value

def _set_new_attribute(cls, name, value):
    # Never overwrites an existing attribute.  Returns True if the
    # attribute already exists.
    if name in cls.__dict__:
        return True
    _set_qualname(cls, value)
    setattr(cls, name, value)
    return False


# Decide if/how we're going to create a hash function.  Key is
# (unsafe_hash, eq, frozen, does-hash-exist).  Value is the action to
# take.  The common case is to do nothing, so instead of providing a
# function that is a no-op, use None to signify that.

def _hash_set_none(cls, fields, globals):
    return None

def _hash_add(cls, fields, globals):
    flds = [f for f in fields if (f.compare if f.hash is None else f.hash)]
    return _set_qualname(cls, _hash_fn(flds, globals))

def _hash_exception(cls, fields, globals):
    # Raise an exception.
    raise TypeError(f'Cannot overwrite attribute __hash__ '
                    f'in class {cls.__name__}')

#
#                +-------------------------------------- unsafe_hash?
#                |      +------------------------------- eq?
#                |      |      +------------------------ frozen?
#                |      |      |      +----------------  has-explicit-hash?
#                |      |      |      |
#                |      |      |      |        +-------  action
#                |      |      |      |        |
#                v      v      v      v        v
_hash_action = {(False, False, False, False): None,
                (False, False, False, True ): None,
                (False, False, True,  False): None,
                (False, False, True,  True ): None,
                (False, True,  False, False): _hash_set_none,
                (False, True,  False, True ): None,
                (False, True,  True,  False): _hash_add,
                (False, True,  True,  True ): None,
                (True,  False, False, False): _hash_add,
                (True,  False, False, True ): _hash_exception,
                (True,  False, True,  False): _hash_add,
                (True,  False, True,  True ): _hash_exception,
                (True,  True,  False, False): _hash_add,
                (True,  True,  False, True ): _hash_exception,
                (True,  True,  True,  False): _hash_add,
                (True,  True,  True,  True ): _hash_exception,
                }
# See https://bugs.python.org/issue32929#msg312829 for an if-statement
# version of this table.


def _process_class(cls, init, repr, eq, order, unsafe_hash, frozen,
                   match_args, kw_only, slots, weakref_slot):
    # Now that dicts retain insertion order, there's no reason to use
    # an ordered dict.  I am leveraging that ordering here, because
    # derived class fields overwrite base class fields, but the order
    # is defined by the base class, which is found first.
    fields = {}

    if cls.__module__ in sys.modules:
        globals = sys.modules[cls.__module__].__dict__
    else:
        # Theoretically this can happen if someone writes
        # a custom string to cls.__module__.  In which case
        # such dataclass won't be fully introspectable
        # (w.r.t. typing.get_type_hints) but will still function
        # correctly.
        globals = {}

    setattr(cls, _PARAMS, _DataclassParams(init, repr, eq, order,
                                           unsafe_hash, frozen))

    # Find our base classes in reverse MRO order, and exclude
    # ourselves.  In reversed order so that more derived classes
    # override earlier field definitions in base classes.  As long as
    # we're iterating over them, see if any are frozen.
    any_frozen_base = False
    has_dataclass_bases = False
    for b in cls.__mro__[-1:0:-1]:
        # Only process classes that have been processed by our
        # decorator.  That is, they have a _FIELDS attribute.
        base_fields = getattr(b, _FIELDS, None)
        if base_fields is not None:
            has_dataclass_bases = True
            for f in base_fields.values():
                fields[f.name] = f
            if getattr(b, _PARAMS).frozen:
                any_frozen_base = True

    # Annotations that are defined in this class (not in base
    # classes).  If __annotations__ isn't present, then this class
    # adds no new annotations.  We use this to compute fields that are
    # added by this class.
    #
    # Fields are found from cls_annotations, which is guaranteed to be
    # ordered.  Default values are from class attributes, if a field
    # has a default.  If the default value is a Field(), then it
    # contains additional info beyond (and possibly including) the
    # actual default value.  Pseudo-fields ClassVars and InitVars are
    # included, despite the fact that they're not real fields.  That's
    # dealt with later.
    cls_annotations = cls.__dict__.get('__annotations__', {})

    # Now find fields in our class.  While doing so, validate some
    # things, and set the default values (as class attributes) where
    # we can.
    cls_fields = []
    # Get a reference to this module for the _is_kw_only() test.
    KW_ONLY_seen = False
    dataclasses = sys.modules[__name__]
    for name, type in cls_annotations.items():
        # See if this is a marker to change the value of kw_only.
        if (_is_kw_only(type, dataclasses)
            or (isinstance(type, str)
                and _is_type(type, cls, dataclasses, dataclasses.KW_ONLY,
                             _is_kw_only))):
            # Switch the default to kw_only=True, and ignore this
            # annotation: it's not a real field.
            if KW_ONLY_seen:
                raise TypeError(f'{name!r} is KW_ONLY, but KW_ONLY '
                                'has already been specified')
            KW_ONLY_seen = True
            kw_only = True
        else:
            # Otherwise it's a field of some type.
            cls_fields.append(_get_field(cls, name, type, kw_only))

    for f in cls_fields:
        fields[f.name] = f

        # If the class attribute (which is the default value for this
        # field) exists and is of type 'Field', replace it with the
        # real default.  This is so that normal class introspection
        # sees a real default value, not a Field.
        if isinstance(getattr(cls, f.name, None), Field):
            if f.default is MISSING:
                # If there's no default, delete the class attribute.
                # This happens if we specify field(repr=False), for
                # example (that is, we specified a field object, but
                # no default value).  Also if we're using a default
                # factory.  The class attribute should not be set at
                # all in the post-processed class.
                delattr(cls, f.name)
            else:
                setattr(cls, f.name, f.default)

    # Do we have any Field members that don't also have annotations?
    for name, value in cls.__dict__.items():
        if isinstance(value, Field) and not name in cls_annotations:
            raise TypeError(f'{name!r} is a field but has no type annotation')

    # Check rules that apply if we are derived from any dataclasses.
    if has_dataclass_bases:
        # Raise an exception if any of our bases are frozen, but we're not.
        if any_frozen_base and not frozen:
            raise TypeError('cannot inherit non-frozen dataclass from a '
                            'frozen one')

        # Raise an exception if we're frozen, but none of our bases are.
        if not any_frozen_base and frozen:
            raise TypeError('cannot inherit frozen dataclass from a '
                            'non-frozen one')

    # Remember all of the fields on our class (including bases).  This
    # also marks this class as being a dataclass.
    setattr(cls, _FIELDS, fields)

    # Was this class defined with an explicit __hash__?  Note that if
    # __eq__ is defined in this class, then python will automatically
    # set __hash__ to None.  This is a heuristic, as it's possible
    # that such a __hash__ == None was not auto-generated, but it
    # close enough.
    class_hash = cls.__dict__.get('__hash__', MISSING)
    has_explicit_hash = not (class_hash is MISSING or
                             (class_hash is None and '__eq__' in cls.__dict__))

    # If we're generating ordering methods, we must be generating the
    # eq methods.
    if order and not eq:
        raise ValueError('eq must be true if order is true')

    # Include InitVars and regular fields (so, not ClassVars).  This is
    # initialized here, outside of the "if init:" test, because std_init_fields
    # is used with match_args, below.
    all_init_fields = [f for f in fields.values()
                       if f._field_type in (_FIELD, _FIELD_INITVAR)]
    (std_init_fields,
     kw_only_init_fields) = _fields_in_init_order(all_init_fields)

    if init:
        # Does this class have a post-init function?
        has_post_init = hasattr(cls, _POST_INIT_NAME)

        _set_new_attribute(cls, '__init__',
                           _init_fn(all_init_fields,
                                    std_init_fields,
                                    kw_only_init_fields,
                                    frozen,
                                    has_post_init,
                                    # The name to use for the "self"
                                    # param in __init__.  Use "self"
                                    # if possible.
                                    '__dataclass_self__' if 'self' in fields
                                            else 'self',
                                    globals,
                                    slots,
                          ))

    # Get the fields as a list, and include only real fields.  This is
    # used in all of the following methods.
    field_list = [f for f in fields.values() if f._field_type is _FIELD]

    if repr:
        flds = [f for f in field_list if f.repr]
        _set_new_attribute(cls, '__repr__', _repr_fn(flds, globals))

    if eq:
        # Create __eq__ method.  There's no need for a __ne__ method,
        # since python will call __eq__ and negate it.
        flds = [f for f in field_list if f.compare]
        self_tuple = _tuple_str('self', flds)
        other_tuple = _tuple_str('other', flds)
        _set_new_attribute(cls, '__eq__',
                           _cmp_fn('__eq__', '==',
                                   self_tuple, other_tuple,
                                   globals=globals))

    if order:
        # Create and set the ordering methods.
        flds = [f for f in field_list if f.compare]
        self_tuple = _tuple_str('self', flds)
        other_tuple = _tuple_str('other', flds)
        for name, op in [('__lt__', '<'),
                         ('__le__', '<='),
                         ('__gt__', '>'),
                         ('__ge__', '>='),
                         ]:
            if _set_new_attribute(cls, name,
                                  _cmp_fn(name, op, self_tuple, other_tuple,
                                          globals=globals)):
                raise TypeError(f'Cannot overwrite attribute {name} '
                                f'in class {cls.__name__}. Consider using '
                                'functools.total_ordering')

    if frozen:
        for fn in _frozen_get_del_attr(cls, field_list, globals):
            if _set_new_attribute(cls, fn.__name__, fn):
                raise TypeError(f'Cannot overwrite attribute {fn.__name__} '
                                f'in class {cls.__name__}')

    # Decide if/how we're going to create a hash function.
    hash_action = _hash_action[bool(unsafe_hash),
                               bool(eq),
                               bool(frozen),
                               has_explicit_hash]
    if hash_action:
        # No need to call _set_new_attribute here, since by the time
        # we're here the overwriting is unconditional.
        cls.__hash__ = hash_action(cls, field_list, globals)

    if not getattr(cls, '__doc__'):
        # Create a class doc-string.
        try:
            # In some cases fetching a signature is not possible.
            # But, we surely should not fail in this case.
            text_sig = str(inspect.signature(cls)).replace(' -> None', '')
        except (TypeError, ValueError):
            text_sig = ''
        cls.__doc__ = (cls.__name__ + text_sig)

    if match_args:
        # I could probably compute this once
        _set_new_attribute(cls, '__match_args__',
                           tuple(f.name for f in std_init_fields))

    # It's an error to specify weakref_slot if slots is False.
    if weakref_slot and not slots:
        raise TypeError('weakref_slot is True but slots is False')
    if slots:
        cls = _add_slots(cls, frozen, weakref_slot)

    abc.update_abstractmethods(cls)

    return cls


# _dataclass_getstate and _dataclass_setstate are needed for pickling frozen
# classes with slots.  These could be slightly more performant if we generated
# the code instead of iterating over fields.  But that can be a project for
# another day, if performance becomes an issue.
def _dataclass_getstate(self):
    return [getattr(self, f.name) for f in fields(self)]


def _dataclass_setstate(self, state):
    for field, value in zip(fields(self), state):
        # use setattr because dataclass may be frozen
        object.__setattr__(self, field.name, value)


def _get_slots(cls):
    match cls.__dict__.get('__slots__'):
        case None:
            return
        case str(slot):
            yield slot
        # Slots may be any iterable, but we cannot handle an iterator
        # because it will already be (partially) consumed.
        case iterable if not hasattr(iterable, '__next__'):
            yield from iterable
        case _:
            raise TypeError(f"Slots of '{cls.__name__}' cannot be determined")


def _add_slots(cls, is_frozen, weakref_slot):
    # Need to create a new class, since we can't set __slots__
    #  after a class has been created.

    # Make sure __slots__ isn't already set.
    if '__slots__' in cls.__dict__:
        raise TypeError(f'{cls.__name__} already specifies __slots__')

    # Create a new dict for our new class.
    cls_dict = dict(cls.__dict__)
    field_names = tuple(f.name for f in fields(cls))
    # Make sure slots don't overlap with those in base classes.
    inherited_slots = set(
        itertools.chain.from_iterable(map(_get_slots, cls.__mro__[1:-1]))
    )
    # The slots for our class.  Remove slots from our base classes.  Add
    # '__weakref__' if weakref_slot was given, unless it is already present.
    cls_dict["__slots__"] = tuple(
        itertools.filterfalse(
            inherited_slots.__contains__,
            itertools.chain(
                # gh-93521: '__weakref__' also needs to be filtered out if
                # already present in inherited_slots
                field_names, ('__weakref__',) if weakref_slot else ()
            )
        ),
    )

    for field_name in field_names:
        # Remove our attributes, if present. They'll still be
        #  available in _MARKER.
        cls_dict.pop(field_name, None)

    # Remove __dict__ itself.
    cls_dict.pop('__dict__', None)

    # Clear existing `__weakref__` descriptor, it belongs to a previous type:
    cls_dict.pop('__weakref__', None)  # gh-102069

    # And finally create the class.
    qualname = getattr(cls, '__qualname__', None)
    cls = type(cls)(cls.__name__, cls.__bases__, cls_dict)
    if qualname is not None:
        cls.__qualname__ = qualname

    if is_frozen:
        # Need this for pickling frozen classes with slots.
        if '__getstate__' not in cls_dict:
            cls.__getstate__ = _dataclass_getstate
        if '__setstate__' not in cls_dict:
            cls.__setstate__ = _dataclass_setstate

    return cls


def dataclass(cls=None, /, *, init=True, repr=True, eq=True, order=False,
              unsafe_hash=False, frozen=False, match_args=True,
              kw_only=False, slots=False, weakref_slot=False):
    """Add dunder methods based on the fields defined in the class.

    Examines PEP 526 __annotations__ to determine fields.

    If init is true, an __init__() method is added to the class. If repr
    is true, a __repr__() method is added. If order is true, rich
    comparison dunder methods are added. If unsafe_hash is true, a
    __hash__() method is added. If frozen is true, fields may not be
    assigned to after instance creation. If match_args is true, the
    __match_args__ tuple is added. If kw_only is true, then by default
    all fields are keyword-only. If slots is true, a new class with a
    __slots__ attribute is returned.
    """

    def wrap(cls):
        return _process_class(cls, init, repr, eq, order, unsafe_hash,
                              frozen, match_args, kw_only, slots,
                              weakref_slot)

    # See if we're being called as @dataclass or @dataclass().
    if cls is None:
        # We're called with parens.
        return wrap

    # We're called as @dataclass without parens.
    return wrap(cls)


def fields(class_or_instance):
    """Return a tuple describing the fields of this dataclass.

    Accepts a dataclass or an instance of one. Tuple elements are of
    type Field.
    """

    # Might it be worth caching this, per class?
    try:
        fields = getattr(class_or_instance, _FIELDS)
    except AttributeError:
        raise TypeError('must be called with a dataclass type or instance') from None

    # Exclude pseudo-fields.  Note that fields is sorted by insertion
    # order, so the order of the tuple is as the fields were defined.
    return tuple(f for f in fields.values() if f._field_type is _FIELD)


def _is_dataclass_instance(obj):
    """Returns True if obj is an instance of a dataclass."""
    return hasattr(type(obj), _FIELDS)


def is_dataclass(obj):
    """Returns True if obj is a dataclass or an instance of a
    dataclass."""
    cls = obj if isinstance(obj, type) else type(obj)
    return hasattr(cls, _FIELDS)


def asdict(obj, *, dict_factory=dict):
    """Return the fields of a dataclass instance as a new dictionary mapping
    field names to field values.

    Example usage::

      @dataclass
      class C:
          x: int
          y: int

      c = C(1, 2)
      assert asdict(c) == {'x': 1, 'y': 2}

    If given, 'dict_factory' will be used instead of built-in dict.
    The function applies recursively to field values that are
    dataclass instances. This will also look into built-in containers:
    tuples, lists, and dicts.
    """
    if not _is_dataclass_instance(obj):
        raise TypeError("asdict() should be called on dataclass instances")
    return _asdict_inner(obj, dict_factory)


def _asdict_inner(obj, dict_factory):
    if _is_dataclass_instance(obj):
        result = []
        for f in fields(obj):
            value = _asdict_inner(getattr(obj, f.name), dict_factory)
            result.append((f.name, value))
        return dict_factory(result)
    elif isinstance(obj, tuple) and hasattr(obj, '_fields'):
        # obj is a namedtuple.  Recurse into it, but the returned
        # object is another namedtuple of the same type.  This is
        # similar to how other list- or tuple-derived classes are
        # treated (see below), but we just need to create them
        # differently because a namedtuple's __init__ needs to be
        # called differently (see bpo-34363).

        # I'm not using namedtuple's _asdict()
        # method, because:
        # - it does not recurse in to the namedtuple fields and
        #   convert them to dicts (using dict_factory).
        # - I don't actually want to return a dict here.  The main
        #   use case here is json.dumps, and it handles converting
        #   namedtuples to lists.  Admittedly we're losing some
        #   information here when we produce a json list instead of a
        #   dict.  Note that if we returned dicts here instead of
        #   namedtuples, we could no longer call asdict() on a data
        #   structure where a namedtuple was used as a dict key.

        return type(obj)(*[_asdict_inner(v, dict_factory) for v in obj])
    elif isinstance(obj, (list, tuple)):
        # Assume we can create an object of this type by passing in a
        # generator (which is not true for namedtuples, handled
        # above).
        return type(obj)(_asdict_inner(v, dict_factory) for v in obj)
    elif isinstance(obj, dict):
        return type(obj)((_asdict_inner(k, dict_factory),
                          _asdict_inner(v, dict_factory))
                         for k, v in obj.items())
    else:
        return copy.deepcopy(obj)


def astuple(obj, *, tuple_factory=tuple):
    """Return the fields of a dataclass instance as a new tuple of field values.

    Example usage::

      @dataclass
      class C:
          x: int
          y: int

      c = C(1, 2)
      assert astuple(c) == (1, 2)

    If given, 'tuple_factory' will be used instead of built-in tuple.
    The function applies recursively to field values that are
    dataclass instances. This will also look into built-in containers:
    tuples, lists, and dicts.
    """

    if not _is_dataclass_instance(obj):
        raise TypeError("astuple() should be called on dataclass instances")
    return _astuple_inner(obj, tuple_factory)


def _astuple_inner(obj, tuple_factory):
    if _is_dataclass_instance(obj):
        result = []
        for f in fields(obj):
            value = _astuple_inner(getattr(obj, f.name), tuple_factory)
            result.append(value)
        return tuple_factory(result)
    elif isinstance(obj, tuple) and hasattr(obj, '_fields'):
        # obj is a namedtuple.  Recurse into it, but the returned
        # object is another namedtuple of the same type.  This is
        # similar to how other list- or tuple-derived classes are
        # treated (see below), but we just need to create them
        # differently because a namedtuple's __init__ needs to be
        # called differently (see bpo-34363).
        return type(obj)(*[_astuple_inner(v, tuple_factory) for v in obj])
    elif isinstance(obj, (list, tuple)):
        # Assume we can create an object of this type by passing in a
        # generator (which is not true for namedtuples, handled
        # above).
        return type(obj)(_astuple_inner(v, tuple_factory) for v in obj)
    elif isinstance(obj, dict):
        return type(obj)((_astuple_inner(k, tuple_factory), _astuple_inner(v, tuple_factory))
                          for k, v in obj.items())
    else:
        return copy.deepcopy(obj)


def make_dataclass(cls_name, fields, *, bases=(), namespace=None, init=True,
                   repr=True, eq=True, order=False, unsafe_hash=False,
                   frozen=False, match_args=True, kw_only=False, slots=False,
                   weakref_slot=False):
    """Return a new dynamically created dataclass.

    The dataclass name will be 'cls_name'.  'fields' is an iterable
    of either (name), (name, type) or (name, type, Field) objects. If type is
    omitted, use the string 'typing.Any'.  Field objects are created by
    the equivalent of calling 'field(name, type [, Field-info])'.::

      C = make_dataclass('C', ['x', ('y', int), ('z', int, field(init=False))], bases=(Base,))

    is equivalent to::

      @dataclass
      class C(Base):
          x: 'typing.Any'
          y: int
          z: int = field(init=False)

    For the bases and namespace parameters, see the builtin type() function.

    The parameters init, repr, eq, order, unsafe_hash, and frozen are passed to
    dataclass().
    """

    if namespace is None:
        namespace = {}

    # While we're looking through the field names, validate that they
    # are identifiers, are not keywords, and not duplicates.
    seen = set()
    annotations = {}
    defaults = {}
    for item in fields:
        if isinstance(item, str):
            name = item
            tp = 'typing.Any'
        elif len(item) == 2:
            name, tp, = item
        elif len(item) == 3:
            name, tp, spec = item
            defaults[name] = spec
        else:
            raise TypeError(f'Invalid field: {item!r}')

        if not isinstance(name, str) or not name.isidentifier():
            raise TypeError(f'Field names must be valid identifiers: {name!r}')
        if keyword.iskeyword(name):
            raise TypeError(f'Field names must not be keywords: {name!r}')
        if name in seen:
            raise TypeError(f'Field name duplicated: {name!r}')

        seen.add(name)
        annotations[name] = tp

    # Update 'ns' with the user-supplied namespace plus our calculated values.
    def exec_body_callback(ns):
        ns.update(namespace)
        ns.update(defaults)
        ns['__annotations__'] = annotations

    # We use `types.new_class()` instead of simply `type()` to allow dynamic creation
    # of generic dataclasses.
    cls = types.new_class(cls_name, bases, {}, exec_body_callback)

    # Apply the normal decorator.
    return dataclass(cls, init=init, repr=repr, eq=eq, order=order,
                     unsafe_hash=unsafe_hash, frozen=frozen,
                     match_args=match_args, kw_only=kw_only, slots=slots,
                     weakref_slot=weakref_slot)


def replace(obj, /, **changes):
    """Return a new object replacing specified fields with new values.

    This is especially useful for frozen classes.  Example usage::

      @dataclass(frozen=True)
      class C:
          x: int
          y: int

      c = C(1, 2)
      c1 = replace(c, x=3)
      assert c1.x == 3 and c1.y == 2
    """

    # We're going to mutate 'changes', but that's okay because it's a
    # new dict, even if called with 'replace(obj, **my_changes)'.

    if not _is_dataclass_instance(obj):
        raise TypeError("replace() should be called on dataclass instances")

    # It's an error to have init=False fields in 'changes'.
    # If a field is not in 'changes', read its value from the provided obj.

    for f in getattr(obj, _FIELDS).values():
        # Only consider normal fields or InitVars.
        if f._field_type is _FIELD_CLASSVAR:
            continue

        if not f.init:
            # Error if this field is specified in changes.
            if f.name in changes:
                raise ValueError(f'field {f.name} is declared with '
                                 'init=False, it cannot be specified with '
                                 'replace()')
            continue

        if f.name not in changes:
            if f._field_type is _FIELD_INITVAR and f.default is MISSING:
                raise ValueError(f"InitVar {f.name!r} "
                                 'must be specified with replace()')
            changes[f.name] = getattr(obj, f.name)

    # Create the new object, which calls __init__() and
    # __post_init__() (if defined), using all of the init fields we've
    # added and/or left in 'changes'.  If there are values supplied in
    # changes that aren't fields, this will correctly raise a
    # TypeError.
    return obj.__class__(**changes)
