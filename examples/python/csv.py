
"""
csv.py - read/write/investigate CSV files
"""

import re
from _csv import Error, __version__, writer, reader, register_dialect, \
                 unregister_dialect, get_dialect, list_dialects, \
                 field_size_limit, \
                 QUOTE_MINIMAL, QUOTE_ALL, QUOTE_NONNUMERIC, QUOTE_NONE, \
                 __doc__
from _csv import Dialect as _Dialect

from io import StringIO

__all__ = ["QUOTE_MINIMAL", "QUOTE_ALL", "QUOTE_NONNUMERIC", "QUOTE_NONE",
           "Error", "Dialect", "__doc__", "excel", "excel_tab",
           "field_size_limit", "reader", "writer",
           "register_dialect", "get_dialect", "list_dialects", "Sniffer",
           "unregister_dialect", "__version__", "DictReader", "DictWriter",
           "unix_dialect"]

class Dialect:
    """Describe a CSV dialect.

    This must be subclassed (see csv.excel).  Valid attributes are:
    delimiter, quotechar, escapechar, doublequote, skipinitialspace,
    lineterminator, quoting.

    """
    _name = ""
    _valid = False
    # placeholders
    delimiter = None
    quotechar = None
    escapechar = None
    doublequote = None
    skipinitialspace = None
    lineterminator = None
    quoting = None

    def __init__(self):
        if self.__class__ != Dialect:
            self._valid = True
        self._validate()

    def _validate(self):
        try:
            _Dialect(self)
        except TypeError as e:
            # We do this for compatibility with py2.3
            raise Error(str(e))

class excel(Dialect):
    """Describe the usual properties of Excel-generated CSV files."""
    delimiter = ','
    quotechar = '"'
    doublequote = True
    skipinitialspace = False
    lineterminator = '\r\n'
    quoting = QUOTE_MINIMAL
register_dialect("excel", excel)

class excel_tab(excel):
    """Describe the usual properties of Excel-generated TAB-delimited files."""
    delimiter = '\t'
register_dialect("excel-tab", excel_tab)

class unix_dialect(Dialect):
    """Describe the usual properties of Unix-generated CSV files."""
    delimiter = ','
    quotechar = '"'
    doublequote = True
    skipinitialspace = False
    lineterminator = '\n'
    quoting = QUOTE_ALL
register_dialect("unix", unix_dialect)


class DictReader:
    def __init__(self, f, fieldnames=None, restkey=None, restval=None,
                 dialect="excel", *args, **kwds):
        self._fieldnames = fieldnames   # list of keys for the dict
        self.restkey = restkey          # key to catch long rows
        self.restval = restval          # default value for short rows
        self.reader = reader(f, dialect, *args, **kwds)
        self.dialect = dialect
        self.line_num = 0

    def __iter__(self):
        return self

    @property
    def fieldnames(self):
        if self._fieldnames is None:
            try:
                self._fieldnames = next(self.reader)
            except StopIteration:
                pass
        self.line_num = self.reader.line_num
        return self._fieldnames

    @fieldnames.setter
    def fieldnames(self, value):
        self._fieldnames = value

    def __next__(self):
        if self.line_num == 0:
            # Used only for its side effect.
            self.fieldnames
        row = next(self.reader)
        self.line_num = self.reader.line_num

        # unlike the basic reader, we prefer not to return blanks,
        # because we will typically wind up with a dict full of None
        # values
        while row == []:
            row = next(self.reader)
        d = dict(zip(self.fieldnames, row))
        lf = len(self.fieldnames)
        lr = len(row)
        if lf < lr:
            d[self.restkey] = row[lf:]
        elif lf > lr:
            for key in self.fieldnames[lr:]:
                d[key] = self.restval
        return d


class DictWriter:
    def __init__(self, f, fieldnames, restval="", extrasaction="raise",
                 dialect="excel", *args, **kwds):
        self.fieldnames = fieldnames    # list of keys for the dict
        self.restval = restval          # for writing short dicts
        if extrasaction.lower() not in ("raise", "ignore"):
            raise ValueError("extrasaction (%s) must be 'raise' or 'ignore'"
                             % extrasaction)
        self.extrasaction = extrasaction
        self.writer = writer(f, dialect, *args, **kwds)

    def writeheader(self):
        header = dict(zip(self.fieldnames, self.fieldnames))
        return self.writerow(header)

    def _dict_to_list(self, rowdict):
        if self.extrasaction == "raise":
            wrong_fields = rowdict.keys() - self.fieldnames
            if wrong_fields:
                raise ValueError("dict contains fields not in fieldnames: "
                                 + ", ".join([repr(x) for x in wrong_fields]))
        return (rowdict.get(key, self.restval) for key in self.fieldnames)

    def writerow(self, rowdict):
        return self.writer.writerow(self._dict_to_list(rowdict))

    def writerows(self, rowdicts):
        return self.writer.writerows(map(self._dict_to_list, rowdicts))

# Guard Sniffer's type checking against builds that exclude complex()
try:
    complex
except NameError:
    complex = float

class Sniffer:
    '''
    "Sniffs" the format of a CSV file (i.e. delimiter, quotechar)
    Returns a Dialect object.
    '''
    def __init__(self):
        # in case there is more than one possible delimiter
        self.preferred = [',', '\t', ';', ' ', ':']


    def sniff(self, sample, delimiters=None):
        """
        Returns a dialect (or None) corresponding to the sample
        """

        quotechar, doublequote, delimiter, skipinitialspace = \
                   self._guess_quote_and_delimiter(sample, delimiters)
        if not delimiter:
            delimiter, skipinitialspace = self._guess_delimiter(sample,
                                                                delimiters)

        if not delimiter:
            raise Error("Could not determine delimiter")

        class dialect(Dialect):
            _name = "sniffed"
            lineterminator = '\r\n'
            quoting = QUOTE_MINIMAL
            # escapechar = ''

        dialect.doublequote = doublequote
        dialect.delimiter = delimiter
        # _csv.reader won't accept a quotechar of ''
        dialect.quotechar = quotechar or '"'
        dialect.skipinitialspace = skipinitialspace

        return dialect


    def _guess_quote_and_delimiter(self, data, delimiters):
        """
        Looks for text enclosed between two identical quotes
        (the probable quotechar) which are preceded and followed
        by the same character (the probable delimiter).
        For example:
                         ,'some text',
        The quote with the most wins, same with the delimiter.
        If there is no quotechar the delimiter can't be determined
        this way.
        """

        matches = []
        for restr in (r'(?P<delim>[^\w\n"\'])(?P<space> ?)(?P<quote>["\']).*?(?P=quote)(?P=delim)', # ,".*?",
                      r'(?:^|\n)(?P<quote>["\']).*?(?P=quote)(?P<delim>[^\w\n"\'])(?P<space> ?)',   #  ".*?",
                      r'(?P<delim>[^\w\n"\'])(?P<space> ?)(?P<quote>["\']).*?(?P=quote)(?:$|\n)',   # ,".*?"
                      r'(?:^|\n)(?P<quote>["\']).*?(?P=quote)(?:$|\n)'):                            #  ".*?" (no delim, no space)
            regexp = re.compile(restr, re.DOTALL | re.MULTILINE)
            matches = regexp.findall(data)
            if matches:
                break

        if not matches:
            # (quotechar, doublequote, delimiter, skipinitialspace)
            return ('', False, None, 0)
        quotes = {}
        delims = {}
        spaces = 0
        groupindex = regexp.groupindex
        for m in matches:
            n = groupindex['quote'] - 1
            key = m[n]
            if key:
                quotes[key] = quotes.get(key, 0) + 1
            try:
                n = groupindex['delim'] - 1
                key = m[n]
            except KeyError:
                continue
            if key and (delimiters is None or key in delimiters):
                delims[key] = delims.get(key, 0) + 1
            try:
                n = groupindex['space'] - 1
            except KeyError:
                continue
            if m[n]:
                spaces += 1

        quotechar = max(quotes, key=quotes.get)

        if delims:
            delim = max(delims, key=delims.get)
            skipinitialspace = delims[delim] == spaces
            if delim == '\n': # most likely a file with a single column
                delim = ''
        else:
            # there is *no* delimiter, it's a single column of quoted data
            delim = ''
            skipinitialspace = 0

        # if we see an extra quote between delimiters, we've got a
        # double quoted format
        dq_regexp = re.compile(
                               r"((%(delim)s)|^)\W*%(quote)s[^%(delim)s\n]*%(quote)s[^%(delim)s\n]*%(quote)s\W*((%(delim)s)|$)" % \
                               {'delim':re.escape(delim), 'quote':quotechar}, re.MULTILINE)



        if dq_regexp.search(data):
            doublequote = True
        else:
            doublequote = False

        return (quotechar, doublequote, delim, skipinitialspace)


    def _guess_delimiter(self, data, delimiters):
        """
        The delimiter /should/ occur the same number of times on
        each row. However, due to malformed data, it may not. We don't want
        an all or nothing approach, so we allow for small variations in this
        number.
          1) build a table of the frequency of each character on every line.
          2) build a table of frequencies of this frequency (meta-frequency?),
             e.g.  'x occurred 5 times in 10 rows, 6 times in 1000 rows,
             7 times in 2 rows'
          3) use the mode of the meta-frequency to determine the /expected/
             frequency for that character
          4) find out how often the character actually meets that goal
          5) the character that best meets its goal is the delimiter
        For performance reasons, the data is evaluated in chunks, so it can
        try and evaluate the smallest portion of the data possible, evaluating
        additional chunks as necessary.
        """

        data = list(filter(None, data.split('\n')))

        ascii = [chr(c) for c in range(127)] # 7-bit ASCII

        # build frequency tables
        chunkLength = min(10, len(data))
        iteration = 0
        charFrequency = {}
        modes = {}
        delims = {}
        start, end = 0, chunkLength
        while start < len(data):
            iteration += 1
            for line in data[start:end]:
                for char in ascii:
                    metaFrequency = charFrequency.get(char, {})
                    # must count even if frequency is 0
                    freq = line.count(char)
                    # value is the mode
                    metaFrequency[freq] = metaFrequency.get(freq, 0) + 1
                    charFrequency[char] = metaFrequency

            for char in charFrequency.keys():
                items = list(charFrequency[char].items())
                if len(items) == 1 and items[0][0] == 0:
                    continue
                # get the mode of the frequencies
                if len(items) > 1:
                    modes[char] = max(items, key=lambda x: x[1])
                    # adjust the mode - subtract the sum of all
                    # other frequencies
                    items.remove(modes[char])
                    modes[char] = (modes[char][0], modes[char][1]
                                   - sum(item[1] for item in items))
                else:
                    modes[char] = items[0]

            # build a list of possible delimiters
            modeList = modes.items()
            total = float(min(chunkLength * iteration, len(data)))
            # (rows of consistent data) / (number of rows) = 100%
            consistency = 1.0
            # minimum consistency threshold
            threshold = 0.9
            while len(delims) == 0 and consistency >= threshold:
                for k, v in modeList:
                    if v[0] > 0 and v[1] > 0:
                        if ((v[1]/total) >= consistency and
                            (delimiters is None or k in delimiters)):
                            delims[k] = v
                consistency -= 0.01

            if len(delims) == 1:
                delim = list(delims.keys())[0]
                skipinitialspace = (data[0].count(delim) ==
                                    data[0].count("%c " % delim))
                return (delim, skipinitialspace)

            # analyze another chunkLength lines
            start = end
            end += chunkLength

        if not delims:
            return ('', 0)

        # if there's more than one, fall back to a 'preferred' list
        if len(delims) > 1:
            for d in self.preferred:
                if d in delims.keys():
                    skipinitialspace = (data[0].count(d) ==
                                        data[0].count("%c " % d))
                    return (d, skipinitialspace)

        # nothing else indicates a preference, pick the character that
        # dominates(?)
        items = [(v,k) for (k,v) in delims.items()]
        items.sort()
        delim = items[-1][1]

        skipinitialspace = (data[0].count(delim) ==
                            data[0].count("%c " % delim))
        return (delim, skipinitialspace)


    def has_header(self, sample):
        # Creates a dictionary of types of data in each column. If any
        # column is of a single type (say, integers), *except* for the first
        # row, then the first row is presumed to be labels. If the type
        # can't be determined, it is assumed to be a string in which case
        # the length of the string is the determining factor: if all of the
        # rows except for the first are the same length, it's a header.
        # Finally, a 'vote' is taken at the end for each column, adding or
        # subtracting from the likelihood of the first row being a header.

        rdr = reader(StringIO(sample), self.sniff(sample))

        header = next(rdr) # assume first row is header

        columns = len(header)
        columnTypes = {}
        for i in range(columns): columnTypes[i] = None

        checked = 0
        for row in rdr:
            # arbitrary number of rows to check, to keep it sane
            if checked > 20:
                break
            checked += 1

            if len(row) != columns:
                continue # skip rows that have irregular number of columns

            for col in list(columnTypes.keys()):
                thisType = complex
                try:
                    thisType(row[col])
                except (ValueError, OverflowError):
                    # fallback to length of string
                    thisType = len(row[col])

                if thisType != columnTypes[col]:
                    if columnTypes[col] is None: # add new column type
                        columnTypes[col] = thisType
                    else:
                        # type is inconsistent, remove column from
                        # consideration
                        del columnTypes[col]

        # finally, compare results against first row and "vote"
        # on whether it's a header
        hasHeader = 0
        for col, colType in columnTypes.items():
            if type(colType) == type(0): # it's a length
                if len(header[col]) != colType:
                    hasHeader += 1
                else:
                    hasHeader -= 1
            else: # attempt typecast
                try:
                    colType(header[col])
                except (ValueError, TypeError):
                    hasHeader += 1
                else:
                    hasHeader -= 1

        return hasHeader > 0
