# -*- coding: latin-1 -*-
"""A tiny module whose encoding declaration matters.

The docstring below this line and the WELCOME constant contain bytes
that are *not* valid UTF-8, so decoding this file correctly requires
honoring the PEP 263 coding declaration above.  Café, straße.
"""

WELCOME = "Vær så god - welcome"


def greeting(name):
    return WELCOME + ", " + name
