"""Selectors module.

This module allows high-level and efficient I/O multiplexing, built upon the
`select` module primitives.
"""


from abc import ABCMeta, abstractmethod
from collections import namedtuple
from collections.abc import Mapping
import math
import select
import sys


# generic events, that must be mapped to implementation-specific ones
EVENT_READ = (1 << 0)
EVENT_WRITE = (1 << 1)


def _fileobj_to_fd(fileobj):
    """Return a file descriptor from a file object.

    Parameters:
    fileobj -- file object or file descriptor

    Returns:
    corresponding file descriptor

    Raises:
    ValueError if the object is invalid
    """
    if isinstance(fileobj, int):
        fd = fileobj
    else:
        try:
            fd = int(fileobj.fileno())
        except (AttributeError, TypeError, ValueError):
            raise ValueError("Invalid file object: "
                             "{!r}".format(fileobj)) from None
    if fd < 0:
        raise ValueError("Invalid file descriptor: {}".format(fd))
    return fd


SelectorKey = namedtuple('SelectorKey', ['fileobj', 'fd', 'events', 'data'])

SelectorKey.__doc__ = """SelectorKey(fileobj, fd, events, data)

    Object used to associate a file object to its backing
    file descriptor, selected event mask, and attached data.
"""
SelectorKey.fileobj.__doc__ = 'File object registered.'
SelectorKey.fd.__doc__ = 'Underlying file descriptor.'
SelectorKey.events.__doc__ = 'Events that must be waited for on this file object.'
SelectorKey.data.__doc__ = ('''Optional opaque data associated to this file object.
For example, this could be used to store a per-client session ID.''')


class _SelectorMapping(Mapping):
    """Mapping of file objects to selector keys."""

    def __init__(self, selector):
        self._selector = selector

    def __len__(self):
        return len(self._selector._fd_to_key)

    def __getitem__(self, fileobj):
        try:
            fd = self._selector._fileobj_lookup(fileobj)
            return self._selector._fd_to_key[fd]
        except KeyError:
            raise KeyError("{!r} is not registered".format(fileobj)) from None

    def __iter__(self):
        return iter(self._selector._fd_to_key)


class BaseSelector(metaclass=ABCMeta):
    """Selector abstract base class.

    A selector supports registering file objects to be monitored for specific
    I/O events.

    A file object is a file descriptor or any object with a `fileno()` method.
    An arbitrary object can be attached to the file object, which can be used
    for example to store context information, a callback, etc.

    A selector can use various implementations (select(), poll(), epoll()...)
    depending on the platform. The default `Selector` class uses the most
    efficient implementation on the current platform.
    """

    @abstractmethod
    def register(self, fileobj, events, data=None):
        """Register a file object.

        Parameters:
        fileobj -- file object or file descriptor
        events  -- events to monitor (bitwise mask of EVENT_READ|EVENT_WRITE)
        data    -- attached data

        Returns:
        SelectorKey instance

        Raises:
        ValueError if events is invalid
        KeyError if fileobj is already registered
        OSError if fileobj is closed or otherwise is unacceptable to
                the underlying system call (if a system call is made)

        Note:
        OSError may or may not be raised
        """
        raise NotImplementedError

    @abstractmethod
    def unregister(self, fileobj):
        """Unregister a file object.

        Parameters:
        fileobj -- file object or file descriptor

        Returns:
        SelectorKey instance

        Raises:
        KeyError if fileobj is not registered

        Note:
        If fileobj is registered but has since been closed this does
        *not* raise OSError (even if the wrapped syscall does)
        """
        raise NotImplementedError

    def modify(self, fileobj, events, data=None):
        """Change a registered file object monitored events or attached data.

        Parameters:
        fileobj -- file object or file descriptor
        events  -- events to monitor (bitwise mask of EVENT_READ|EVENT_WRITE)
        data    -- attached data

        Returns:
        SelectorKey instance

        Raises:
        Anything that unregister() or register() raises
        """
        self.unregister(fileobj)
        return self.register(fileobj, events, data)

    @abstractmethod
    def select(self, timeout=None):
        """Perform the actual selection, until some monitored file objects are
        ready or a timeout expires.

        Parameters:
        timeout -- if timeout > 0, this specifies the maximum wait time, in
                   seconds
                   if timeout <= 0, the select() call won't block, and will
                   report the currently ready file objects
                   if timeout is None, select() will block until a monitored
                   file object becomes ready

        Returns:
        list of (key, events) for ready file objects
        `events` is a bitwise mask of EVENT_READ|EVENT_WRITE
        """
        raise NotImplementedError

    def close(self):
        """Close the selector.

        This must be called to make sure that any underlying resource is freed.
        """
        pass

    def get_key(self, fileobj):
        """Return the key associated to a registered file object.

        Returns:
        SelectorKey for this file object
        """
        mapping = self.get_map()
        if mapping is None:
            raise RuntimeError('Selector is closed')
        try:
            return mapping[fileobj]
        except KeyError:
            raise KeyError("{!r} is not registered".format(fileobj)) from None

    @abstractmethod
    def get_map(self):
        """Return a mapping of file objects to selector keys."""
        raise NotImplementedError

    def __enter__(self):
        return self

    def __exit__(self, *args):
        self.close()


class _BaseSelectorImpl(BaseSelector):
    """Base selector implementation."""

    def __init__(self):
        # this maps file descriptors to keys
        self._fd_to_key = {}
        # read-only mapping returned by get_map()
        self._map = _SelectorMapping(self)

    def _fileobj_lookup(self, fileobj):
        """Return a file descriptor from a file object.

        This wraps _fileobj_to_fd() to do an exhaustive search in case
        the object is invalid but we still have it in our map.  This
        is used by unregister() so we can unregister an object that
        was previously registered even if it is closed.  It is also
        used by _SelectorMapping.
        """
        try:
            return _fileobj_to_fd(fileobj)
        except ValueError:
            # Do an exhaustive search.
            for key in self._fd_to_key.values():
                if key.fileobj is fileobj:
                    return key.fd
            # Raise ValueError after all.
            raise

    def register(self, fileobj, events, data=None):
        if (not events) or (events & ~(EVENT_READ | EVENT_WRITE)):
            raise ValueError("Invalid events: {!r}".format(events))

        key = SelectorKey(fileobj, self._fileobj_lookup(fileobj), events, data)

        if key.fd in self._fd_to_key:
            raise KeyError("{!r} (FD {}) is already registered"
                           .format(fileobj, key.fd))

        self._fd_to_key[key.fd] = key
        return key

    def unregister(self, fileobj):
        try:
            key = self._fd_to_key.pop(self._fileobj_lookup(fileobj))
        except KeyError:
            raise KeyError("{!r} is not registered".format(fileobj)) from None
        return key

    def modify(self, fileobj, events, data=None):
        try:
            key = self._fd_to_key[self._fileobj_lookup(fileobj)]
        except KeyError:
            raise KeyError("{!r} is not registered".format(fileobj)) from None
        if events != key.events:
            self.unregister(fileobj)
            key = self.register(fileobj, events, data)
        elif data != key.data:
            # Use a shortcut to update the data.
            key = key._replace(data=data)
            self._fd_to_key[key.fd] = key
        return key

    def close(self):
        self._fd_to_key.clear()
        self._map = None

    def get_map(self):
        return self._map

    def _key_from_fd(self, fd):
        """Return the key associated to a given file descriptor.

        Parameters:
        fd -- file descriptor

        Returns:
        corresponding key, or None if not found
        """
        try:
            return self._fd_to_key[fd]
        except KeyError:
            return None


class SelectSelector(_BaseSelectorImpl):
    """Select-based selector."""

    def __init__(self):
        super().__init__()
        self._readers = set()
        self._writers = set()

    def register(self, fileobj, events, data=None):
        key = super().register(fileobj, events, data)
        if events & EVENT_READ:
            self._readers.add(key.fd)
        if events & EVENT_WRITE:
            self._writers.add(key.fd)
        return key

    def unregister(self, fileobj):
        key = super().unregister(fileobj)
        self._readers.discard(key.fd)
        self._writers.discard(key.fd)
        return key

    if sys.platform == 'win32':
        def _select(self, r, w, _, timeout=None):
            r, w, x = select.select(r, w, w, timeout)
            return r, w + x, []
    else:
        _select = select.select

    def select(self, timeout=None):
        timeout = None if timeout is None else max(timeout, 0)
        ready = []
        try:
            r, w, _ = self._select(self._readers, self._writers, [], timeout)
        except InterruptedError:
            return ready
        r = set(r)
        w = set(w)
        for fd in r | w:
            events = 0
            if fd in r:
                events |= EVENT_READ
            if fd in w:
                events |= EVENT_WRITE

            key = self._key_from_fd(fd)
            if key:
                ready.append((key, events & key.events))
        return ready


class _PollLikeSelector(_BaseSelectorImpl):
    """Base class shared between poll, epoll and devpoll selectors."""
    _selector_cls = None
    _EVENT_READ = None
    _EVENT_WRITE = None

    def __init__(self):
        super().__init__()
        self._selector = self._selector_cls()

    def register(self, fileobj, events, data=None):
        key = super().register(fileobj, events, data)
        poller_events = 0
        if events & EVENT_READ:
            poller_events |= self._EVENT_READ
        if events & EVENT_WRITE:
            poller_events |= self._EVENT_WRITE
        try:
            self._selector.register(key.fd, poller_events)
        except:
            super().unregister(fileobj)
            raise
        return key

    def unregister(self, fileobj):
        key = super().unregister(fileobj)
        try:
            self._selector.unregister(key.fd)
        except OSError:
            # This can happen if the FD was closed since it
            # was registered.
            pass
        return key

    def modify(self, fileobj, events, data=None):
        try:
            key = self._fd_to_key[self._fileobj_lookup(fileobj)]
        except KeyError:
            raise KeyError(f"{fileobj!r} is not registered") from None

        changed = False
        if events != key.events:
            selector_events = 0
            if events & EVENT_READ:
                selector_events |= self._EVENT_READ
            if events & EVENT_WRITE:
                selector_events |= self._EVENT_WRITE
            try:
                self._selector.modify(key.fd, selector_events)
            except:
                super().unregister(fileobj)
                raise
            changed = True
        if data != key.data:
            changed = True

        if changed:
            key = key._replace(events=events, data=data)
            self._fd_to_key[key.fd] = key
        return key

    def select(self, timeout=None):
        # This is shared between poll() and epoll().
        # epoll() has a different signature and handling of timeout parameter.
        if timeout is None:
            timeout = None
        elif timeout <= 0:
            timeout = 0
        else:
            # poll() has a resolution of 1 millisecond, round away from
            # zero to wait *at least* timeout seconds.
            timeout = math.ceil(timeout * 1e3)
        ready = []
        try:
            fd_event_list = self._selector.poll(timeout)
        except InterruptedError:
            return ready
        for fd, event in fd_event_list:
            events = 0
            if event & ~self._EVENT_READ:
                events |= EVENT_WRITE
            if event & ~self._EVENT_WRITE:
                events |= EVENT_READ

            key = self._key_from_fd(fd)
            if key:
                ready.append((key, events & key.events))
        return ready


if hasattr(select, 'poll'):

    class PollSelector(_PollLikeSelector):
        """Poll-based selector."""
        _selector_cls = select.poll
        _EVENT_READ = select.POLLIN
        _EVENT_WRITE = select.POLLOUT


if hasattr(select, 'epoll'):

    class EpollSelector(_PollLikeSelector):
        """Epoll-based selector."""
        _selector_cls = select.epoll
        _EVENT_READ = select.EPOLLIN
        _EVENT_WRITE = select.EPOLLOUT

        def fileno(self):
            return self._selector.fileno()

        def select(self, timeout=None):
            if timeout is None:
                timeout = -1
            elif timeout <= 0:
                timeout = 0
            else:
                # epoll_wait() has a resolution of 1 millisecond, round away
                # from zero to wait *at least* timeout seconds.
                timeout = math.ceil(timeout * 1e3) * 1e-3

            # epoll_wait() expects `maxevents` to be greater than zero;
            # we want to make sure that `select()` can be called when no
            # FD is registered.
            max_ev = max(len(self._fd_to_key), 1)

            ready = []
            try:
                fd_event_list = self._selector.poll(timeout, max_ev)
            except InterruptedError:
                return ready
            for fd, event in fd_event_list:
                events = 0
                if event & ~select.EPOLLIN:
                    events |= EVENT_WRITE
                if event & ~select.EPOLLOUT:
                    events |= EVENT_READ

                key = self._key_from_fd(fd)
                if key:
                    ready.append((key, events & key.events))
            return ready

        def close(self):
            self._selector.close()
            super().close()


if hasattr(select, 'devpoll'):

    class DevpollSelector(_PollLikeSelector):
        """Solaris /dev/poll selector."""
        _selector_cls = select.devpoll
        _EVENT_READ = select.POLLIN
        _EVENT_WRITE = select.POLLOUT

        def fileno(self):
            return self._selector.fileno()

        def close(self):
            self._selector.close()
            super().close()


if hasattr(select, 'kqueue'):

    class KqueueSelector(_BaseSelectorImpl):
        """Kqueue-based selector."""

        def __init__(self):
            super().__init__()
            self._selector = select.kqueue()
            self._max_events = 0

        def fileno(self):
            return self._selector.fileno()

        def register(self, fileobj, events, data=None):
            key = super().register(fileobj, events, data)
            try:
                if events & EVENT_READ:
                    kev = select.kevent(key.fd, select.KQ_FILTER_READ,
                                        select.KQ_EV_ADD)
                    self._selector.control([kev], 0, 0)
                    self._max_events += 1
                if events & EVENT_WRITE:
                    kev = select.kevent(key.fd, select.KQ_FILTER_WRITE,
                                        select.KQ_EV_ADD)
                    self._selector.control([kev], 0, 0)
                    self._max_events += 1
            except:
                super().unregister(fileobj)
                raise
            return key

        def unregister(self, fileobj):
            key = super().unregister(fileobj)
            if key.events & EVENT_READ:
                kev = select.kevent(key.fd, select.KQ_FILTER_READ,
                                    select.KQ_EV_DELETE)
                self._max_events -= 1
                try:
                    self._selector.control([kev], 0, 0)
                except OSError:
                    # This can happen if the FD was closed since it
                    # was registered.
                    pass
            if key.events & EVENT_WRITE:
                kev = select.kevent(key.fd, select.KQ_FILTER_WRITE,
                                    select.KQ_EV_DELETE)
                self._max_events -= 1
                try:
                    self._selector.control([kev], 0, 0)
                except OSError:
                    # See comment above.
                    pass
            return key

        def select(self, timeout=None):
            timeout = None if timeout is None else max(timeout, 0)
            # If max_ev is 0, kqueue will ignore the timeout. For consistent
            # behavior with the other selector classes, we prevent that here
            # (using max). See https://bugs.python.org/issue29255
            max_ev = self._max_events or 1
            ready = []
            try:
                kev_list = self._selector.control(None, max_ev, timeout)
            except InterruptedError:
                return ready
            for kev in kev_list:
                fd = kev.ident
                flag = kev.filter
                events = 0
                if flag == select.KQ_FILTER_READ:
                    events |= EVENT_READ
                if flag == select.KQ_FILTER_WRITE:
                    events |= EVENT_WRITE

                key = self._key_from_fd(fd)
                if key:
                    ready.append((key, events & key.events))
            return ready

        def close(self):
            self._selector.close()
            super().close()


def _can_use(method):
    """Check if we can use the selector depending upon the
    operating system. """
    # Implementation based upon https://github.com/sethmlarson/selectors2/blob/master/selectors2.py
    selector = getattr(select, method, None)
    if selector is None:
        # select module does not implement method
        return False
    # check if the OS and Kernel actually support the method. Call may fail with
    # OSError: [Errno 38] Function not implemented
    try:
        selector_obj = selector()
        if method == 'poll':
            # check that poll actually works
            selector_obj.poll(0)
        else:
            # close epoll, kqueue, and devpoll fd
            selector_obj.close()
        return True
    except OSError:
        return False


# Choose the best implementation, roughly:
#    epoll|kqueue|devpoll > poll > select.
# select() also can't accept a FD > FD_SETSIZE (usually around 1024)
if _can_use('kqueue'):
    DefaultSelector = KqueueSelector
elif _can_use('epoll'):
    DefaultSelector = EpollSelector
elif _can_use('devpoll'):
    DefaultSelector = DevpollSelector
elif _can_use('poll'):
    DefaultSelector = PollSelector
else:
    DefaultSelector = SelectSelector
