"""Text wrapping and filling.
"""

# Copyright (C) 1999-2001 Gregory P. Ward.
# Copyright (C) 2002, 2003 Python Software Foundation.
# Written by Greg Ward <gward@python.net>

import re

__all__ = ['TextWrapper', 'wrap', 'fill', 'dedent', 'indent', 'shorten']

# Hardcode the recognized whitespace characters to the US-ASCII
# whitespace characters.  The main reason for doing this is that
# some Unicode spaces (like \u00a0) are non-breaking whitespaces.
_whitespace = '\t\n\x0b\x0c\r '

class TextWrapper:
    """
    Object for wrapping/filling text.  The public interface consists of
    the wrap() and fill() methods; the other methods are just there for
    subclasses to override in order to tweak the default behaviour.
    If you want to completely replace the main wrapping algorithm,
    you'll probably have to override _wrap_chunks().

    Several instance attributes control various aspects of wrapping:
      width (default: 70)
        the maximum width of wrapped lines (unless break_long_words
        is false)
      initial_indent (default: "")
        string that will be prepended to the first line of wrapped
        output.  Counts towards the line's width.
      subsequent_indent (default: "")
        string that will be prepended to all lines save the first
        of wrapped output; also counts towards each line's width.
      expand_tabs (default: true)
        Expand tabs in input text to spaces before further processing.
        Each tab will become 0 .. 'tabsize' spaces, depending on its position
        in its line.  If false, each tab is treated as a single character.
      tabsize (default: 8)
        Expand tabs in input text to 0 .. 'tabsize' spaces, unless
        'expand_tabs' is false.
      replace_whitespace (default: true)
        Replace all whitespace characters in the input text by spaces
        after tab expansion.  Note that if expand_tabs is false and
        replace_whitespace is true, every tab will be converted to a
        single space!
      fix_sentence_endings (default: false)
        Ensure that sentence-ending punctuation is always followed
        by two spaces.  Off by default because the algorithm is
        (unavoidably) imperfect.
      break_long_words (default: true)
        Break words longer than 'width'.  If false, those words will not
        be broken, and some lines might be longer than 'width'.
      break_on_hyphens (default: true)
        Allow breaking hyphenated words. If true, wrapping will occur
        preferably on whitespaces and right after hyphens part of
        compound words.
      drop_whitespace (default: true)
        Drop leading and trailing whitespace from lines.
      max_lines (default: None)
        Truncate wrapped lines.
      placeholder (default: ' [...]')
        Append to the last line of truncated text.
    """

    unicode_whitespace_trans = dict.fromkeys(map(ord, _whitespace), ord(' '))

    # This funky little regex is just the trick for splitting
    # text up into word-wrappable chunks.  E.g.
    #   "Hello there -- you goof-ball, use the -b option!"
    # splits into
    #   Hello/ /there/ /--/ /you/ /goof-/ball,/ /use/ /the/ /-b/ /option!
    # (after stripping out empty strings).
    word_punct = r'[\w!"\'&.,?]'
    letter = r'[^\d\W]'
    whitespace = r'[%s]' % re.escape(_whitespace)
    nowhitespace = '[^' + whitespace[1:]
    wordsep_re = re.compile(r'''
        ( # any whitespace
          %(ws)s+
        | # em-dash between words
          (?<=%(wp)s) -{2,} (?=\w)
        | # word, possibly hyphenated
          %(nws)s+? (?:
            # hyphenated word
              -(?: (?<=%(lt)s{2}-) | (?<=%(lt)s-%(lt)s-))
              (?= %(lt)s -? %(lt)s)
            | # end of word
              (?=%(ws)s|\Z)
            | # em-dash
              (?<=%(wp)s) (?=-{2,}\w)
            )
        )''' % {'wp': word_punct, 'lt': letter,
                'ws': whitespace, 'nws': nowhitespace},
        re.VERBOSE)
    del word_punct, letter, nowhitespace

    # This less funky little regex just split on recognized spaces. E.g.
    #   "Hello there -- you goof-ball, use the -b option!"
    # splits into
    #   Hello/ /there/ /--/ /you/ /goof-ball,/ /use/ /the/ /-b/ /option!/
    wordsep_simple_re = re.compile(r'(%s+)' % whitespace)
    del whitespace

    # XXX this is not locale- or charset-aware -- string.lowercase
    # is US-ASCII only (and therefore English-only)
    sentence_end_re = re.compile(r'[a-z]'             # lowercase letter
                                 r'[\.\!\?]'          # sentence-ending punct.
                                 r'[\"\']?'           # optional end-of-quote
                                 r'\Z')               # end of chunk

    def __init__(self,
                 width=70,
                 initial_indent="",
                 subsequent_indent="",
                 expand_tabs=True,
                 replace_whitespace=True,
                 fix_sentence_endings=False,
                 break_long_words=True,
                 drop_whitespace=True,
                 break_on_hyphens=True,
                 tabsize=8,
                 *,
                 max_lines=None,
                 placeholder=' [...]'):
        self.width = width
        self.initial_indent = initial_indent
        self.subsequent_indent = subsequent_indent
        self.expand_tabs = expand_tabs
        self.replace_whitespace = replace_whitespace
        self.fix_sentence_endings = fix_sentence_endings
        self.break_long_words = break_long_words
        self.drop_whitespace = drop_whitespace
        self.break_on_hyphens = break_on_hyphens
        self.tabsize = tabsize
        self.max_lines = max_lines
        self.placeholder = placeholder


    # -- Private methods -----------------------------------------------
    # (possibly useful for subclasses to override)

    def _munge_whitespace(self, text):
        """_munge_whitespace(text : string) -> string

        Munge whitespace in text: expand tabs and convert all other
        whitespace characters to spaces.  Eg. " foo\\tbar\\n\\nbaz"
        becomes " foo    bar  baz".
        """
        if self.expand_tabs:
            text = text.expandtabs(self.tabsize)
        if self.replace_whitespace:
            text = text.translate(self.unicode_whitespace_trans)
        return text


    def _split(self, text):
        """_split(text : string) -> [string]

        Split the text to wrap into indivisible chunks.  Chunks are
        not quite the same as words; see _wrap_chunks() for full
        details.  As an example, the text
          Look, goof-ball -- use the -b option!
        breaks into the following chunks:
          'Look,', ' ', 'goof-', 'ball', ' ', '--', ' ',
          'use', ' ', 'the', ' ', '-b', ' ', 'option!'
        if break_on_hyphens is True, or in:
          'Look,', ' ', 'goof-ball', ' ', '--', ' ',
          'use', ' ', 'the', ' ', '-b', ' ', option!'
        otherwise.
        """
        if self.break_on_hyphens is True:
            chunks = self.wordsep_re.split(text)
        else:
            chunks = self.wordsep_simple_re.split(text)
        chunks = [c for c in chunks if c]
        return chunks

    def _fix_sentence_endings(self, chunks):
        """_fix_sentence_endings(chunks : [string])

        Correct for sentence endings buried in 'chunks'.  Eg. when the
        original text contains "... foo.\\nBar ...", munge_whitespace()
        and split() will convert that to [..., "foo.", " ", "Bar", ...]
        which has one too few spaces; this method simply changes the one
        space to two.
        """
        i = 0
        patsearch = self.sentence_end_re.search
        while i < len(chunks)-1:
            if chunks[i+1] == " " and patsearch(chunks[i]):
                chunks[i+1] = "  "
                i += 2
            else:
                i += 1

    def _handle_long_word(self, reversed_chunks, cur_line, cur_len, width):
        """_handle_long_word(chunks : [string],
                             cur_line : [string],
                             cur_len : int, width : int)

        Handle a chunk of text (most likely a word, not whitespace) that
        is too long to fit in any line.
        """
        # Figure out when indent is larger than the specified width, and make
        # sure at least one character is stripped off on every pass
        if width < 1:
            space_left = 1
        else:
            space_left = width - cur_len

        # If we're allowed to break long words, then do so: put as much
        # of the next chunk onto the current line as will fit.
        if self.break_long_words:
            end = space_left
            chunk = reversed_chunks[-1]
            if self.break_on_hyphens and len(chunk) > space_left:
                # break after last hyphen, but only if there are
                # non-hyphens before it
                hyphen = chunk.rfind('-', 0, space_left)
                if hyphen > 0 and any(c != '-' for c in chunk[:hyphen]):
                    end = hyphen + 1
            cur_line.append(chunk[:end])
            reversed_chunks[-1] = chunk[end:]

        # Otherwise, we have to preserve the long word intact.  Only add
        # it to the current line if there's nothing already there --
        # that minimizes how much we violate the width constraint.
        elif not cur_line:
            cur_line.append(reversed_chunks.pop())

        # If we're not allowed to break long words, and there's already
        # text on the current line, do nothing.  Next time through the
        # main loop of _wrap_chunks(), we'll wind up here again, but
        # cur_len will be zero, so the next line will be entirely
        # devoted to the long word that we can't handle right now.

    def _wrap_chunks(self, chunks):
        """_wrap_chunks(chunks : [string]) -> [string]

        Wrap a sequence of text chunks and return a list of lines of
        length 'self.width' or less.  (If 'break_long_words' is false,
        some lines may be longer than this.)  Chunks correspond roughly
        to words and the whitespace between them: each chunk is
        indivisible (modulo 'break_long_words'), but a line break can
        come between any two chunks.  Chunks should not have internal
        whitespace; ie. a chunk is either all whitespace or a "word".
        Whitespace chunks will be removed from the beginning and end of
        lines, but apart from that whitespace is preserved.
        """
        lines = []
        if self.width <= 0:
            raise ValueError("invalid width %r (must be > 0)" % self.width)
        if self.max_lines is not None:
            if self.max_lines > 1:
                indent = self.subsequent_indent
            else:
                indent = self.initial_indent
            if len(indent) + len(self.placeholder.lstrip()) > self.width:
                raise ValueError("placeholder too large for max width")

        # Arrange in reverse order so items can be efficiently popped
        # from a stack of chucks.
        chunks.reverse()

        while chunks:

            # Start the list of chunks that will make up the current line.
            # cur_len is just the length of all the chunks in cur_line.
            cur_line = []
            cur_len = 0

            # Figure out which static string will prefix this line.
            if lines:
                indent = self.subsequent_indent
            else:
                indent = self.initial_indent

            # Maximum width for this line.
            width = self.width - len(indent)

            # First chunk on line is whitespace -- drop it, unless this
            # is the very beginning of the text (ie. no lines started yet).
            if self.drop_whitespace and chunks[-1].strip() == '' and lines:
                del chunks[-1]

            while chunks:
                l = len(chunks[-1])

                # Can at least squeeze this chunk onto the current line.
                if cur_len + l <= width:
                    cur_line.append(chunks.pop())
                    cur_len += l

                # Nope, this line is full.
                else:
                    break

            # The current line is full, and the next chunk is too big to
            # fit on *any* line (not just this one).
            if chunks and len(chunks[-1]) > width:
                self._handle_long_word(chunks, cur_line, cur_len, width)
                cur_len = sum(map(len, cur_line))

            # If the last chunk on this line is all whitespace, drop it.
            if self.drop_whitespace and cur_line and cur_line[-1].strip() == '':
                cur_len -= len(cur_line[-1])
                del cur_line[-1]

            if cur_line:
                if (self.max_lines is None or
                    len(lines) + 1 < self.max_lines or
                    (not chunks or
                     self.drop_whitespace and
                     len(chunks) == 1 and
                     not chunks[0].strip()) and cur_len <= width):
                    # Convert current line back to a string and store it in
                    # list of all lines (return value).
                    lines.append(indent + ''.join(cur_line))
                else:
                    while cur_line:
                        if (cur_line[-1].strip() and
                            cur_len + len(self.placeholder) <= width):
                            cur_line.append(self.placeholder)
                            lines.append(indent + ''.join(cur_line))
                            break
                        cur_len -= len(cur_line[-1])
                        del cur_line[-1]
                    else:
                        if lines:
                            prev_line = lines[-1].rstrip()
                            if (len(prev_line) + len(self.placeholder) <=
                                    self.width):
                                lines[-1] = prev_line + self.placeholder
                                break
                        lines.append(indent + self.placeholder.lstrip())
                    break

        return lines

    def _split_chunks(self, text):
        text = self._munge_whitespace(text)
        return self._split(text)

    # -- Public interface ----------------------------------------------

    def wrap(self, text):
        """wrap(text : string) -> [string]

        Reformat the single paragraph in 'text' so it fits in lines of
        no more than 'self.width' columns, and return a list of wrapped
        lines.  Tabs in 'text' are expanded with string.expandtabs(),
        and all other whitespace characters (including newline) are
        converted to space.
        """
        chunks = self._split_chunks(text)
        if self.fix_sentence_endings:
            self._fix_sentence_endings(chunks)
        return self._wrap_chunks(chunks)

    def fill(self, text):
        """fill(text : string) -> string

        Reformat the single paragraph in 'text' to fit in lines of no
        more than 'self.width' columns, and return a new string
        containing the entire wrapped paragraph.
        """
        return "\n".join(self.wrap(text))


# -- Convenience interface ---------------------------------------------

def wrap(text, width=70, **kwargs):
    """Wrap a single paragraph of text, returning a list of wrapped lines.

    Reformat the single paragraph in 'text' so it fits in lines of no
    more than 'width' columns, and return a list of wrapped lines.  By
    default, tabs in 'text' are expanded with string.expandtabs(), and
    all other whitespace characters (including newline) are converted to
    space.  See TextWrapper class for available keyword args to customize
    wrapping behaviour.
    """
    w = TextWrapper(width=width, **kwargs)
    return w.wrap(text)

def fill(text, width=70, **kwargs):
    """Fill a single paragraph of text, returning a new string.

    Reformat the single paragraph in 'text' to fit in lines of no more
    than 'width' columns, and return a new string containing the entire
    wrapped paragraph.  As with wrap(), tabs are expanded and other
    whitespace characters converted to space.  See TextWrapper class for
    available keyword args to customize wrapping behaviour.
    """
    w = TextWrapper(width=width, **kwargs)
    return w.fill(text)

def shorten(text, width, **kwargs):
    """Collapse and truncate the given text to fit in the given width.

    The text first has its whitespace collapsed.  If it then fits in
    the *width*, it is returned as is.  Otherwise, as many words
    as possible are joined and then the placeholder is appended::

        >>> textwrap.shorten("Hello  world!", width=12)
        'Hello world!'
        >>> textwrap.shorten("Hello  world!", width=11)
        'Hello [...]'
    """
    w = TextWrapper(width=width, max_lines=1, **kwargs)
    return w.fill(' '.join(text.strip().split()))


# -- Loosely related functionality -------------------------------------

_whitespace_only_re = re.compile('^[ \t]+$', re.MULTILINE)
_leading_whitespace_re = re.compile('(^[ \t]*)(?:[^ \t\n])', re.MULTILINE)

def dedent(text):
    """Remove any common leading whitespace from every line in `text`.

    This can be used to make triple-quoted strings line up with the left
    edge of the display, while still presenting them in the source code
    in indented form.

    Note that tabs and spaces are both treated as whitespace, but they
    are not equal: the lines "  hello" and "\\thello" are
    considered to have no common leading whitespace.

    Entirely blank lines are normalized to a newline character.
    """
    # Look for the longest leading string of spaces and tabs common to
    # all lines.
    margin = None
    text = _whitespace_only_re.sub('', text)
    indents = _leading_whitespace_re.findall(text)
    for indent in indents:
        if margin is None:
            margin = indent

        # Current line more deeply indented than previous winner:
        # no change (previous winner is still on top).
        elif indent.startswith(margin):
            pass

        # Current line consistent with and no deeper than previous winner:
        # it's the new winner.
        elif margin.startswith(indent):
            margin = indent

        # Find the largest common whitespace between current line and previous
        # winner.
        else:
            for i, (x, y) in enumerate(zip(margin, indent)):
                if x != y:
                    margin = margin[:i]
                    break

    # sanity check (testing/debugging only)
    if 0 and margin:
        for line in text.split("\n"):
            assert not line or line.startswith(margin), \
                   "line = %r, margin = %r" % (line, margin)

    if margin:
        text = re.sub(r'(?m)^' + margin, '', text)
    return text


def indent(text, prefix, predicate=None):
    """Adds 'prefix' to the beginning of selected lines in 'text'.

    If 'predicate' is provided, 'prefix' will only be added to the lines
    where 'predicate(line)' is True. If 'predicate' is not provided,
    it will default to adding 'prefix' to all non-empty lines that do not
    consist solely of whitespace characters.
    """
    if predicate is None:
        def predicate(line):
            return line.strip()

    def prefixed_lines():
        for line in text.splitlines(True):
            yield (prefix + line if predicate(line) else line)
    return ''.join(prefixed_lines())


if __name__ == "__main__":
    #print dedent("\tfoo\n\tbar")
    #print dedent("  \thello there\n  \t  how are you?")
    print(dedent("Hello there.\n  This is indented."))
