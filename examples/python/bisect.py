"""Bisection algorithms."""


def insort_right(a, x, lo=0, hi=None, *, key=None):
    """Insert item x in list a, and keep it sorted assuming a is sorted.

    If x is already in a, insert it to the right of the rightmost x.

    Optional args lo (default 0) and hi (default len(a)) bound the
    slice of a to be searched.
    """
    if key is None:
        lo = bisect_right(a, x, lo, hi)
    else:
        lo = bisect_right(a, key(x), lo, hi, key=key)
    a.insert(lo, x)


def bisect_right(a, x, lo=0, hi=None, *, key=None):
    """Return the index where to insert item x in list a, assuming a is sorted.

    The return value i is such that all e in a[:i] have e <= x, and all e in
    a[i:] have e > x.  So if x already appears in the list, a.insert(i, x) will
    insert just after the rightmost x already there.

    Optional args lo (default 0) and hi (default len(a)) bound the
    slice of a to be searched.
    """

    if lo < 0:
        raise ValueError('lo must be non-negative')
    if hi is None:
        hi = len(a)
    # Note, the comparison uses "<" to match the
    # __lt__() logic in list.sort() and in heapq.
    if key is None:
        while lo < hi:
            mid = (lo + hi) // 2
            if x < a[mid]:
                hi = mid
            else:
                lo = mid + 1
    else:
        while lo < hi:
            mid = (lo + hi) // 2
            if x < key(a[mid]):
                hi = mid
            else:
                lo = mid + 1
    return lo


def insort_left(a, x, lo=0, hi=None, *, key=None):
    """Insert item x in list a, and keep it sorted assuming a is sorted.

    If x is already in a, insert it to the left of the leftmost x.

    Optional args lo (default 0) and hi (default len(a)) bound the
    slice of a to be searched.
    """

    if key is None:
        lo = bisect_left(a, x, lo, hi)
    else:
        lo = bisect_left(a, key(x), lo, hi, key=key)
    a.insert(lo, x)

def bisect_left(a, x, lo=0, hi=None, *, key=None):
    """Return the index where to insert item x in list a, assuming a is sorted.

    The return value i is such that all e in a[:i] have e < x, and all e in
    a[i:] have e >= x.  So if x already appears in the list, a.insert(i, x) will
    insert just before the leftmost x already there.

    Optional args lo (default 0) and hi (default len(a)) bound the
    slice of a to be searched.
    """

    if lo < 0:
        raise ValueError('lo must be non-negative')
    if hi is None:
        hi = len(a)
    # Note, the comparison uses "<" to match the
    # __lt__() logic in list.sort() and in heapq.
    if key is None:
        while lo < hi:
            mid = (lo + hi) // 2
            if a[mid] < x:
                lo = mid + 1
            else:
                hi = mid
    else:
        while lo < hi:
            mid = (lo + hi) // 2
            if key(a[mid]) < x:
                lo = mid + 1
            else:
                hi = mid
    return lo


# Overwrite above definitions with a fast C implementation
try:
    from _bisect import *
except ImportError:
    pass

# Create aliases
bisect = bisect_right
insort = insort_right
