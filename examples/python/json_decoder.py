"""Implementation of JSONDecoder
"""
import re

from json import scanner
try:
    from _json import scanstring as c_scanstring
except ImportError:
    c_scanstring = None

__all__ = ['JSONDecoder', 'JSONDecodeError']

FLAGS = re.VERBOSE | re.MULTILINE | re.DOTALL

NaN = float('nan')
PosInf = float('inf')
NegInf = float('-inf')


class JSONDecodeError(ValueError):
    """Subclass of ValueError with the following additional properties:

    msg: The unformatted error message
    doc: The JSON document being parsed
    pos: The start index of doc where parsing failed
    lineno: The line corresponding to pos
    colno: The column corresponding to pos

    """
    # Note that this exception is used from _json
    def __init__(self, msg, doc, pos):
        lineno = doc.count('\n', 0, pos) + 1
        colno = pos - doc.rfind('\n', 0, pos)
        errmsg = '%s: line %d column %d (char %d)' % (msg, lineno, colno, pos)
        ValueError.__init__(self, errmsg)
        self.msg = msg
        self.doc = doc
        self.pos = pos
        self.lineno = lineno
        self.colno = colno

    def __reduce__(self):
        return self.__class__, (self.msg, self.doc, self.pos)


_CONSTANTS = {
    '-Infinity': NegInf,
    'Infinity': PosInf,
    'NaN': NaN,
}


STRINGCHUNK = re.compile(r'(.*?)(["\\\x00-\x1f])', FLAGS)
BACKSLASH = {
    '"': '"', '\\': '\\', '/': '/',
    'b': '\b', 'f': '\f', 'n': '\n', 'r': '\r', 't': '\t',
}

def _decode_uXXXX(s, pos):
    esc = s[pos + 1:pos + 5]
    if len(esc) == 4 and esc[1] not in 'xX':
        try:
            return int(esc, 16)
        except ValueError:
            pass
    msg = "Invalid \\uXXXX escape"
    raise JSONDecodeError(msg, s, pos)

def py_scanstring(s, end, strict=True,
        _b=BACKSLASH, _m=STRINGCHUNK.match):
    """Scan the string s for a JSON string. End is the index of the
    character in s after the quote that started the JSON string.
    Unescapes all valid JSON string escape sequences and raises ValueError
    on attempt to decode an invalid string. If strict is False then literal
    control characters are allowed in the string.

    Returns a tuple of the decoded string and the index of the character in s
    after the end quote."""
    chunks = []
    _append = chunks.append
    begin = end - 1
    while 1:
        chunk = _m(s, end)
        if chunk is None:
            raise JSONDecodeError("Unterminated string starting at", s, begin)
        end = chunk.end()
        content, terminator = chunk.groups()
        # Content is contains zero or more unescaped string characters
        if content:
            _append(content)
        # Terminator is the end of string, a literal control character,
        # or a backslash denoting that an escape sequence follows
        if terminator == '"':
            break
        elif terminator != '\\':
            if strict:
                #msg = "Invalid control character %r at" % (terminator,)
                msg = "Invalid control character {0!r} at".format(terminator)
                raise JSONDecodeError(msg, s, end)
            else:
                _append(terminator)
                continue
        try:
            esc = s[end]
        except IndexError:
            raise JSONDecodeError("Unterminated string starting at",
                                  s, begin) from None
        # If not a unicode escape sequence, must be in the lookup table
        if esc != 'u':
            try:
                char = _b[esc]
            except KeyError:
                msg = "Invalid \\escape: {0!r}".format(esc)
                raise JSONDecodeError(msg, s, end)
            end += 1
        else:
            uni = _decode_uXXXX(s, end)
            end += 5
            if 0xd800 <= uni <= 0xdbff and s[end:end + 2] == '\\u':
                uni2 = _decode_uXXXX(s, end + 1)
                if 0xdc00 <= uni2 <= 0xdfff:
                    uni = 0x10000 + (((uni - 0xd800) << 10) | (uni2 - 0xdc00))
                    end += 6
            char = chr(uni)
        _append(char)
    return ''.join(chunks), end


# Use speedup if available
scanstring = c_scanstring or py_scanstring

WHITESPACE = re.compile(r'[ \t\n\r]*', FLAGS)
WHITESPACE_STR = ' \t\n\r'


def JSONObject(s_and_end, strict, scan_once, object_hook, object_pairs_hook,
               memo=None, _w=WHITESPACE.match, _ws=WHITESPACE_STR):
    s, end = s_and_end
    pairs = []
    pairs_append = pairs.append
    # Backwards compatibility
    if memo is None:
        memo = {}
    memo_get = memo.setdefault
    # Use a slice to prevent IndexError from being raised, the following
    # check will raise a more specific ValueError if the string is empty
    nextchar = s[end:end + 1]
    # Normally we expect nextchar == '"'
    if nextchar != '"':
        if nextchar in _ws:
            end = _w(s, end).end()
            nextchar = s[end:end + 1]
        # Trivial empty object
        if nextchar == '}':
            if object_pairs_hook is not None:
                result = object_pairs_hook(pairs)
                return result, end + 1
            pairs = {}
            if object_hook is not None:
                pairs = object_hook(pairs)
            return pairs, end + 1
        elif nextchar != '"':
            raise JSONDecodeError(
                "Expecting property name enclosed in double quotes", s, end)
    end += 1
    while True:
        key, end = scanstring(s, end, strict)
        key = memo_get(key, key)
        # To skip some function call overhead we optimize the fast paths where
        # the JSON key separator is ": " or just ":".
        if s[end:end + 1] != ':':
            end = _w(s, end).end()
            if s[end:end + 1] != ':':
                raise JSONDecodeError("Expecting ':' delimiter", s, end)
        end += 1

        try:
            if s[end] in _ws:
                end += 1
                if s[end] in _ws:
                    end = _w(s, end + 1).end()
        except IndexError:
            pass

        try:
            value, end = scan_once(s, end)
        except StopIteration as err:
            raise JSONDecodeError("Expecting value", s, err.value) from None
        pairs_append((key, value))
        try:
            nextchar = s[end]
            if nextchar in _ws:
                end = _w(s, end + 1).end()
                nextchar = s[end]
        except IndexError:
            nextchar = ''
        end += 1

        if nextchar == '}':
            break
        elif nextchar != ',':
            raise JSONDecodeError("Expecting ',' delimiter", s, end - 1)
        end = _w(s, end).end()
        nextchar = s[end:end + 1]
        end += 1
        if nextchar != '"':
            raise JSONDecodeError(
                "Expecting property name enclosed in double quotes", s, end - 1)
    if object_pairs_hook is not None:
        result = object_pairs_hook(pairs)
        return result, end
    pairs = dict(pairs)
    if object_hook is not None:
        pairs = object_hook(pairs)
    return pairs, end

def JSONArray(s_and_end, scan_once, _w=WHITESPACE.match, _ws=WHITESPACE_STR):
    s, end = s_and_end
    values = []
    nextchar = s[end:end + 1]
    if nextchar in _ws:
        end = _w(s, end + 1).end()
        nextchar = s[end:end + 1]
    # Look-ahead for trivial empty array
    if nextchar == ']':
        return values, end + 1
    _append = values.append
    while True:
        try:
            value, end = scan_once(s, end)
        except StopIteration as err:
            raise JSONDecodeError("Expecting value", s, err.value) from None
        _append(value)
        nextchar = s[end:end + 1]
        if nextchar in _ws:
            end = _w(s, end + 1).end()
            nextchar = s[end:end + 1]
        end += 1
        if nextchar == ']':
            break
        elif nextchar != ',':
            raise JSONDecodeError("Expecting ',' delimiter", s, end - 1)
        try:
            if s[end] in _ws:
                end += 1
                if s[end] in _ws:
                    end = _w(s, end + 1).end()
        except IndexError:
            pass

    return values, end


class JSONDecoder(object):
    """Simple JSON <https://json.org> decoder

    Performs the following translations in decoding by default:

    +---------------+-------------------+
    | JSON          | Python            |
    +===============+===================+
    | object        | dict              |
    +---------------+-------------------+
    | array         | list              |
    +---------------+-------------------+
    | string        | str               |
    +---------------+-------------------+
    | number (int)  | int               |
    +---------------+-------------------+
    | number (real) | float             |
    +---------------+-------------------+
    | true          | True              |
    +---------------+-------------------+
    | false         | False             |
    +---------------+-------------------+
    | null          | None              |
    +---------------+-------------------+

    It also understands ``NaN``, ``Infinity``, and ``-Infinity`` as
    their corresponding ``float`` values, which is outside the JSON spec.

    """

    def __init__(self, *, object_hook=None, parse_float=None,
            parse_int=None, parse_constant=None, strict=True,
            object_pairs_hook=None):
        """``object_hook``, if specified, will be called with the result
        of every JSON object decoded and its return value will be used in
        place of the given ``dict``.  This can be used to provide custom
        deserializations (e.g. to support JSON-RPC class hinting).

        ``object_pairs_hook``, if specified will be called with the result of
        every JSON object decoded with an ordered list of pairs.  The return
        value of ``object_pairs_hook`` will be used instead of the ``dict``.
        This feature can be used to implement custom decoders.
        If ``object_hook`` is also defined, the ``object_pairs_hook`` takes
        priority.

        ``parse_float``, if specified, will be called with the string
        of every JSON float to be decoded. By default this is equivalent to
        float(num_str). This can be used to use another datatype or parser
        for JSON floats (e.g. decimal.Decimal).

        ``parse_int``, if specified, will be called with the string
        of every JSON int to be decoded. By default this is equivalent to
        int(num_str). This can be used to use another datatype or parser
        for JSON integers (e.g. float).

        ``parse_constant``, if specified, will be called with one of the
        following strings: -Infinity, Infinity, NaN.
        This can be used to raise an exception if invalid JSON numbers
        are encountered.

        If ``strict`` is false (true is the default), then control
        characters will be allowed inside strings.  Control characters in
        this context are those with character codes in the 0-31 range,
        including ``'\\t'`` (tab), ``'\\n'``, ``'\\r'`` and ``'\\0'``.
        """
        self.object_hook = object_hook
        self.parse_float = parse_float or float
        self.parse_int = parse_int or int
        self.parse_constant = parse_constant or _CONSTANTS.__getitem__
        self.strict = strict
        self.object_pairs_hook = object_pairs_hook
        self.parse_object = JSONObject
        self.parse_array = JSONArray
        self.parse_string = scanstring
        self.memo = {}
        self.scan_once = scanner.make_scanner(self)


    def decode(self, s, _w=WHITESPACE.match):
        """Return the Python representation of ``s`` (a ``str`` instance
        containing a JSON document).

        """
        obj, end = self.raw_decode(s, idx=_w(s, 0).end())
        end = _w(s, end).end()
        if end != len(s):
            raise JSONDecodeError("Extra data", s, end)
        return obj

    def raw_decode(self, s, idx=0):
        """Decode a JSON document from ``s`` (a ``str`` beginning with
        a JSON document) and return a 2-tuple of the Python
        representation and the index in ``s`` where the document ended.

        This can be used to decode a JSON document from a string that may
        have extraneous data at the end.

        """
        try:
            obj, end = self.scan_once(s, idx)
        except StopIteration as err:
            raise JSONDecodeError("Expecting value", s, err.value) from None
        return obj, end
