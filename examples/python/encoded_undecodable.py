# -*- coding: utf-8 -*-
# The next line deliberately contains bytes that cannot decode as
# utf-8 (a lone continuation byte), so this file is undecodable.
BAD = "ÿþ broken"
