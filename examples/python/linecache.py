"""Cache lines from Python source files.

This is intended to read lines from modules imported -- hence if a filename
is not found, it will look down the module search path for a file by
that name.
"""

import functools
import sys
import os
import tokenize

__all__ = ["getline", "clearcache", "checkcache", "lazycache"]


# The cache. Maps filenames to either a thunk which will provide source code,
# or a tuple (size, mtime, lines, fullname) once loaded.
cache = {}


def clearcache():
    """Clear the cache entirely."""
    cache.clear()


def getline(filename, lineno, module_globals=None):
    """Get a line for a Python source file from the cache.
    Update the cache if it doesn't contain an entry for this file already."""

    lines = getlines(filename, module_globals)
    if 1 <= lineno <= len(lines):
        return lines[lineno - 1]
    return ''


def getlines(filename, module_globals=None):
    """Get the lines for a Python source file from the cache.
    Update the cache if it doesn't contain an entry for this file already."""

    if filename in cache:
        entry = cache[filename]
        if len(entry) != 1:
            return cache[filename][2]

    try:
        return updatecache(filename, module_globals)
    except MemoryError:
        clearcache()
        return []


def checkcache(filename=None):
    """Discard cache entries that are out of date.
    (This is not checked upon each call!)"""

    if filename is None:
        filenames = list(cache.keys())
    elif filename in cache:
        filenames = [filename]
    else:
        return

    for filename in filenames:
        entry = cache[filename]
        if len(entry) == 1:
            # lazy cache entry, leave it lazy.
            continue
        size, mtime, lines, fullname = entry
        if mtime is None:
            continue   # no-op for files loaded via a __loader__
        try:
            stat = os.stat(fullname)
        except OSError:
            cache.pop(filename, None)
            continue
        if size != stat.st_size or mtime != stat.st_mtime:
            cache.pop(filename, None)


def updatecache(filename, module_globals=None):
    """Update a cache entry and return its list of lines.
    If something's wrong, print a message, discard the cache entry,
    and return an empty list."""

    if filename in cache:
        if len(cache[filename]) != 1:
            cache.pop(filename, None)
    if not filename or (filename.startswith('<') and filename.endswith('>')):
        return []

    fullname = filename
    try:
        stat = os.stat(fullname)
    except OSError:
        basename = filename

        # Realise a lazy loader based lookup if there is one
        # otherwise try to lookup right now.
        if lazycache(filename, module_globals):
            try:
                data = cache[filename][0]()
            except (ImportError, OSError):
                pass
            else:
                if data is None:
                    # No luck, the PEP302 loader cannot find the source
                    # for this module.
                    return []
                cache[filename] = (
                    len(data),
                    None,
                    [line + '\n' for line in data.splitlines()],
                    fullname
                )
                return cache[filename][2]

        # Try looking through the module search path, which is only useful
        # when handling a relative filename.
        if os.path.isabs(filename):
            return []

        for dirname in sys.path:
            try:
                fullname = os.path.join(dirname, basename)
            except (TypeError, AttributeError):
                # Not sufficiently string-like to do anything useful with.
                continue
            try:
                stat = os.stat(fullname)
                break
            except OSError:
                pass
        else:
            return []
    try:
        with tokenize.open(fullname) as fp:
            lines = fp.readlines()
    except (OSError, UnicodeDecodeError, SyntaxError):
        return []
    if lines and not lines[-1].endswith('\n'):
        lines[-1] += '\n'
    size, mtime = stat.st_size, stat.st_mtime
    cache[filename] = size, mtime, lines, fullname
    return lines


def lazycache(filename, module_globals):
    """Seed the cache for filename with module_globals.

    The module loader will be asked for the source only when getlines is
    called, not immediately.

    If there is an entry in the cache already, it is not altered.

    :return: True if a lazy load is registered in the cache,
        otherwise False. To register such a load a module loader with a
        get_source method must be found, the filename must be a cacheable
        filename, and the filename must not be already cached.
    """
    if filename in cache:
        if len(cache[filename]) == 1:
            return True
        else:
            return False
    if not filename or (filename.startswith('<') and filename.endswith('>')):
        return False
    # Try for a __loader__, if available
    if module_globals and '__name__' in module_globals:
        name = module_globals['__name__']
        if (loader := module_globals.get('__loader__')) is None:
            if spec := module_globals.get('__spec__'):
                try:
                    loader = spec.loader
                except AttributeError:
                    pass
        get_source = getattr(loader, 'get_source', None)

        if name and get_source:
            get_lines = functools.partial(get_source, name)
            cache[filename] = (get_lines,)
            return True
    return False
