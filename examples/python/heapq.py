"""Heap queue algorithm (a.k.a. priority queue).

Heaps are arrays for which a[k] <= a[2*k+1] and a[k] <= a[2*k+2] for
all k, counting elements from 0.  For the sake of comparison,
non-existing elements are considered to be infinite.  The interesting
property of a heap is that a[0] is always its smallest element.

Usage:

heap = []            # creates an empty heap
heappush(heap, item) # pushes a new item on the heap
item = heappop(heap) # pops the smallest item from the heap
item = heap[0]       # smallest item on the heap without popping it
heapify(x)           # transforms list into a heap, in-place, in linear time
item = heappushpop(heap, item) # pushes a new item and then returns
                               # the smallest item; the heap size is unchanged
item = heapreplace(heap, item) # pops and returns smallest item, and adds
                               # new item; the heap size is unchanged

Our API differs from textbook heap algorithms as follows:

- We use 0-based indexing.  This makes the relationship between the
  index for a node and the indexes for its children slightly less
  obvious, but is more suitable since Python uses 0-based indexing.

- Our heappop() method returns the smallest item, not the largest.

These two make it possible to view the heap as a regular Python list
without surprises: heap[0] is the smallest item, and heap.sort()
maintains the heap invariant!
"""

# Original code by Kevin O'Connor, augmented by Tim Peters and Raymond Hettinger

__about__ = """Heap queues

[explanation by François Pinard]

Heaps are arrays for which a[k] <= a[2*k+1] and a[k] <= a[2*k+2] for
all k, counting elements from 0.  For the sake of comparison,
non-existing elements are considered to be infinite.  The interesting
property of a heap is that a[0] is always its smallest element.

The strange invariant above is meant to be an efficient memory
representation for a tournament.  The numbers below are `k', not a[k]:

                                   0

                  1                                 2

          3               4                5               6

      7       8       9       10      11      12      13      14

    15 16   17 18   19 20   21 22   23 24   25 26   27 28   29 30


In the tree above, each cell `k' is topping `2*k+1' and `2*k+2'.  In
a usual binary tournament we see in sports, each cell is the winner
over the two cells it tops, and we can trace the winner down the tree
to see all opponents s/he had.  However, in many computer applications
of such tournaments, we do not need to trace the history of a winner.
To be more memory efficient, when a winner is promoted, we try to
replace it by something else at a lower level, and the rule becomes
that a cell and the two cells it tops contain three different items,
but the top cell "wins" over the two topped cells.

If this heap invariant is protected at all time, index 0 is clearly
the overall winner.  The simplest algorithmic way to remove it and
find the "next" winner is to move some loser (let's say cell 30 in the
diagram above) into the 0 position, and then percolate this new 0 down
the tree, exchanging values, until the invariant is re-established.
This is clearly logarithmic on the total number of items in the tree.
By iterating over all items, you get an O(n ln n) sort.

A nice feature of this sort is that you can efficiently insert new
items while the sort is going on, provided that the inserted items are
not "better" than the last 0'th element you extracted.  This is
especially useful in simulation contexts, where the tree holds all
incoming events, and the "win" condition means the smallest scheduled
time.  When an event schedule other events for execution, they are
scheduled into the future, so they can easily go into the heap.  So, a
heap is a good structure for implementing schedulers (this is what I
used for my MIDI sequencer :-).

Various structures for implementing schedulers have been extensively
studied, and heaps are good for this, as they are reasonably speedy,
the speed is almost constant, and the worst case is not much different
than the average case.  However, there are other representations which
are more efficient overall, yet the worst cases might be terrible.

Heaps are also very useful in big disk sorts.  You most probably all
know that a big sort implies producing "runs" (which are pre-sorted
sequences, which size is usually related to the amount of CPU memory),
followed by a merging passes for these runs, which merging is often
very cleverly organised[1].  It is very important that the initial
sort produces the longest runs possible.  Tournaments are a good way
to that.  If, using all the memory available to hold a tournament, you
replace and percolate items that happen to fit the current run, you'll
produce runs which are twice the size of the memory for random input,
and much better for input fuzzily ordered.

Moreover, if you output the 0'th item on disk and get an input which
may not fit in the current tournament (because the value "wins" over
the last output value), it cannot fit in the heap, so the size of the
heap decreases.  The freed memory could be cleverly reused immediately
for progressively building a second heap, which grows at exactly the
same rate the first heap is melting.  When the first heap completely
vanishes, you switch heaps and start a new run.  Clever and quite
effective!

In a word, heaps are useful memory structures to know.  I use them in
a few applications, and I think it is good to keep a `heap' module
around. :-)

--------------------
[1] The disk balancing algorithms which are current, nowadays, are
more annoying than clever, and this is a consequence of the seeking
capabilities of the disks.  On devices which cannot seek, like big
tape drives, the story was quite different, and one had to be very
clever to ensure (far in advance) that each tape movement will be the
most effective possible (that is, will best participate at
"progressing" the merge).  Some tapes were even able to read
backwards, and this was also used to avoid the rewinding time.
Believe me, real good tape sorts were quite spectacular to watch!
From all times, sorting has always been a Great Art! :-)
"""

__all__ = ['heappush', 'heappop', 'heapify', 'heapreplace', 'merge',
           'nlargest', 'nsmallest', 'heappushpop']

def heappush(heap, item):
    """Push item onto heap, maintaining the heap invariant."""
    heap.append(item)
    _siftdown(heap, 0, len(heap)-1)

def heappop(heap):
    """Pop the smallest item off the heap, maintaining the heap invariant."""
    lastelt = heap.pop()    # raises appropriate IndexError if heap is empty
    if heap:
        returnitem = heap[0]
        heap[0] = lastelt
        _siftup(heap, 0)
        return returnitem
    return lastelt

def heapreplace(heap, item):
    """Pop and return the current smallest value, and add the new item.

    This is more efficient than heappop() followed by heappush(), and can be
    more appropriate when using a fixed-size heap.  Note that the value
    returned may be larger than item!  That constrains reasonable uses of
    this routine unless written as part of a conditional replacement:

        if item > heap[0]:
            item = heapreplace(heap, item)
    """
    returnitem = heap[0]    # raises appropriate IndexError if heap is empty
    heap[0] = item
    _siftup(heap, 0)
    return returnitem

def heappushpop(heap, item):
    """Fast version of a heappush followed by a heappop."""
    if heap and heap[0] < item:
        item, heap[0] = heap[0], item
        _siftup(heap, 0)
    return item

def heapify(x):
    """Transform list into a heap, in-place, in O(len(x)) time."""
    n = len(x)
    # Transform bottom-up.  The largest index there's any point to looking at
    # is the largest with a child index in-range, so must have 2*i + 1 < n,
    # or i < (n-1)/2.  If n is even = 2*j, this is (2*j-1)/2 = j-1/2 so
    # j-1 is the largest, which is n//2 - 1.  If n is odd = 2*j+1, this is
    # (2*j+1-1)/2 = j so j-1 is the largest, and that's again n//2-1.
    for i in reversed(range(n//2)):
        _siftup(x, i)

def _heappop_max(heap):
    """Maxheap version of a heappop."""
    lastelt = heap.pop()    # raises appropriate IndexError if heap is empty
    if heap:
        returnitem = heap[0]
        heap[0] = lastelt
        _siftup_max(heap, 0)
        return returnitem
    return lastelt

def _heapreplace_max(heap, item):
    """Maxheap version of a heappop followed by a heappush."""
    returnitem = heap[0]    # raises appropriate IndexError if heap is empty
    heap[0] = item
    _siftup_max(heap, 0)
    return returnitem

def _heapify_max(x):
    """Transform list into a maxheap, in-place, in O(len(x)) time."""
    n = len(x)
    for i in reversed(range(n//2)):
        _siftup_max(x, i)

# 'heap' is a heap at all indices >= startpos, except possibly for pos.  pos
# is the index of a leaf with a possibly out-of-order value.  Restore the
# heap invariant.
def _siftdown(heap, startpos, pos):
    newitem = heap[pos]
    # Follow the path to the root, moving parents down until finding a place
    # newitem fits.
    while pos > startpos:
        parentpos = (pos - 1) >> 1
        parent = heap[parentpos]
        if newitem < parent:
            heap[pos] = parent
            pos = parentpos
            continue
        break
    heap[pos] = newitem

# The child indices of heap index pos are already heaps, and we want to make
# a heap at index pos too.  We do this by bubbling the smaller child of
# pos up (and so on with that child's children, etc) until hitting a leaf,
# then using _siftdown to move the oddball originally at index pos into place.
#
# We *could* break out of the loop as soon as we find a pos where newitem <=
# both its children, but turns out that's not a good idea, and despite that
# many books write the algorithm that way.  During a heap pop, the last array
# element is sifted in, and that tends to be large, so that comparing it
# against values starting from the root usually doesn't pay (= usually doesn't
# get us out of the loop early).  See Knuth, Volume 3, where this is
# explained and quantified in an exercise.
#
# Cutting the # of comparisons is important, since these routines have no
# way to extract "the priority" from an array element, so that intelligence
# is likely to be hiding in custom comparison methods, or in array elements
# storing (priority, record) tuples.  Comparisons are thus potentially
# expensive.
#
# On random arrays of length 1000, making this change cut the number of
# comparisons made by heapify() a little, and those made by exhaustive
# heappop() a lot, in accord with theory.  Here are typical results from 3
# runs (3 just to demonstrate how small the variance is):
#
# Compares needed by heapify     Compares needed by 1000 heappops
# --------------------------     --------------------------------
# 1837 cut to 1663               14996 cut to 8680
# 1855 cut to 1659               14966 cut to 8678
# 1847 cut to 1660               15024 cut to 8703
#
# Building the heap by using heappush() 1000 times instead required
# 2198, 2148, and 2219 compares:  heapify() is more efficient, when
# you can use it.
#
# The total compares needed by list.sort() on the same lists were 8627,
# 8627, and 8632 (this should be compared to the sum of heapify() and
# heappop() compares):  list.sort() is (unsurprisingly!) more efficient
# for sorting.

def _siftup(heap, pos):
    endpos = len(heap)
    startpos = pos
    newitem = heap[pos]
    # Bubble up the smaller child until hitting a leaf.
    childpos = 2*pos + 1    # leftmost child position
    while childpos < endpos:
        # Set childpos to index of smaller child.
        rightpos = childpos + 1
        if rightpos < endpos and not heap[childpos] < heap[rightpos]:
            childpos = rightpos
        # Move the smaller child up.
        heap[pos] = heap[childpos]
        pos = childpos
        childpos = 2*pos + 1
    # The leaf at pos is empty now.  Put newitem there, and bubble it up
    # to its final resting place (by sifting its parents down).
    heap[pos] = newitem
    _siftdown(heap, startpos, pos)

def _siftdown_max(heap, startpos, pos):
    'Maxheap variant of _siftdown'
    newitem = heap[pos]
    # Follow the path to the root, moving parents down until finding a place
    # newitem fits.
    while pos > startpos:
        parentpos = (pos - 1) >> 1
        parent = heap[parentpos]
        if parent < newitem:
            heap[pos] = parent
            pos = parentpos
            continue
        break
    heap[pos] = newitem

def _siftup_max(heap, pos):
    'Maxheap variant of _siftup'
    endpos = len(heap)
    startpos = pos
    newitem = heap[pos]
    # Bubble up the larger child until hitting a leaf.
    childpos = 2*pos + 1    # leftmost child position
    while childpos < endpos:
        # Set childpos to index of larger child.
        rightpos = childpos + 1
        if rightpos < endpos and not heap[rightpos] < heap[childpos]:
            childpos = rightpos
        # Move the larger child up.
        heap[pos] = heap[childpos]
        pos = childpos
        childpos = 2*pos + 1
    # The leaf at pos is empty now.  Put newitem there, and bubble it up
    # to its final resting place (by sifting its parents down).
    heap[pos] = newitem
    _siftdown_max(heap, startpos, pos)

def merge(*iterables, key=None, reverse=False):
    '''Merge multiple sorted inputs into a single sorted output.

    Similar to sorted(itertools.chain(*iterables)) but returns a generator,
    does not pull the data into memory all at once, and assumes that each of
    the input streams is already sorted (smallest to largest).

    >>> list(merge([1,3,5,7], [0,2,4,8], [5,10,15,20], [], [25]))
    [0, 1, 2, 3, 4, 5, 5, 7, 8, 10, 15, 20, 25]

    If *key* is not None, applies a key function to each element to determine
    its sort order.

    >>> list(merge(['dog', 'horse'], ['cat', 'fish', 'kangaroo'], key=len))
    ['dog', 'cat', 'fish', 'horse', 'kangaroo']

    '''

    h = []
    h_append = h.append

    if reverse:
        _heapify = _heapify_max
        _heappop = _heappop_max
        _heapreplace = _heapreplace_max
        direction = -1
    else:
        _heapify = heapify
        _heappop = heappop
        _heapreplace = heapreplace
        direction = 1

    if key is None:
        for order, it in enumerate(map(iter, iterables)):
            try:
                next = it.__next__
                h_append([next(), order * direction, next])
            except StopIteration:
                pass
        _heapify(h)
        while len(h) > 1:
            try:
                while True:
                    value, order, next = s = h[0]
                    yield value
                    s[0] = next()           # raises StopIteration when exhausted
                    _heapreplace(h, s)      # restore heap condition
            except StopIteration:
                _heappop(h)                 # remove empty iterator
        if h:
            # fast case when only a single iterator remains
            value, order, next = h[0]
            yield value
            yield from next.__self__
        return

    for order, it in enumerate(map(iter, iterables)):
        try:
            next = it.__next__
            value = next()
            h_append([key(value), order * direction, value, next])
        except StopIteration:
            pass
    _heapify(h)
    while len(h) > 1:
        try:
            while True:
                key_value, order, value, next = s = h[0]
                yield value
                value = next()
                s[0] = key(value)
                s[2] = value
                _heapreplace(h, s)
        except StopIteration:
            _heappop(h)
    if h:
        key_value, order, value, next = h[0]
        yield value
        yield from next.__self__


# Algorithm notes for nlargest() and nsmallest()
# ==============================================
#
# Make a single pass over the data while keeping the k most extreme values
# in a heap.  Memory consumption is limited to keeping k values in a list.
#
# Measured performance for random inputs:
#
#                                   number of comparisons
#    n inputs     k-extreme values  (average of 5 trials)   % more than min()
# -------------   ----------------  ---------------------   -----------------
#      1,000           100                  3,317               231.7%
#     10,000           100                 14,046                40.5%
#    100,000           100                105,749                 5.7%
#  1,000,000           100              1,007,751                 0.8%
# 10,000,000           100             10,009,401                 0.1%
#
# Theoretical number of comparisons for k smallest of n random inputs:
#
# Step   Comparisons                  Action
# ----   --------------------------   ---------------------------
#  1     1.66 * k                     heapify the first k-inputs
#  2     n - k                        compare remaining elements to top of heap
#  3     k * (1 + lg2(k)) * ln(n/k)   replace the topmost value on the heap
#  4     k * lg2(k) - (k/2)           final sort of the k most extreme values
#
# Combining and simplifying for a rough estimate gives:
#
#        comparisons = n + k * (log(k, 2) * log(n/k) + log(k, 2) + log(n/k))
#
# Computing the number of comparisons for step 3:
# -----------------------------------------------
# * For the i-th new value from the iterable, the probability of being in the
#   k most extreme values is k/i.  For example, the probability of the 101st
#   value seen being in the 100 most extreme values is 100/101.
# * If the value is a new extreme value, the cost of inserting it into the
#   heap is 1 + log(k, 2).
# * The probability times the cost gives:
#            (k/i) * (1 + log(k, 2))
# * Summing across the remaining n-k elements gives:
#            sum((k/i) * (1 + log(k, 2)) for i in range(k+1, n+1))
# * This reduces to:
#            (H(n) - H(k)) * k * (1 + log(k, 2))
# * Where H(n) is the n-th harmonic number estimated by:
#            gamma = 0.5772156649
#            H(n) = log(n, e) + gamma + 1 / (2 * n)
#   http://en.wikipedia.org/wiki/Harmonic_series_(mathematics)#Rate_of_divergence
# * Substituting the H(n) formula:
#            comparisons = k * (1 + log(k, 2)) * (log(n/k, e) + (1/n - 1/k) / 2)
#
# Worst-case for step 3:
# ----------------------
# In the worst case, the input data is reversed sorted so that every new element
# must be inserted in the heap:
#
#             comparisons = 1.66 * k + log(k, 2) * (n - k)
#
# Alternative Algorithms
# ----------------------
# Other algorithms were not used because they:
# 1) Took much more auxiliary memory,
# 2) Made multiple passes over the data.
# 3) Made more comparisons in common cases (small k, large n, semi-random input).
# See the more detailed comparison of approach at:
# http://code.activestate.com/recipes/577573-compare-algorithms-for-heapqsmallest

def nsmallest(n, iterable, key=None):
    """Find the n smallest elements in a dataset.

    Equivalent to:  sorted(iterable, key=key)[:n]
    """

    # Short-cut for n==1 is to use min()
    if n == 1:
        it = iter(iterable)
        sentinel = object()
        result = min(it, default=sentinel, key=key)
        return [] if result is sentinel else [result]

    # When n>=size, it's faster to use sorted()
    try:
        size = len(iterable)
    except (TypeError, AttributeError):
        pass
    else:
        if n >= size:
            return sorted(iterable, key=key)[:n]

    # When key is none, use simpler decoration
    if key is None:
        it = iter(iterable)
        # put the range(n) first so that zip() doesn't
        # consume one too many elements from the iterator
        result = [(elem, i) for i, elem in zip(range(n), it)]
        if not result:
            return result
        _heapify_max(result)
        top = result[0][0]
        order = n
        _heapreplace = _heapreplace_max
        for elem in it:
            if elem < top:
                _heapreplace(result, (elem, order))
                top, _order = result[0]
                order += 1
        result.sort()
        return [elem for (elem, order) in result]

    # General case, slowest method
    it = iter(iterable)
    result = [(key(elem), i, elem) for i, elem in zip(range(n), it)]
    if not result:
        return result
    _heapify_max(result)
    top = result[0][0]
    order = n
    _heapreplace = _heapreplace_max
    for elem in it:
        k = key(elem)
        if k < top:
            _heapreplace(result, (k, order, elem))
            top, _order, _elem = result[0]
            order += 1
    result.sort()
    return [elem for (k, order, elem) in result]

def nlargest(n, iterable, key=None):
    """Find the n largest elements in a dataset.

    Equivalent to:  sorted(iterable, key=key, reverse=True)[:n]
    """

    # Short-cut for n==1 is to use max()
    if n == 1:
        it = iter(iterable)
        sentinel = object()
        result = max(it, default=sentinel, key=key)
        return [] if result is sentinel else [result]

    # When n>=size, it's faster to use sorted()
    try:
        size = len(iterable)
    except (TypeError, AttributeError):
        pass
    else:
        if n >= size:
            return sorted(iterable, key=key, reverse=True)[:n]

    # When key is none, use simpler decoration
    if key is None:
        it = iter(iterable)
        result = [(elem, i) for i, elem in zip(range(0, -n, -1), it)]
        if not result:
            return result
        heapify(result)
        top = result[0][0]
        order = -n
        _heapreplace = heapreplace
        for elem in it:
            if top < elem:
                _heapreplace(result, (elem, order))
                top, _order = result[0]
                order -= 1
        result.sort(reverse=True)
        return [elem for (elem, order) in result]

    # General case, slowest method
    it = iter(iterable)
    result = [(key(elem), i, elem) for i, elem in zip(range(0, -n, -1), it)]
    if not result:
        return result
    heapify(result)
    top = result[0][0]
    order = -n
    _heapreplace = heapreplace
    for elem in it:
        k = key(elem)
        if top < k:
            _heapreplace(result, (k, order, elem))
            top, _order, _elem = result[0]
            order -= 1
    result.sort(reverse=True)
    return [elem for (k, order, elem) in result]

# If available, use C implementation
try:
    from _heapq import *
except ImportError:
    pass
try:
    from _heapq import _heapreplace_max
except ImportError:
    pass
try:
    from _heapq import _heapify_max
except ImportError:
    pass
try:
    from _heapq import _heappop_max
except ImportError:
    pass


if __name__ == "__main__":

    import doctest # pragma: no cover
    print(doctest.testmod()) # pragma: no cover
