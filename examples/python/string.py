"""A collection of string constants.

Public module variables:

whitespace -- a string containing all ASCII whitespace
ascii_lowercase -- a string containing all ASCII lowercase letters
ascii_uppercase -- a string containing all ASCII uppercase letters
ascii_letters -- a string containing all ASCII letters
digits -- a string containing all ASCII decimal digits
hexdigits -- a string containing all ASCII hexadecimal digits
octdigits -- a string containing all ASCII octal digits
punctuation -- a string containing all ASCII punctuation characters
printable -- a string containing all ASCII characters considered printable

"""

__all__ = ["ascii_letters", "ascii_lowercase", "ascii_uppercase", "capwords",
           "digits", "hexdigits", "octdigits", "printable", "punctuation",
           "whitespace", "Formatter", "Template"]

import _string

# Some strings for ctype-style character classification
whitespace = ' \t\n\r\v\f'
ascii_lowercase = 'abcdefghijklmnopqrstuvwxyz'
ascii_uppercase = 'ABCDEFGHIJKLMNOPQRSTUVWXYZ'
ascii_letters = ascii_lowercase + ascii_uppercase
digits = '0123456789'
hexdigits = digits + 'abcdef' + 'ABCDEF'
octdigits = '01234567'
punctuation = r"""!"#$%&'()*+,-./:;<=>?@[\]^_`{|}~"""
printable = digits + ascii_letters + punctuation + whitespace

# Functions which aren't available as string methods.

# Capitalize the words in a string, e.g. " aBc  dEf " -> "Abc Def".
def capwords(s, sep=None):
    """capwords(s [,sep]) -> string

    Split the argument into words using split, capitalize each
    word using capitalize, and join the capitalized words using
    join.  If the optional second argument sep is absent or None,
    runs of whitespace characters are replaced by a single space
    and leading and trailing whitespace are removed, otherwise
    sep is used to split and join the words.

    """
    return (sep or ' ').join(map(str.capitalize, s.split(sep)))


####################################################################
import re as _re
from collections import ChainMap as _ChainMap

_sentinel_dict = {}

class Template:
    """A string class for supporting $-substitutions."""

    delimiter = '$'
    # r'[a-z]' matches to non-ASCII letters when used with IGNORECASE, but
    # without the ASCII flag.  We can't add re.ASCII to flags because of
    # backward compatibility.  So we use the ?a local flag and [a-z] pattern.
    # See https://bugs.python.org/issue31672
    idpattern = r'(?a:[_a-z][_a-z0-9]*)'
    braceidpattern = None
    flags = _re.IGNORECASE

    def __init_subclass__(cls):
        super().__init_subclass__()
        if 'pattern' in cls.__dict__:
            pattern = cls.pattern
        else:
            delim = _re.escape(cls.delimiter)
            id = cls.idpattern
            bid = cls.braceidpattern or cls.idpattern
            pattern = fr"""
            {delim}(?:
              (?P<escaped>{delim})  |   # Escape sequence of two delimiters
              (?P<named>{id})       |   # delimiter and a Python identifier
              {{(?P<braced>{bid})}} |   # delimiter and a braced identifier
              (?P<invalid>)             # Other ill-formed delimiter exprs
            )
            """
        cls.pattern = _re.compile(pattern, cls.flags | _re.VERBOSE)

    def __init__(self, template):
        self.template = template

    # Search for $$, $identifier, ${identifier}, and any bare $'s

    def _invalid(self, mo):
        i = mo.start('invalid')
        lines = self.template[:i].splitlines(keepends=True)
        if not lines:
            colno = 1
            lineno = 1
        else:
            colno = i - len(''.join(lines[:-1]))
            lineno = len(lines)
        raise ValueError('Invalid placeholder in string: line %d, col %d' %
                         (lineno, colno))

    def substitute(self, mapping=_sentinel_dict, /, **kws):
        if mapping is _sentinel_dict:
            mapping = kws
        elif kws:
            mapping = _ChainMap(kws, mapping)
        # Helper function for .sub()
        def convert(mo):
            # Check the most common path first.
            named = mo.group('named') or mo.group('braced')
            if named is not None:
                return str(mapping[named])
            if mo.group('escaped') is not None:
                return self.delimiter
            if mo.group('invalid') is not None:
                self._invalid(mo)
            raise ValueError('Unrecognized named group in pattern',
                             self.pattern)
        return self.pattern.sub(convert, self.template)

    def safe_substitute(self, mapping=_sentinel_dict, /, **kws):
        if mapping is _sentinel_dict:
            mapping = kws
        elif kws:
            mapping = _ChainMap(kws, mapping)
        # Helper function for .sub()
        def convert(mo):
            named = mo.group('named') or mo.group('braced')
            if named is not None:
                try:
                    return str(mapping[named])
                except KeyError:
                    return mo.group()
            if mo.group('escaped') is not None:
                return self.delimiter
            if mo.group('invalid') is not None:
                return mo.group()
            raise ValueError('Unrecognized named group in pattern',
                             self.pattern)
        return self.pattern.sub(convert, self.template)

    def is_valid(self):
        for mo in self.pattern.finditer(self.template):
            if mo.group('invalid') is not None:
                return False
            if (mo.group('named') is None
                and mo.group('braced') is None
                and mo.group('escaped') is None):
                # If all the groups are None, there must be
                # another group we're not expecting
                raise ValueError('Unrecognized named group in pattern',
                    self.pattern)
        return True

    def get_identifiers(self):
        ids = []
        for mo in self.pattern.finditer(self.template):
            named = mo.group('named') or mo.group('braced')
            if named is not None and named not in ids:
                # add a named group only the first time it appears
                ids.append(named)
            elif (named is None
                and mo.group('invalid') is None
                and mo.group('escaped') is None):
                # If all the groups are None, there must be
                # another group we're not expecting
                raise ValueError('Unrecognized named group in pattern',
                    self.pattern)
        return ids

# Initialize Template.pattern.  __init_subclass__() is automatically called
# only for subclasses, not for the Template class itself.
Template.__init_subclass__()


########################################################################
# the Formatter class
# see PEP 3101 for details and purpose of this class

# The hard parts are reused from the C implementation.  They're exposed as "_"
# prefixed methods of str.

# The overall parser is implemented in _string.formatter_parser.
# The field name parser is implemented in _string.formatter_field_name_split

class Formatter:
    def format(self, format_string, /, *args, **kwargs):
        return self.vformat(format_string, args, kwargs)

    def vformat(self, format_string, args, kwargs):
        used_args = set()
        result, _ = self._vformat(format_string, args, kwargs, used_args, 2)
        self.check_unused_args(used_args, args, kwargs)
        return result

    def _vformat(self, format_string, args, kwargs, used_args, recursion_depth,
                 auto_arg_index=0):
        if recursion_depth < 0:
            raise ValueError('Max string recursion exceeded')
        result = []
        for literal_text, field_name, format_spec, conversion in \
                self.parse(format_string):

            # output the literal text
            if literal_text:
                result.append(literal_text)

            # if there's a field, output it
            if field_name is not None:
                # this is some markup, find the object and do
                #  the formatting

                # handle arg indexing when empty field_names are given.
                if field_name == '':
                    if auto_arg_index is False:
                        raise ValueError('cannot switch from manual field '
                                         'specification to automatic field '
                                         'numbering')
                    field_name = str(auto_arg_index)
                    auto_arg_index += 1
                elif field_name.isdigit():
                    if auto_arg_index:
                        raise ValueError('cannot switch from manual field '
                                         'specification to automatic field '
                                         'numbering')
                    # disable auto arg incrementing, if it gets
                    # used later on, then an exception will be raised
                    auto_arg_index = False

                # given the field_name, find the object it references
                #  and the argument it came from
                obj, arg_used = self.get_field(field_name, args, kwargs)
                used_args.add(arg_used)

                # do any conversion on the resulting object
                obj = self.convert_field(obj, conversion)

                # expand the format spec, if needed
                format_spec, auto_arg_index = self._vformat(
                    format_spec, args, kwargs,
                    used_args, recursion_depth-1,
                    auto_arg_index=auto_arg_index)

                # format the object and append to the result
                result.append(self.format_field(obj, format_spec))

        return ''.join(result), auto_arg_index


    def get_value(self, key, args, kwargs):
        if isinstance(key, int):
            return args[key]
        else:
            return kwargs[key]


    def check_unused_args(self, used_args, args, kwargs):
        pass


    def format_field(self, value, format_spec):
        return format(value, format_spec)


    def convert_field(self, value, conversion):
        # do any conversion on the resulting object
        if conversion is None:
            return value
        elif conversion == 's':
            return str(value)
        elif conversion == 'r':
            return repr(value)
        elif conversion == 'a':
            return ascii(value)
        raise ValueError("Unknown conversion specifier {0!s}".format(conversion))


    # returns an iterable that contains tuples of the form:
    # (literal_text, field_name, format_spec, conversion)
    # literal_text can be zero length
    # field_name can be None, in which case there's no
    #  object to format and output
    # if field_name is not None, it is looked up, formatted
    #  with format_spec and conversion and then used
    def parse(self, format_string):
        return _string.formatter_parser(format_string)


    # given a field_name, find the object it references.
    #  field_name:   the field being looked up, e.g. "0.name"
    #                 or "lookup[3]"
    #  used_args:    a set of which args have been used
    #  args, kwargs: as passed in to vformat
    def get_field(self, field_name, args, kwargs):
        first, rest = _string.formatter_field_name_split(field_name)

        obj = self.get_value(first, args, kwargs)

        # loop through the rest of the field_name, doing
        #  getattr or getitem as needed
        for is_attr, i in rest:
            if is_attr:
                obj = getattr(obj, i)
            else:
                obj = obj[i]

        return obj, first
