"""Extract, format and print information about Python stack traces."""

import collections.abc
import itertools
import linecache
import sys
import textwrap
from contextlib import suppress

__all__ = ['extract_stack', 'extract_tb', 'format_exception',
           'format_exception_only', 'format_list', 'format_stack',
           'format_tb', 'print_exc', 'format_exc', 'print_exception',
           'print_last', 'print_stack', 'print_tb', 'clear_frames',
           'FrameSummary', 'StackSummary', 'TracebackException',
           'walk_stack', 'walk_tb']

#
# Formatting and printing lists of traceback lines.
#

def print_list(extracted_list, file=None):
    """Print the list of tuples as returned by extract_tb() or
    extract_stack() as a formatted stack trace to the given file."""
    if file is None:
        file = sys.stderr
    for item in StackSummary.from_list(extracted_list).format():
        print(item, file=file, end="")

def format_list(extracted_list):
    """Format a list of tuples or FrameSummary objects for printing.

    Given a list of tuples or FrameSummary objects as returned by
    extract_tb() or extract_stack(), return a list of strings ready
    for printing.

    Each string in the resulting list corresponds to the item with the
    same index in the argument list.  Each string ends in a newline;
    the strings may contain internal newlines as well, for those items
    whose source text line is not None.
    """
    return StackSummary.from_list(extracted_list).format()

#
# Printing and Extracting Tracebacks.
#

def print_tb(tb, limit=None, file=None):
    """Print up to 'limit' stack trace entries from the traceback 'tb'.

    If 'limit' is omitted or None, all entries are printed.  If 'file'
    is omitted or None, the output goes to sys.stderr; otherwise
    'file' should be an open file or file-like object with a write()
    method.
    """
    print_list(extract_tb(tb, limit=limit), file=file)

def format_tb(tb, limit=None):
    """A shorthand for 'format_list(extract_tb(tb, limit))'."""
    return extract_tb(tb, limit=limit).format()

def extract_tb(tb, limit=None):
    """
    Return a StackSummary object representing a list of
    pre-processed entries from traceback.

    This is useful for alternate formatting of stack traces.  If
    'limit' is omitted or None, all entries are extracted.  A
    pre-processed stack trace entry is a FrameSummary object
    containing attributes filename, lineno, name, and line
    representing the information that is usually printed for a stack
    trace.  The line is a string with leading and trailing
    whitespace stripped; if the source is not available it is None.
    """
    return StackSummary._extract_from_extended_frame_gen(
        _walk_tb_with_full_positions(tb), limit=limit)

#
# Exception formatting and output.
#

_cause_message = (
    "\nThe above exception was the direct cause "
    "of the following exception:\n\n")

_context_message = (
    "\nDuring handling of the above exception, "
    "another exception occurred:\n\n")


class _Sentinel:
    def __repr__(self):
        return "<implicit>"

_sentinel = _Sentinel()

def _parse_value_tb(exc, value, tb):
    if (value is _sentinel) != (tb is _sentinel):
        raise ValueError("Both or neither of value and tb must be given")
    if value is tb is _sentinel:
        if exc is not None:
            if isinstance(exc, BaseException):
                return exc, exc.__traceback__

            raise TypeError(f'Exception expected for value, '
                            f'{type(exc).__name__} found')
        else:
            return None, None
    return value, tb


def print_exception(exc, /, value=_sentinel, tb=_sentinel, limit=None, \
                    file=None, chain=True):
    """Print exception up to 'limit' stack trace entries from 'tb' to 'file'.

    This differs from print_tb() in the following ways: (1) if
    traceback is not None, it prints a header "Traceback (most recent
    call last):"; (2) it prints the exception type and value after the
    stack trace; (3) if type is SyntaxError and value has the
    appropriate format, it prints the line where the syntax error
    occurred with a caret on the next line indicating the approximate
    position of the error.
    """
    value, tb = _parse_value_tb(exc, value, tb)
    te = TracebackException(type(value), value, tb, limit=limit, compact=True)
    te.print(file=file, chain=chain)


def format_exception(exc, /, value=_sentinel, tb=_sentinel, limit=None, \
                     chain=True):
    """Format a stack trace and the exception information.

    The arguments have the same meaning as the corresponding arguments
    to print_exception().  The return value is a list of strings, each
    ending in a newline and some containing internal newlines.  When
    these lines are concatenated and printed, exactly the same text is
    printed as does print_exception().
    """
    value, tb = _parse_value_tb(exc, value, tb)
    te = TracebackException(type(value), value, tb, limit=limit, compact=True)
    return list(te.format(chain=chain))


def format_exception_only(exc, /, value=_sentinel):
    """Format the exception part of a traceback.

    The return value is a list of strings, each ending in a newline.

    The list contains the exception's message, which is
    normally a single string; however, for :exc:`SyntaxError` exceptions, it
    contains several lines that (when printed) display detailed information
    about where the syntax error occurred. Following the message, the list
    contains the exception's ``__notes__``.
    """
    if value is _sentinel:
        value = exc
    te = TracebackException(type(value), value, None, compact=True)
    return list(te.format_exception_only())


# -- not official API but folk probably use these two functions.

def _format_final_exc_line(etype, value):
    valuestr = _safe_string(value, 'exception')
    if value is None or not valuestr:
        line = "%s\n" % etype
    else:
        line = "%s: %s\n" % (etype, valuestr)
    return line

def _safe_string(value, what, func=str):
    try:
        return func(value)
    except:
        return f'<{what} {func.__name__}() failed>'

# --

def print_exc(limit=None, file=None, chain=True):
    """Shorthand for 'print_exception(*sys.exc_info(), limit, file)'."""
    print_exception(*sys.exc_info(), limit=limit, file=file, chain=chain)

def format_exc(limit=None, chain=True):
    """Like print_exc() but return a string."""
    return "".join(format_exception(*sys.exc_info(), limit=limit, chain=chain))

def print_last(limit=None, file=None, chain=True):
    """This is a shorthand for 'print_exception(sys.last_type,
    sys.last_value, sys.last_traceback, limit, file)'."""
    if not hasattr(sys, "last_type"):
        raise ValueError("no last exception")
    print_exception(sys.last_type, sys.last_value, sys.last_traceback,
                    limit, file, chain)

#
# Printing and Extracting Stacks.
#

def print_stack(f=None, limit=None, file=None):
    """Print a stack trace from its invocation point.

    The optional 'f' argument can be used to specify an alternate
    stack frame at which to start. The optional 'limit' and 'file'
    arguments have the same meaning as for print_exception().
    """
    if f is None:
        f = sys._getframe().f_back
    print_list(extract_stack(f, limit=limit), file=file)


def format_stack(f=None, limit=None):
    """Shorthand for 'format_list(extract_stack(f, limit))'."""
    if f is None:
        f = sys._getframe().f_back
    return format_list(extract_stack(f, limit=limit))


def extract_stack(f=None, limit=None):
    """Extract the raw traceback from the current stack frame.

    The return value has the same format as for extract_tb().  The
    optional 'f' and 'limit' arguments have the same meaning as for
    print_stack().  Each item in the list is a quadruple (filename,
    line number, function name, text), and the entries are in order
    from oldest to newest stack frame.
    """
    if f is None:
        f = sys._getframe().f_back
    stack = StackSummary.extract(walk_stack(f), limit=limit)
    stack.reverse()
    return stack


def clear_frames(tb):
    "Clear all references to local variables in the frames of a traceback."
    while tb is not None:
        try:
            tb.tb_frame.clear()
        except RuntimeError:
            # Ignore the exception raised if the frame is still executing.
            pass
        tb = tb.tb_next


class FrameSummary:
    """Information about a single frame from a traceback.

    - :attr:`filename` The filename for the frame.
    - :attr:`lineno` The line within filename for the frame that was
      active when the frame was captured.
    - :attr:`name` The name of the function or method that was executing
      when the frame was captured.
    - :attr:`line` The text from the linecache module for the
      of code that was running when the frame was captured.
    - :attr:`locals` Either None if locals were not supplied, or a dict
      mapping the name to the repr() of the variable.
    """

    __slots__ = ('filename', 'lineno', 'end_lineno', 'colno', 'end_colno',
                 'name', '_line', 'locals')

    def __init__(self, filename, lineno, name, *, lookup_line=True,
            locals=None, line=None,
            end_lineno=None, colno=None, end_colno=None):
        """Construct a FrameSummary.

        :param lookup_line: If True, `linecache` is consulted for the source
            code line. Otherwise, the line will be looked up when first needed.
        :param locals: If supplied the frame locals, which will be captured as
            object representations.
        :param line: If provided, use this instead of looking up the line in
            the linecache.
        """
        self.filename = filename
        self.lineno = lineno
        self.name = name
        self._line = line
        if lookup_line:
            self.line
        self.locals = {k: repr(v) for k, v in locals.items()} if locals else None
        self.end_lineno = end_lineno
        self.colno = colno
        self.end_colno = end_colno

    def __eq__(self, other):
        if isinstance(other, FrameSummary):
            return (self.filename == other.filename and
                    self.lineno == other.lineno and
                    self.name == other.name and
                    self.locals == other.locals)
        if isinstance(other, tuple):
            return (self.filename, self.lineno, self.name, self.line) == other
        return NotImplemented

    def __getitem__(self, pos):
        return (self.filename, self.lineno, self.name, self.line)[pos]

    def __iter__(self):
        return iter([self.filename, self.lineno, self.name, self.line])

    def __repr__(self):
        return "<FrameSummary file {filename}, line {lineno} in {name}>".format(
            filename=self.filename, lineno=self.lineno, name=self.name)

    def __len__(self):
        return 4

    @property
    def _original_line(self):
        # Returns the line as-is from the source, without modifying whitespace.
        self.line
        return self._line

    @property
    def line(self):
        if self._line is None:
            if self.lineno is None:
                return None
            self._line = linecache.getline(self.filename, self.lineno)
        return self._line.strip()


def walk_stack(f):
    """Walk a stack yielding the frame and line number for each frame.

    This will follow f.f_back from the given frame. If no frame is given, the
    current stack is used. Usually used with StackSummary.extract.
    """
    if f is None:
        f = sys._getframe().f_back.f_back.f_back.f_back
    while f is not None:
        yield f, f.f_lineno
        f = f.f_back


def walk_tb(tb):
    """Walk a traceback yielding the frame and line number for each frame.

    This will follow tb.tb_next (and thus is in the opposite order to
    walk_stack). Usually used with StackSummary.extract.
    """
    while tb is not None:
        yield tb.tb_frame, tb.tb_lineno
        tb = tb.tb_next


def _walk_tb_with_full_positions(tb):
    # Internal version of walk_tb that yields full code positions including
    # end line and column information.
    while tb is not None:
        positions = _get_code_position(tb.tb_frame.f_code, tb.tb_lasti)
        # Yield tb_lineno when co_positions does not have a line number to
        # maintain behavior with walk_tb.
        if positions[0] is None:
            yield tb.tb_frame, (tb.tb_lineno, ) + positions[1:]
        else:
            yield tb.tb_frame, positions
        tb = tb.tb_next


def _get_code_position(code, instruction_index):
    if instruction_index < 0:
        return (None, None, None, None)
    positions_gen = code.co_positions()
    return next(itertools.islice(positions_gen, instruction_index // 2, None))


_RECURSIVE_CUTOFF = 3 # Also hardcoded in traceback.c.

class StackSummary(list):
    """A list of FrameSummary objects, representing a stack of frames."""

    @classmethod
    def extract(klass, frame_gen, *, limit=None, lookup_lines=True,
            capture_locals=False):
        """Create a StackSummary from a traceback or stack object.

        :param frame_gen: A generator that yields (frame, lineno) tuples
            whose summaries are to be included in the stack.
        :param limit: None to include all frames or the number of frames to
            include.
        :param lookup_lines: If True, lookup lines for each frame immediately,
            otherwise lookup is deferred until the frame is rendered.
        :param capture_locals: If True, the local variables from each frame will
            be captured as object representations into the FrameSummary.
        """
        def extended_frame_gen():
            for f, lineno in frame_gen:
                yield f, (lineno, None, None, None)

        return klass._extract_from_extended_frame_gen(
            extended_frame_gen(), limit=limit, lookup_lines=lookup_lines,
            capture_locals=capture_locals)

    @classmethod
    def _extract_from_extended_frame_gen(klass, frame_gen, *, limit=None,
            lookup_lines=True, capture_locals=False):
        # Same as extract but operates on a frame generator that yields
        # (frame, (lineno, end_lineno, colno, end_colno)) in the stack.
        # Only lineno is required, the remaining fields can be None if the
        # information is not available.
        if limit is None:
            limit = getattr(sys, 'tracebacklimit', None)
            if limit is not None and limit < 0:
                limit = 0
        if limit is not None:
            if limit >= 0:
                frame_gen = itertools.islice(frame_gen, limit)
            else:
                frame_gen = collections.deque(frame_gen, maxlen=-limit)

        result = klass()
        fnames = set()
        for f, (lineno, end_lineno, colno, end_colno) in frame_gen:
            co = f.f_code
            filename = co.co_filename
            name = co.co_name

            fnames.add(filename)
            linecache.lazycache(filename, f.f_globals)
            # Must defer line lookups until we have called checkcache.
            if capture_locals:
                f_locals = f.f_locals
            else:
                f_locals = None
            result.append(FrameSummary(
                filename, lineno, name, lookup_line=False, locals=f_locals,
                end_lineno=end_lineno, colno=colno, end_colno=end_colno))
        for filename in fnames:
            linecache.checkcache(filename)
        # If immediate lookup was desired, trigger lookups now.
        if lookup_lines:
            for f in result:
                f.line
        return result

    @classmethod
    def from_list(klass, a_list):
        """
        Create a StackSummary object from a supplied list of
        FrameSummary objects or old-style list of tuples.
        """
        # While doing a fast-path check for isinstance(a_list, StackSummary) is
        # appealing, idlelib.run.cleanup_traceback and other similar code may
        # break this by making arbitrary frames plain tuples, so we need to
        # check on a frame by frame basis.
        result = StackSummary()
        for frame in a_list:
            if isinstance(frame, FrameSummary):
                result.append(frame)
            else:
                filename, lineno, name, line = frame
                result.append(FrameSummary(filename, lineno, name, line=line))
        return result

    def format_frame_summary(self, frame_summary):
        """Format the lines for a single FrameSummary.

        Returns a string representing one frame involved in the stack. This
        gets called for every frame to be printed in the stack summary.
        """
        row = []
        row.append('  File "{}", line {}, in {}\n'.format(
            frame_summary.filename, frame_summary.lineno, frame_summary.name))
        if frame_summary.line:
            stripped_line = frame_summary.line.strip()
            row.append('    {}\n'.format(stripped_line))

            line = frame_summary._original_line
            orig_line_len = len(line)
            frame_line_len = len(frame_summary.line.lstrip())
            stripped_characters = orig_line_len - frame_line_len
            if (
                frame_summary.colno is not None
                and frame_summary.end_colno is not None
            ):
                start_offset = _byte_offset_to_character_offset(
                    line, frame_summary.colno)
                end_offset = _byte_offset_to_character_offset(
                    line, frame_summary.end_colno)
                code_segment = line[start_offset:end_offset]

                anchors = None
                if frame_summary.lineno == frame_summary.end_lineno:
                    with suppress(Exception):
                        anchors = _extract_caret_anchors_from_line_segment(code_segment)
                else:
                    # Don't count the newline since the anchors only need to
                    # go up until the last character of the line.
                    end_offset = len(line.rstrip())

                # show indicators if primary char doesn't span the frame line
                if end_offset - start_offset < len(stripped_line) or (
                        anchors and anchors.right_start_offset - anchors.left_end_offset > 0):
                    # When showing this on a terminal, some of the non-ASCII characters
                    # might be rendered as double-width characters, so we need to take
                    # that into account when calculating the length of the line.
                    dp_start_offset = _display_width(line, start_offset) + 1
                    dp_end_offset = _display_width(line, end_offset) + 1

                    row.append('    ')
                    row.append(' ' * (dp_start_offset - stripped_characters))

                    if anchors:
                        dp_left_end_offset = _display_width(code_segment, anchors.left_end_offset)
                        dp_right_start_offset = _display_width(code_segment, anchors.right_start_offset)
                        row.append(anchors.primary_char * dp_left_end_offset)
                        row.append(anchors.secondary_char * (dp_right_start_offset - dp_left_end_offset))
                        row.append(anchors.primary_char * (dp_end_offset - dp_start_offset - dp_right_start_offset))
                    else:
                        row.append('^' * (dp_end_offset - dp_start_offset))

                    row.append('\n')

        if frame_summary.locals:
            for name, value in sorted(frame_summary.locals.items()):
                row.append('    {name} = {value}\n'.format(name=name, value=value))

        return ''.join(row)

    def format(self):
        """Format the stack ready for printing.

        Returns a list of strings ready for printing.  Each string in the
        resulting list corresponds to a single frame from the stack.
        Each string ends in a newline; the strings may contain internal
        newlines as well, for those items with source text lines.

        For long sequences of the same frame and line, the first few
        repetitions are shown, followed by a summary line stating the exact
        number of further repetitions.
        """
        result = []
        last_file = None
        last_line = None
        last_name = None
        count = 0
        for frame_summary in self:
            formatted_frame = self.format_frame_summary(frame_summary)
            if formatted_frame is None:
                continue
            if (last_file is None or last_file != frame_summary.filename or
                last_line is None or last_line != frame_summary.lineno or
                last_name is None or last_name != frame_summary.name):
                if count > _RECURSIVE_CUTOFF:
                    count -= _RECURSIVE_CUTOFF
                    result.append(
                        f'  [Previous line repeated {count} more '
                        f'time{"s" if count > 1 else ""}]\n'
                    )
                last_file = frame_summary.filename
                last_line = frame_summary.lineno
                last_name = frame_summary.name
                count = 0
            count += 1
            if count > _RECURSIVE_CUTOFF:
                continue
            result.append(formatted_frame)

        if count > _RECURSIVE_CUTOFF:
            count -= _RECURSIVE_CUTOFF
            result.append(
                f'  [Previous line repeated {count} more '
                f'time{"s" if count > 1 else ""}]\n'
            )
        return result


def _byte_offset_to_character_offset(str, offset):
    as_utf8 = str.encode('utf-8')
    return len(as_utf8[:offset].decode("utf-8", errors="replace"))


_Anchors = collections.namedtuple(
    "_Anchors",
    [
        "left_end_offset",
        "right_start_offset",
        "primary_char",
        "secondary_char",
    ],
    defaults=["~", "^"]
)

def _extract_caret_anchors_from_line_segment(segment):
    import ast

    try:
        tree = ast.parse(segment)
    except SyntaxError:
        return None

    if len(tree.body) != 1:
        return None

    normalize = lambda offset: _byte_offset_to_character_offset(segment, offset)
    statement = tree.body[0]
    match statement:
        case ast.Expr(expr):
            match expr:
                case ast.BinOp():
                    operator_start = normalize(expr.left.end_col_offset)
                    operator_end = normalize(expr.right.col_offset)
                    operator_str = segment[operator_start:operator_end]
                    operator_offset = len(operator_str) - len(operator_str.lstrip())

                    left_anchor = expr.left.end_col_offset + operator_offset
                    right_anchor = left_anchor + 1
                    if (
                        operator_offset + 1 < len(operator_str)
                        and not operator_str[operator_offset + 1].isspace()
                    ):
                        right_anchor += 1

                    while left_anchor < len(segment) and ((ch := segment[left_anchor]).isspace() or ch in ")#"):
                        left_anchor += 1
                        right_anchor += 1
                    return _Anchors(normalize(left_anchor), normalize(right_anchor))
                case ast.Subscript():
                    left_anchor = normalize(expr.value.end_col_offset)
                    right_anchor = normalize(expr.slice.end_col_offset + 1)
                    while left_anchor < len(segment) and ((ch := segment[left_anchor]).isspace() or ch != "["):
                        left_anchor += 1
                    while right_anchor < len(segment) and ((ch := segment[right_anchor]).isspace() or ch != "]"):
                        right_anchor += 1
                    if right_anchor < len(segment):
                        right_anchor += 1
                    return _Anchors(left_anchor, right_anchor)

    return None

_WIDE_CHAR_SPECIFIERS = "WF"

def _display_width(line, offset):
    """Calculate the extra amount of width space the given source
    code segment might take if it were to be displayed on a fixed
    width output device. Supports wide unicode characters and emojis."""

    # Fast track for ASCII-only strings
    if line.isascii():
        return offset

    import unicodedata

    return sum(
        2 if unicodedata.east_asian_width(char) in _WIDE_CHAR_SPECIFIERS else 1
        for char in line[:offset]
    )



class _ExceptionPrintContext:
    def __init__(self):
        self.seen = set()
        self.exception_group_depth = 0
        self.need_close = False

    def indent(self):
        return ' ' * (2 * self.exception_group_depth)

    def emit(self, text_gen, margin_char=None):
        if margin_char is None:
            margin_char = '|'
        indent_str = self.indent()
        if self.exception_group_depth:
            indent_str += margin_char + ' '

        if isinstance(text_gen, str):
            yield textwrap.indent(text_gen, indent_str, lambda line: True)
        else:
            for text in text_gen:
                yield textwrap.indent(text, indent_str, lambda line: True)


class TracebackException:
    """An exception ready for rendering.

    The traceback module captures enough attributes from the original exception
    to this intermediary form to ensure that no references are held, while
    still being able to fully print or format it.

    max_group_width and max_group_depth control the formatting of exception
    groups. The depth refers to the nesting level of the group, and the width
    refers to the size of a single exception group's exceptions array. The
    formatted output is truncated when either limit is exceeded.

    Use `from_exception` to create TracebackException instances from exception
    objects, or the constructor to create TracebackException instances from
    individual components.

    - :attr:`__cause__` A TracebackException of the original *__cause__*.
    - :attr:`__context__` A TracebackException of the original *__context__*.
    - :attr:`exceptions` For exception groups - a list of TracebackException
      instances for the nested *exceptions*.  ``None`` for other exceptions.
    - :attr:`__suppress_context__` The *__suppress_context__* value from the
      original exception.
    - :attr:`stack` A `StackSummary` representing the traceback.
    - :attr:`exc_type` The class of the original traceback.
    - :attr:`filename` For syntax errors - the filename where the error
      occurred.
    - :attr:`lineno` For syntax errors - the linenumber where the error
      occurred.
    - :attr:`end_lineno` For syntax errors - the end linenumber where the error
      occurred. Can be `None` if not present.
    - :attr:`text` For syntax errors - the text where the error
      occurred.
    - :attr:`offset` For syntax errors - the offset into the text where the
      error occurred.
    - :attr:`end_offset` For syntax errors - the end offset into the text where
      the error occurred. Can be `None` if not present.
    - :attr:`msg` For syntax errors - the compiler error message.
    """

    def __init__(self, exc_type, exc_value, exc_traceback, *, limit=None,
            lookup_lines=True, capture_locals=False, compact=False,
            max_group_width=15, max_group_depth=10, _seen=None):
        # NB: we need to accept exc_traceback, exc_value, exc_traceback to
        # permit backwards compat with the existing API, otherwise we
        # need stub thunk objects just to glue it together.
        # Handle loops in __cause__ or __context__.
        is_recursive_call = _seen is not None
        if _seen is None:
            _seen = set()
        _seen.add(id(exc_value))

        self.max_group_width = max_group_width
        self.max_group_depth = max_group_depth

        self.stack = StackSummary._extract_from_extended_frame_gen(
            _walk_tb_with_full_positions(exc_traceback),
            limit=limit, lookup_lines=lookup_lines,
            capture_locals=capture_locals)
        self.exc_type = exc_type
        # Capture now to permit freeing resources: only complication is in the
        # unofficial API _format_final_exc_line
        self._str = _safe_string(exc_value, 'exception')
        self.__notes__ = getattr(exc_value, '__notes__', None)

        if exc_type and issubclass(exc_type, SyntaxError):
            # Handle SyntaxError's specially
            self.filename = exc_value.filename
            lno = exc_value.lineno
            self.lineno = str(lno) if lno is not None else None
            end_lno = exc_value.end_lineno
            self.end_lineno = str(end_lno) if end_lno is not None else None
            self.text = exc_value.text
            self.offset = exc_value.offset
            self.end_offset = exc_value.end_offset
            self.msg = exc_value.msg
        if lookup_lines:
            self._load_lines()
        self.__suppress_context__ = \
            exc_value.__suppress_context__ if exc_value is not None else False

        # Convert __cause__ and __context__ to `TracebackExceptions`s, use a
        # queue to avoid recursion (only the top-level call gets _seen == None)
        if not is_recursive_call:
            queue = [(self, exc_value)]
            while queue:
                te, e = queue.pop()
                if (e and e.__cause__ is not None
                    and id(e.__cause__) not in _seen):
                    cause = TracebackException(
                        type(e.__cause__),
                        e.__cause__,
                        e.__cause__.__traceback__,
                        limit=limit,
                        lookup_lines=lookup_lines,
                        capture_locals=capture_locals,
                        max_group_width=max_group_width,
                        max_group_depth=max_group_depth,
                        _seen=_seen)
                else:
                    cause = None

                if compact:
                    need_context = (cause is None and
                                    e is not None and
                                    not e.__suppress_context__)
                else:
                    need_context = True
                if (e and e.__context__ is not None
                    and need_context and id(e.__context__) not in _seen):
                    context = TracebackException(
                        type(e.__context__),
                        e.__context__,
                        e.__context__.__traceback__,
                        limit=limit,
                        lookup_lines=lookup_lines,
                        capture_locals=capture_locals,
                        max_group_width=max_group_width,
                        max_group_depth=max_group_depth,
                        _seen=_seen)
                else:
                    context = None

                if e and isinstance(e, BaseExceptionGroup):
                    exceptions = []
                    for exc in e.exceptions:
                        texc = TracebackException(
                            type(exc),
                            exc,
                            exc.__traceback__,
                            limit=limit,
                            lookup_lines=lookup_lines,
                            capture_locals=capture_locals,
                            max_group_width=max_group_width,
                            max_group_depth=max_group_depth,
                            _seen=_seen)
                        exceptions.append(texc)
                else:
                    exceptions = None

                te.__cause__ = cause
                te.__context__ = context
                te.exceptions = exceptions
                if cause:
                    queue.append((te.__cause__, e.__cause__))
                if context:
                    queue.append((te.__context__, e.__context__))
                if exceptions:
                    queue.extend(zip(te.exceptions, e.exceptions))

    @classmethod
    def from_exception(cls, exc, *args, **kwargs):
        """Create a TracebackException from an exception."""
        return cls(type(exc), exc, exc.__traceback__, *args, **kwargs)

    def _load_lines(self):
        """Private API. force all lines in the stack to be loaded."""
        for frame in self.stack:
            frame.line

    def __eq__(self, other):
        if isinstance(other, TracebackException):
            return self.__dict__ == other.__dict__
        return NotImplemented

    def __str__(self):
        return self._str

    def format_exception_only(self):
        """Format the exception part of the traceback.

        The return value is a generator of strings, each ending in a newline.

        Generator yields the exception message.
        For :exc:`SyntaxError` exceptions, it
        also yields (before the exception message)
        several lines that (when printed)
        display detailed information about where the syntax error occurred.
        Following the message, generator also yields
        all the exception's ``__notes__``.
        """
        if self.exc_type is None:
            yield _format_final_exc_line(None, self._str)
            return

        stype = self.exc_type.__qualname__
        smod = self.exc_type.__module__
        if smod not in ("__main__", "builtins"):
            if not isinstance(smod, str):
                smod = "<unknown>"
            stype = smod + '.' + stype

        if not issubclass(self.exc_type, SyntaxError):
            yield _format_final_exc_line(stype, self._str)
        else:
            yield from self._format_syntax_error(stype)
        if isinstance(self.__notes__, collections.abc.Sequence):
            for note in self.__notes__:
                note = _safe_string(note, 'note')
                yield from [l + '\n' for l in note.split('\n')]
        elif self.__notes__ is not None:
            yield _safe_string(self.__notes__, '__notes__', func=repr)

    def _format_syntax_error(self, stype):
        """Format SyntaxError exceptions (internal helper)."""
        # Show exactly where the problem was found.
        filename_suffix = ''
        if self.lineno is not None:
            yield '  File "{}", line {}\n'.format(
                self.filename or "<string>", self.lineno)
        elif self.filename is not None:
            filename_suffix = ' ({})'.format(self.filename)

        text = self.text
        if text is not None:
            # text  = "   foo\n"
            # rtext = "   foo"
            # ltext =    "foo"
            rtext = text.rstrip('\n')
            ltext = rtext.lstrip(' \n\f')
            spaces = len(rtext) - len(ltext)
            yield '    {}\n'.format(ltext)

            if self.offset is not None:
                offset = self.offset
                end_offset = self.end_offset if self.end_offset not in {None, 0} else offset
                if offset == end_offset or end_offset == -1:
                    end_offset = offset + 1

                # Convert 1-based column offset to 0-based index into stripped text
                colno = offset - 1 - spaces
                end_colno = end_offset - 1 - spaces
                if colno >= 0:
                    # non-space whitespace (likes tabs) must be kept for alignment
                    caretspace = ((c if c.isspace() else ' ') for c in ltext[:colno])
                    yield '    {}{}'.format("".join(caretspace), ('^' * (end_colno - colno) + "\n"))
        msg = self.msg or "<no detail available>"
        yield "{}: {}{}\n".format(stype, msg, filename_suffix)

    def format(self, *, chain=True, _ctx=None):
        """Format the exception.

        If chain is not *True*, *__cause__* and *__context__* will not be formatted.

        The return value is a generator of strings, each ending in a newline and
        some containing internal newlines. `print_exception` is a wrapper around
        this method which just prints the lines to a file.

        The message indicating which exception occurred is always the last
        string in the output.
        """

        if _ctx is None:
            _ctx = _ExceptionPrintContext()

        output = []
        exc = self
        if chain:
            while exc:
                if exc.__cause__ is not None:
                    chained_msg = _cause_message
                    chained_exc = exc.__cause__
                elif (exc.__context__  is not None and
                      not exc.__suppress_context__):
                    chained_msg = _context_message
                    chained_exc = exc.__context__
                else:
                    chained_msg = None
                    chained_exc = None

                output.append((chained_msg, exc))
                exc = chained_exc
        else:
            output.append((None, exc))

        for msg, exc in reversed(output):
            if msg is not None:
                yield from _ctx.emit(msg)
            if exc.exceptions is None:
                if exc.stack:
                    yield from _ctx.emit('Traceback (most recent call last):\n')
                    yield from _ctx.emit(exc.stack.format())
                yield from _ctx.emit(exc.format_exception_only())
            elif _ctx.exception_group_depth > self.max_group_depth:
                # exception group, but depth exceeds limit
                yield from _ctx.emit(
                    f"... (max_group_depth is {self.max_group_depth})\n")
            else:
                # format exception group
                is_toplevel = (_ctx.exception_group_depth == 0)
                if is_toplevel:
                    _ctx.exception_group_depth += 1

                if exc.stack:
                    yield from _ctx.emit(
                        'Exception Group Traceback (most recent call last):\n',
                        margin_char = '+' if is_toplevel else None)
                    yield from _ctx.emit(exc.stack.format())

                yield from _ctx.emit(exc.format_exception_only())
                num_excs = len(exc.exceptions)
                if num_excs <= self.max_group_width:
                    n = num_excs
                else:
                    n = self.max_group_width + 1
                _ctx.need_close = False
                for i in range(n):
                    last_exc = (i == n-1)
                    if last_exc:
                        # The closing frame may be added by a recursive call
                        _ctx.need_close = True

                    if self.max_group_width is not None:
                        truncated = (i >= self.max_group_width)
                    else:
                        truncated = False
                    title = f'{i+1}' if not truncated else '...'
                    yield (_ctx.indent() +
                           ('+-' if i==0 else '  ') +
                           f'+---------------- {title} ----------------\n')
                    _ctx.exception_group_depth += 1
                    if not truncated:
                        yield from exc.exceptions[i].format(chain=chain, _ctx=_ctx)
                    else:
                        remaining = num_excs - self.max_group_width
                        plural = 's' if remaining > 1 else ''
                        yield from _ctx.emit(
                            f"and {remaining} more exception{plural}\n")

                    if last_exc and _ctx.need_close:
                        yield (_ctx.indent() +
                               "+------------------------------------\n")
                        _ctx.need_close = False
                    _ctx.exception_group_depth -= 1

                if is_toplevel:
                    assert _ctx.exception_group_depth == 1
                    _ctx.exception_group_depth = 0


    def print(self, *, file=None, chain=True):
        """Print the result of self.format(chain=chain) to 'file'."""
        if file is None:
            file = sys.stderr
        for line in self.format(chain=chain):
            print(line, file=file, end="")
