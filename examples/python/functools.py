"""functools.py - Tools for working with functions and callable objects
"""
# Python module wrapper for _functools C module
# to allow utilities written in Python to be added
# to the functools module.
# Written by Nick Coghlan <ncoghlan at gmail.com>,
# Raymond Hettinger <python at rcn.com>,
# and Łukasz Langa <lukasz at langa.pl>.
#   Copyright (C) 2006-2013 Python Software Foundation.
# See C source code for _functools credits/copyright

__all__ = ['update_wrapper', 'wraps', 'WRAPPER_ASSIGNMENTS', 'WRAPPER_UPDATES',
           'total_ordering', 'cache', 'cmp_to_key', 'lru_cache', 'reduce',
           'partial', 'partialmethod', 'singledispatch', 'singledispatchmethod',
           'cached_property']

from abc import get_cache_token
from collections import namedtuple
# import types, weakref  # Deferred to single_dispatch()
from reprlib import recursive_repr
from _thread import RLock
from types import GenericAlias


################################################################################
### update_wrapper() and wraps() decorator
################################################################################

# update_wrapper() and wraps() are tools to help write
# wrapper functions that can handle naive introspection

WRAPPER_ASSIGNMENTS = ('__module__', '__name__', '__qualname__', '__doc__',
                       '__annotations__')
WRAPPER_UPDATES = ('__dict__',)
def update_wrapper(wrapper,
                   wrapped,
                   assigned = WRAPPER_ASSIGNMENTS,
                   updated = WRAPPER_UPDATES):
    """Update a wrapper function to look like the wrapped function

       wrapper is the function to be updated
       wrapped is the original function
       assigned is a tuple naming the attributes assigned directly
       from the wrapped function to the wrapper function (defaults to
       functools.WRAPPER_ASSIGNMENTS)
       updated is a tuple naming the attributes of the wrapper that
       are updated with the corresponding attribute from the wrapped
       function (defaults to functools.WRAPPER_UPDATES)
    """
    for attr in assigned:
        try:
            value = getattr(wrapped, attr)
        except AttributeError:
            pass
        else:
            setattr(wrapper, attr, value)
    for attr in updated:
        getattr(wrapper, attr).update(getattr(wrapped, attr, {}))
    # Issue #17482: set __wrapped__ last so we don't inadvertently copy it
    # from the wrapped function when updating __dict__
    wrapper.__wrapped__ = wrapped
    # Return the wrapper so this can be used as a decorator via partial()
    return wrapper

def wraps(wrapped,
          assigned = WRAPPER_ASSIGNMENTS,
          updated = WRAPPER_UPDATES):
    """Decorator factory to apply update_wrapper() to a wrapper function

       Returns a decorator that invokes update_wrapper() with the decorated
       function as the wrapper argument and the arguments to wraps() as the
       remaining arguments. Default arguments are as for update_wrapper().
       This is a convenience function to simplify applying partial() to
       update_wrapper().
    """
    return partial(update_wrapper, wrapped=wrapped,
                   assigned=assigned, updated=updated)


################################################################################
### total_ordering class decorator
################################################################################

# The total ordering functions all invoke the root magic method directly
# rather than using the corresponding operator.  This avoids possible
# infinite recursion that could occur when the operator dispatch logic
# detects a NotImplemented result and then calls a reflected method.

def _gt_from_lt(self, other):
    'Return a > b.  Computed by @total_ordering from (not a < b) and (a != b).'
    op_result = type(self).__lt__(self, other)
    if op_result is NotImplemented:
        return op_result
    return not op_result and self != other

def _le_from_lt(self, other):
    'Return a <= b.  Computed by @total_ordering from (a < b) or (a == b).'
    op_result = type(self).__lt__(self, other)
    if op_result is NotImplemented:
        return op_result
    return op_result or self == other

def _ge_from_lt(self, other):
    'Return a >= b.  Computed by @total_ordering from (not a < b).'
    op_result = type(self).__lt__(self, other)
    if op_result is NotImplemented:
        return op_result
    return not op_result

def _ge_from_le(self, other):
    'Return a >= b.  Computed by @total_ordering from (not a <= b) or (a == b).'
    op_result = type(self).__le__(self, other)
    if op_result is NotImplemented:
        return op_result
    return not op_result or self == other

def _lt_from_le(self, other):
    'Return a < b.  Computed by @total_ordering from (a <= b) and (a != b).'
    op_result = type(self).__le__(self, other)
    if op_result is NotImplemented:
        return op_result
    return op_result and self != other

def _gt_from_le(self, other):
    'Return a > b.  Computed by @total_ordering from (not a <= b).'
    op_result = type(self).__le__(self, other)
    if op_result is NotImplemented:
        return op_result
    return not op_result

def _lt_from_gt(self, other):
    'Return a < b.  Computed by @total_ordering from (not a > b) and (a != b).'
    op_result = type(self).__gt__(self, other)
    if op_result is NotImplemented:
        return op_result
    return not op_result and self != other

def _ge_from_gt(self, other):
    'Return a >= b.  Computed by @total_ordering from (a > b) or (a == b).'
    op_result = type(self).__gt__(self, other)
    if op_result is NotImplemented:
        return op_result
    return op_result or self == other

def _le_from_gt(self, other):
    'Return a <= b.  Computed by @total_ordering from (not a > b).'
    op_result = type(self).__gt__(self, other)
    if op_result is NotImplemented:
        return op_result
    return not op_result

def _le_from_ge(self, other):
    'Return a <= b.  Computed by @total_ordering from (not a >= b) or (a == b).'
    op_result = type(self).__ge__(self, other)
    if op_result is NotImplemented:
        return op_result
    return not op_result or self == other

def _gt_from_ge(self, other):
    'Return a > b.  Computed by @total_ordering from (a >= b) and (a != b).'
    op_result = type(self).__ge__(self, other)
    if op_result is NotImplemented:
        return op_result
    return op_result and self != other

def _lt_from_ge(self, other):
    'Return a < b.  Computed by @total_ordering from (not a >= b).'
    op_result = type(self).__ge__(self, other)
    if op_result is NotImplemented:
        return op_result
    return not op_result

_convert = {
    '__lt__': [('__gt__', _gt_from_lt),
               ('__le__', _le_from_lt),
               ('__ge__', _ge_from_lt)],
    '__le__': [('__ge__', _ge_from_le),
               ('__lt__', _lt_from_le),
               ('__gt__', _gt_from_le)],
    '__gt__': [('__lt__', _lt_from_gt),
               ('__ge__', _ge_from_gt),
               ('__le__', _le_from_gt)],
    '__ge__': [('__le__', _le_from_ge),
               ('__gt__', _gt_from_ge),
               ('__lt__', _lt_from_ge)]
}

def total_ordering(cls):
    """Class decorator that fills in missing ordering methods"""
    # Find user-defined comparisons (not those inherited from object).
    roots = {op for op in _convert if getattr(cls, op, None) is not getattr(object, op, None)}
    if not roots:
        raise ValueError('must define at least one ordering operation: < > <= >=')
    root = max(roots)       # prefer __lt__ to __le__ to __gt__ to __ge__
    for opname, opfunc in _convert[root]:
        if opname not in roots:
            opfunc.__name__ = opname
            setattr(cls, opname, opfunc)
    return cls


################################################################################
### cmp_to_key() function converter
################################################################################

def cmp_to_key(mycmp):
    """Convert a cmp= function into a key= function"""
    class K(object):
        __slots__ = ['obj']
        def __init__(self, obj):
            self.obj = obj
        def __lt__(self, other):
            return mycmp(self.obj, other.obj) < 0
        def __gt__(self, other):
            return mycmp(self.obj, other.obj) > 0
        def __eq__(self, other):
            return mycmp(self.obj, other.obj) == 0
        def __le__(self, other):
            return mycmp(self.obj, other.obj) <= 0
        def __ge__(self, other):
            return mycmp(self.obj, other.obj) >= 0
        __hash__ = None
    return K

try:
    from _functools import cmp_to_key
except ImportError:
    pass


################################################################################
### reduce() sequence to a single item
################################################################################

_initial_missing = object()

def reduce(function, sequence, initial=_initial_missing):
    """
    reduce(function, iterable[, initial]) -> value

    Apply a function of two arguments cumulatively to the items of a sequence
    or iterable, from left to right, so as to reduce the iterable to a single
    value.  For example, reduce(lambda x, y: x+y, [1, 2, 3, 4, 5]) calculates
    ((((1+2)+3)+4)+5).  If initial is present, it is placed before the items
    of the iterable in the calculation, and serves as a default when the
    iterable is empty.
    """

    it = iter(sequence)

    if initial is _initial_missing:
        try:
            value = next(it)
        except StopIteration:
            raise TypeError(
                "reduce() of empty iterable with no initial value") from None
    else:
        value = initial

    for element in it:
        value = function(value, element)

    return value

try:
    from _functools import reduce
except ImportError:
    pass


################################################################################
### partial() argument application
################################################################################

# Purely functional, no descriptor behaviour
class partial:
    """New function with partial application of the given arguments
    and keywords.
    """

    __slots__ = "func", "args", "keywords", "__dict__", "__weakref__"

    def __new__(cls, func, /, *args, **keywords):
        if not callable(func):
            raise TypeError("the first argument must be callable")

        if hasattr(func, "func"):
            args = func.args + args
            keywords = {**func.keywords, **keywords}
            func = func.func

        self = super(partial, cls).__new__(cls)

        self.func = func
        self.args = args
        self.keywords = keywords
        return self

    def __call__(self, /, *args, **keywords):
        keywords = {**self.keywords, **keywords}
        return self.func(*self.args, *args, **keywords)

    @recursive_repr()
    def __repr__(self):
        qualname = type(self).__qualname__
        args = [repr(self.func)]
        args.extend(repr(x) for x in self.args)
        args.extend(f"{k}={v!r}" for (k, v) in self.keywords.items())
        if type(self).__module__ == "functools":
            return f"functools.{qualname}({', '.join(args)})"
        return f"{qualname}({', '.join(args)})"

    def __reduce__(self):
        return type(self), (self.func,), (self.func, self.args,
               self.keywords or None, self.__dict__ or None)

    def __setstate__(self, state):
        if not isinstance(state, tuple):
            raise TypeError("argument to __setstate__ must be a tuple")
        if len(state) != 4:
            raise TypeError(f"expected 4 items in state, got {len(state)}")
        func, args, kwds, namespace = state
        if (not callable(func) or not isinstance(args, tuple) or
           (kwds is not None and not isinstance(kwds, dict)) or
           (namespace is not None and not isinstance(namespace, dict))):
            raise TypeError("invalid partial state")

        args = tuple(args) # just in case it's a subclass
        if kwds is None:
            kwds = {}
        elif type(kwds) is not dict: # XXX does it need to be *exactly* dict?
            kwds = dict(kwds)
        if namespace is None:
            namespace = {}

        self.__dict__ = namespace
        self.func = func
        self.args = args
        self.keywords = kwds

try:
    from _functools import partial
except ImportError:
    pass

# Descriptor version
class partialmethod(object):
    """Method descriptor with partial application of the given arguments
    and keywords.

    Supports wrapping existing descriptors and handles non-descriptor
    callables as instance methods.
    """

    def __init__(self, func, /, *args, **keywords):
        if not callable(func) and not hasattr(func, "__get__"):
            raise TypeError("{!r} is not callable or a descriptor"
                                 .format(func))

        # func could be a descriptor like classmethod which isn't callable,
        # so we can't inherit from partial (it verifies func is callable)
        if isinstance(func, partialmethod):
            # flattening is mandatory in order to place cls/self before all
            # other arguments
            # it's also more efficient since only one function will be called
            self.func = func.func
            self.args = func.args + args
            self.keywords = {**func.keywords, **keywords}
        else:
            self.func = func
            self.args = args
            self.keywords = keywords

    def __repr__(self):
        args = ", ".join(map(repr, self.args))
        keywords = ", ".join("{}={!r}".format(k, v)
                                 for k, v in self.keywords.items())
        format_string = "{module}.{cls}({func}, {args}, {keywords})"
        return format_string.format(module=self.__class__.__module__,
                                    cls=self.__class__.__qualname__,
                                    func=self.func,
                                    args=args,
                                    keywords=keywords)

    def _make_unbound_method(self):
        def _method(cls_or_self, /, *args, **keywords):
            keywords = {**self.keywords, **keywords}
            return self.func(cls_or_self, *self.args, *args, **keywords)
        _method.__isabstractmethod__ = self.__isabstractmethod__
        _method._partialmethod = self
        return _method

    def __get__(self, obj, cls=None):
        get = getattr(self.func, "__get__", None)
        result = None
        if get is not None:
            new_func = get(obj, cls)
            if new_func is not self.func:
                # Assume __get__ returning something new indicates the
                # creation of an appropriate callable
                result = partial(new_func, *self.args, **self.keywords)
                try:
                    result.__self__ = new_func.__self__
                except AttributeError:
                    pass
        if result is None:
            # If the underlying descriptor didn't do anything, treat this
            # like an instance method
            result = self._make_unbound_method().__get__(obj, cls)
        return result

    @property
    def __isabstractmethod__(self):
        return getattr(self.func, "__isabstractmethod__", False)

    __class_getitem__ = classmethod(GenericAlias)


# Helper functions

def _unwrap_partial(func):
    while isinstance(func, partial):
        func = func.func
    return func

################################################################################
### LRU Cache function decorator
################################################################################

_CacheInfo = namedtuple("CacheInfo", ["hits", "misses", "maxsize", "currsize"])

class _HashedSeq(list):
    """ This class guarantees that hash() will be called no more than once
        per element.  This is important because the lru_cache() will hash
        the key multiple times on a cache miss.

    """

    __slots__ = 'hashvalue'

    def __init__(self, tup, hash=hash):
        self[:] = tup
        self.hashvalue = hash(tup)

    def __hash__(self):
        return self.hashvalue

def _make_key(args, kwds, typed,
             kwd_mark = (object(),),
             fasttypes = {int, str},
             tuple=tuple, type=type, len=len):
    """Make a cache key from optionally typed positional and keyword arguments

    The key is constructed in a way that is flat as possible rather than
    as a nested structure that would take more memory.

    If there is only a single argument and its data type is known to cache
    its hash value, then that argument is returned without a wrapper.  This
    saves space and improves lookup speed.

    """
    # All of code below relies on kwds preserving the order input by the user.
    # Formerly, we sorted() the kwds before looping.  The new way is *much*
    # faster; however, it means that f(x=1, y=2) will now be treated as a
    # distinct call from f(y=2, x=1) which will be cached separately.
    key = args
    if kwds:
        key += kwd_mark
        for item in kwds.items():
            key += item
    if typed:
        key += tuple(type(v) for v in args)
        if kwds:
            key += tuple(type(v) for v in kwds.values())
    elif len(key) == 1 and type(key[0]) in fasttypes:
        return key[0]
    return _HashedSeq(key)

def lru_cache(maxsize=128, typed=False):
    """Least-recently-used cache decorator.

    If *maxsize* is set to None, the LRU features are disabled and the cache
    can grow without bound.

    If *typed* is True, arguments of different types will be cached separately.
    For example, f(3.0) and f(3) will be treated as distinct calls with
    distinct results.

    Arguments to the cached function must be hashable.

    View the cache statistics named tuple (hits, misses, maxsize, currsize)
    with f.cache_info().  Clear the cache and statistics with f.cache_clear().
    Access the underlying function with f.__wrapped__.

    See:  https://en.wikipedia.org/wiki/Cache_replacement_policies#Least_recently_used_(LRU)

    """

    # Users should only access the lru_cache through its public API:
    #       cache_info, cache_clear, and f.__wrapped__
    # The internals of the lru_cache are encapsulated for thread safety and
    # to allow the implementation to change (including a possible C version).

    if isinstance(maxsize, int):
        # Negative maxsize is treated as 0
        if maxsize < 0:
            maxsize = 0
    elif callable(maxsize) and isinstance(typed, bool):
        # The user_function was passed in directly via the maxsize argument
        user_function, maxsize = maxsize, 128
        wrapper = _lru_cache_wrapper(user_function, maxsize, typed, _CacheInfo)
        wrapper.cache_parameters = lambda : {'maxsize': maxsize, 'typed': typed}
        return update_wrapper(wrapper, user_function)
    elif maxsize is not None:
        raise TypeError(
            'Expected first argument to be an integer, a callable, or None')

    def decorating_function(user_function):
        wrapper = _lru_cache_wrapper(user_function, maxsize, typed, _CacheInfo)
        wrapper.cache_parameters = lambda : {'maxsize': maxsize, 'typed': typed}
        return update_wrapper(wrapper, user_function)

    return decorating_function

def _lru_cache_wrapper(user_function, maxsize, typed, _CacheInfo):
    # Constants shared by all lru cache instances:
    sentinel = object()          # unique object used to signal cache misses
    make_key = _make_key         # build a key from the function arguments
    PREV, NEXT, KEY, RESULT = 0, 1, 2, 3   # names for the link fields

    cache = {}
    hits = misses = 0
    full = False
    cache_get = cache.get    # bound method to lookup a key or return None
    cache_len = cache.__len__  # get cache size without calling len()
    lock = RLock()           # because linkedlist updates aren't threadsafe
    root = []                # root of the circular doubly linked list
    root[:] = [root, root, None, None]     # initialize by pointing to self

    if maxsize == 0:

        def wrapper(*args, **kwds):
            # No caching -- just a statistics update
            nonlocal misses
            misses += 1
            result = user_function(*args, **kwds)
            return result

    elif maxsize is None:

        def wrapper(*args, **kwds):
            # Simple caching without ordering or size limit
            nonlocal hits, misses
            key = make_key(args, kwds, typed)
            result = cache_get(key, sentinel)
            if result is not sentinel:
                hits += 1
                return result
            misses += 1
            result = user_function(*args, **kwds)
            cache[key] = result
            return result

    else:

        def wrapper(*args, **kwds):
            # Size limited caching that tracks accesses by recency
            nonlocal root, hits, misses, full
            key = make_key(args, kwds, typed)
            with lock:
                link = cache_get(key)
                if link is not None:
                    # Move the link to the front of the circular queue
                    link_prev, link_next, _key, result = link
                    link_prev[NEXT] = link_next
                    link_next[PREV] = link_prev
                    last = root[PREV]
                    last[NEXT] = root[PREV] = link
                    link[PREV] = last
                    link[NEXT] = root
                    hits += 1
                    return result
                misses += 1
            result = user_function(*args, **kwds)
            with lock:
                if key in cache:
                    # Getting here means that this same key was added to the
                    # cache while the lock was released.  Since the link
                    # update is already done, we need only return the
                    # computed result and update the count of misses.
                    pass
                elif full:
                    # Use the old root to store the new key and result.
                    oldroot = root
                    oldroot[KEY] = key
                    oldroot[RESULT] = result
                    # Empty the oldest link and make it the new root.
                    # Keep a reference to the old key and old result to
                    # prevent their ref counts from going to zero during the
                    # update. That will prevent potentially arbitrary object
                    # clean-up code (i.e. __del__) from running while we're
                    # still adjusting the links.
                    root = oldroot[NEXT]
                    oldkey = root[KEY]
                    oldresult = root[RESULT]
                    root[KEY] = root[RESULT] = None
                    # Now update the cache dictionary.
                    del cache[oldkey]
                    # Save the potentially reentrant cache[key] assignment
                    # for last, after the root and links have been put in
                    # a consistent state.
                    cache[key] = oldroot
                else:
                    # Put result in a new link at the front of the queue.
                    last = root[PREV]
                    link = [last, root, key, result]
                    last[NEXT] = root[PREV] = cache[key] = link
                    # Use the cache_len bound method instead of the len() function
                    # which could potentially be wrapped in an lru_cache itself.
                    full = (cache_len() >= maxsize)
            return result

    def cache_info():
        """Report cache statistics"""
        with lock:
            return _CacheInfo(hits, misses, maxsize, cache_len())

    def cache_clear():
        """Clear the cache and cache statistics"""
        nonlocal hits, misses, full
        with lock:
            cache.clear()
            root[:] = [root, root, None, None]
            hits = misses = 0
            full = False

    wrapper.cache_info = cache_info
    wrapper.cache_clear = cache_clear
    return wrapper

try:
    from _functools import _lru_cache_wrapper
except ImportError:
    pass


################################################################################
### cache -- simplified access to the infinity cache
################################################################################

def cache(user_function, /):
    'Simple lightweight unbounded cache.  Sometimes called "memoize".'
    return lru_cache(maxsize=None)(user_function)


################################################################################
### singledispatch() - single-dispatch generic function decorator
################################################################################

def _c3_merge(sequences):
    """Merges MROs in *sequences* to a single MRO using the C3 algorithm.

    Adapted from https://www.python.org/download/releases/2.3/mro/.

    """
    result = []
    while True:
        sequences = [s for s in sequences if s]   # purge empty sequences
        if not sequences:
            return result
        for s1 in sequences:   # find merge candidates among seq heads
            candidate = s1[0]
            for s2 in sequences:
                if candidate in s2[1:]:
                    candidate = None
                    break      # reject the current head, it appears later
            else:
                break
        if candidate is None:
            raise RuntimeError("Inconsistent hierarchy")
        result.append(candidate)
        # remove the chosen candidate
        for seq in sequences:
            if seq[0] == candidate:
                del seq[0]

def _c3_mro(cls, abcs=None):
    """Computes the method resolution order using extended C3 linearization.

    If no *abcs* are given, the algorithm works exactly like the built-in C3
    linearization used for method resolution.

    If given, *abcs* is a list of abstract base classes that should be inserted
    into the resulting MRO. Unrelated ABCs are ignored and don't end up in the
    result. The algorithm inserts ABCs where their functionality is introduced,
    i.e. issubclass(cls, abc) returns True for the class itself but returns
    False for all its direct base classes. Implicit ABCs for a given class
    (either registered or inferred from the presence of a special method like
    __len__) are inserted directly after the last ABC explicitly listed in the
    MRO of said class. If two implicit ABCs end up next to each other in the
    resulting MRO, their ordering depends on the order of types in *abcs*.

    """
    for i, base in enumerate(reversed(cls.__bases__)):
        if hasattr(base, '__abstractmethods__'):
            boundary = len(cls.__bases__) - i
            break   # Bases up to the last explicit ABC are considered first.
    else:
        boundary = 0
    abcs = list(abcs) if abcs else []
    explicit_bases = list(cls.__bases__[:boundary])
    abstract_bases = []
    other_bases = list(cls.__bases__[boundary:])
    for base in abcs:
        if issubclass(cls, base) and not any(
                issubclass(b, base) for b in cls.__bases__
            ):
            # If *cls* is the class that introduces behaviour described by
            # an ABC *base*, insert said ABC to its MRO.
            abstract_bases.append(base)
    for base in abstract_bases:
        abcs.remove(base)
    explicit_c3_mros = [_c3_mro(base, abcs=abcs) for base in explicit_bases]
    abstract_c3_mros = [_c3_mro(base, abcs=abcs) for base in abstract_bases]
    other_c3_mros = [_c3_mro(base, abcs=abcs) for base in other_bases]
    return _c3_merge(
        [[cls]] +
        explicit_c3_mros + abstract_c3_mros + other_c3_mros +
        [explicit_bases] + [abstract_bases] + [other_bases]
    )

def _compose_mro(cls, types):
    """Calculates the method resolution order for a given class *cls*.

    Includes relevant abstract base classes (with their respective bases) from
    the *types* iterable. Uses a modified C3 linearization algorithm.

    """
    bases = set(cls.__mro__)
    # Remove entries which are already present in the __mro__ or unrelated.
    def is_related(typ):
        return (typ not in bases and hasattr(typ, '__mro__')
                                 and not isinstance(typ, GenericAlias)
                                 and issubclass(cls, typ))
    types = [n for n in types if is_related(n)]
    # Remove entries which are strict bases of other entries (they will end up
    # in the MRO anyway.
    def is_strict_base(typ):
        for other in types:
            if typ != other and typ in other.__mro__:
                return True
        return False
    types = [n for n in types if not is_strict_base(n)]
    # Subclasses of the ABCs in *types* which are also implemented by
    # *cls* can be used to stabilize ABC ordering.
    type_set = set(types)
    mro = []
    for typ in types:
        found = []
        for sub in typ.__subclasses__():
            if sub not in bases and issubclass(cls, sub):
                found.append([s for s in sub.__mro__ if s in type_set])
        if not found:
            mro.append(typ)
            continue
        # Favor subclasses with the biggest number of useful bases
        found.sort(key=len, reverse=True)
        for sub in found:
            for subcls in sub:
                if subcls not in mro:
                    mro.append(subcls)
    return _c3_mro(cls, abcs=mro)

def _find_impl(cls, registry):
    """Returns the best matching implementation from *registry* for type *cls*.

    Where there is no registered implementation for a specific type, its method
    resolution order is used to find a more generic implementation.

    Note: if *registry* does not contain an implementation for the base
    *object* type, this function may return None.

    """
    mro = _compose_mro(cls, registry.keys())
    match = None
    for t in mro:
        if match is not None:
            # If *match* is an implicit ABC but there is another unrelated,
            # equally matching implicit ABC, refuse the temptation to guess.
            if (t in registry and t not in cls.__mro__
                              and match not in cls.__mro__
                              and not issubclass(match, t)):
                raise RuntimeError("Ambiguous dispatch: {} or {}".format(
                    match, t))
            break
        if t in registry:
            match = t
    return registry.get(match)

def singledispatch(func):
    """Single-dispatch generic function decorator.

    Transforms a function into a generic function, which can have different
    behaviours depending upon the type of its first argument. The decorated
    function acts as the default implementation, and additional
    implementations can be registered using the register() attribute of the
    generic function.
    """
    # There are many programs that use functools without singledispatch, so we
    # trade-off making singledispatch marginally slower for the benefit of
    # making start-up of such applications slightly faster.
    import types, weakref

    registry = {}
    dispatch_cache = weakref.WeakKeyDictionary()
    cache_token = None

    def dispatch(cls):
        """generic_func.dispatch(cls) -> <function implementation>

        Runs the dispatch algorithm to return the best available implementation
        for the given *cls* registered on *generic_func*.

        """
        nonlocal cache_token
        if cache_token is not None:
            current_token = get_cache_token()
            if cache_token != current_token:
                dispatch_cache.clear()
                cache_token = current_token
        try:
            impl = dispatch_cache[cls]
        except KeyError:
            try:
                impl = registry[cls]
            except KeyError:
                impl = _find_impl(cls, registry)
            dispatch_cache[cls] = impl
        return impl

    def _is_union_type(cls):
        from typing import get_origin, Union
        return get_origin(cls) in {Union, types.UnionType}

    def _is_valid_dispatch_type(cls):
        if isinstance(cls, type):
            return True
        from typing import get_args
        return (_is_union_type(cls) and
                all(isinstance(arg, type) for arg in get_args(cls)))

    def register(cls, func=None):
        """generic_func.register(cls, func) -> func

        Registers a new implementation for the given *cls* on a *generic_func*.

        """
        nonlocal cache_token
        if _is_valid_dispatch_type(cls):
            if func is None:
                return lambda f: register(cls, f)
        else:
            if func is not None:
                raise TypeError(
                    f"Invalid first argument to `register()`. "
                    f"{cls!r} is not a class or union type."
                )
            ann = getattr(cls, '__annotations__', {})
            if not ann:
                raise TypeError(
                    f"Invalid first argument to `register()`: {cls!r}. "
                    f"Use either `@register(some_class)` or plain `@register` "
                    f"on an annotated function."
                )
            func = cls

            # only import typing if annotation parsing is necessary
            from typing import get_type_hints
            argname, cls = next(iter(get_type_hints(func).items()))
            if not _is_valid_dispatch_type(cls):
                if _is_union_type(cls):
                    raise TypeError(
                        f"Invalid annotation for {argname!r}. "
                        f"{cls!r} not all arguments are classes."
                    )
                else:
                    raise TypeError(
                        f"Invalid annotation for {argname!r}. "
                        f"{cls!r} is not a class."
                    )

        if _is_union_type(cls):
            from typing import get_args

            for arg in get_args(cls):
                registry[arg] = func
        else:
            registry[cls] = func
        if cache_token is None and hasattr(cls, '__abstractmethods__'):
            cache_token = get_cache_token()
        dispatch_cache.clear()
        return func

    def wrapper(*args, **kw):
        if not args:
            raise TypeError(f'{funcname} requires at least '
                            '1 positional argument')

        return dispatch(args[0].__class__)(*args, **kw)

    funcname = getattr(func, '__name__', 'singledispatch function')
    registry[object] = func
    wrapper.register = register
    wrapper.dispatch = dispatch
    wrapper.registry = types.MappingProxyType(registry)
    wrapper._clear_cache = dispatch_cache.clear
    update_wrapper(wrapper, func)
    return wrapper


# Descriptor version
class singledispatchmethod:
    """Single-dispatch generic method descriptor.

    Supports wrapping existing descriptors and handles non-descriptor
    callables as instance methods.
    """

    def __init__(self, func):
        if not callable(func) and not hasattr(func, "__get__"):
            raise TypeError(f"{func!r} is not callable or a descriptor")

        self.dispatcher = singledispatch(func)
        self.func = func

    def register(self, cls, method=None):
        """generic_method.register(cls, func) -> func

        Registers a new implementation for the given *cls* on a *generic_method*.
        """
        return self.dispatcher.register(cls, func=method)

    def __get__(self, obj, cls=None):
        def _method(*args, **kwargs):
            method = self.dispatcher.dispatch(args[0].__class__)
            return method.__get__(obj, cls)(*args, **kwargs)

        _method.__isabstractmethod__ = self.__isabstractmethod__
        _method.register = self.register
        update_wrapper(_method, self.func)
        return _method

    @property
    def __isabstractmethod__(self):
        return getattr(self.func, '__isabstractmethod__', False)


################################################################################
### cached_property() - computed once per instance, cached as attribute
################################################################################

_NOT_FOUND = object()


class cached_property:
    def __init__(self, func):
        self.func = func
        self.attrname = None
        self.__doc__ = func.__doc__
        self.lock = RLock()

    def __set_name__(self, owner, name):
        if self.attrname is None:
            self.attrname = name
        elif name != self.attrname:
            raise TypeError(
                "Cannot assign the same cached_property to two different names "
                f"({self.attrname!r} and {name!r})."
            )

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        if self.attrname is None:
            raise TypeError(
                "Cannot use cached_property instance without calling __set_name__ on it.")
        try:
            cache = instance.__dict__
        except AttributeError:  # not all objects have __dict__ (e.g. class defines slots)
            msg = (
                f"No '__dict__' attribute on {type(instance).__name__!r} "
                f"instance to cache {self.attrname!r} property."
            )
            raise TypeError(msg) from None
        val = cache.get(self.attrname, _NOT_FOUND)
        if val is _NOT_FOUND:
            with self.lock:
                # check if another thread filled cache while we awaited lock
                val = cache.get(self.attrname, _NOT_FOUND)
                if val is _NOT_FOUND:
                    val = self.func(instance)
                    try:
                        cache[self.attrname] = val
                    except TypeError:
                        msg = (
                            f"The '__dict__' attribute on {type(instance).__name__!r} instance "
                            f"does not support item assignment for caching {self.attrname!r} property."
                        )
                        raise TypeError(msg) from None
        return val

    __class_getitem__ = classmethod(GenericAlias)
