"""Random variable generators.

    bytes
    -----
           uniform bytes (values between 0 and 255)

    integers
    --------
           uniform within range

    sequences
    ---------
           pick random element
           pick random sample
           pick weighted random sample
           generate random permutation

    distributions on the real line:
    ------------------------------
           uniform
           triangular
           normal (Gaussian)
           lognormal
           negative exponential
           gamma
           beta
           pareto
           Weibull

    distributions on the circle (angles 0 to 2pi)
    ---------------------------------------------
           circular uniform
           von Mises

General notes on the underlying Mersenne Twister core generator:

* The period is 2**19937-1.
* It is one of the most extensively tested generators in existence.
* The random() method is implemented in C, executes in a single Python step,
  and is, therefore, threadsafe.

"""

# Translated by Guido van Rossum from C source provided by
# Adrian Baddeley.  Adapted by Raymond Hettinger for use with
# the Mersenne Twister  and os.urandom() core generators.

from warnings import warn as _warn
from math import log as _log, exp as _exp, pi as _pi, e as _e, ceil as _ceil
from math import sqrt as _sqrt, acos as _acos, cos as _cos, sin as _sin
from math import tau as TWOPI, floor as _floor, isfinite as _isfinite
from os import urandom as _urandom
from _collections_abc import Set as _Set, Sequence as _Sequence
from operator import index as _index
from itertools import accumulate as _accumulate, repeat as _repeat
from bisect import bisect as _bisect
import os as _os
import _random

try:
    # hashlib is pretty heavy to load, try lean internal module first
    from _sha512 import sha512 as _sha512
except ImportError:
    # fallback to official implementation
    from hashlib import sha512 as _sha512

__all__ = [
    "Random",
    "SystemRandom",
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gammavariate",
    "gauss",
    "getrandbits",
    "getstate",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "randbytes",
    "randint",
    "random",
    "randrange",
    "sample",
    "seed",
    "setstate",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
    "weibullvariate",
]

NV_MAGICCONST = 4 * _exp(-0.5) / _sqrt(2.0)
LOG4 = _log(4.0)
SG_MAGICCONST = 1.0 + _log(4.5)
BPF = 53        # Number of bits in a float
RECIP_BPF = 2 ** -BPF
_ONE = 1


class Random(_random.Random):
    """Random number generator base class used by bound module functions.

    Used to instantiate instances of Random to get generators that don't
    share state.

    Class Random can also be subclassed if you want to use a different basic
    generator of your own devising: in that case, override the following
    methods:  random(), seed(), getstate(), and setstate().
    Optionally, implement a getrandbits() method so that randrange()
    can cover arbitrarily large ranges.

    """

    VERSION = 3     # used by getstate/setstate

    def __init__(self, x=None):
        """Initialize an instance.

        Optional argument x controls seeding, as for Random.seed().
        """

        self.seed(x)
        self.gauss_next = None

    def seed(self, a=None, version=2):
        """Initialize internal state from a seed.

        The only supported seed types are None, int, float,
        str, bytes, and bytearray.

        None or no argument seeds from current time or from an operating
        system specific randomness source if available.

        If *a* is an int, all bits are used.

        For version 2 (the default), all of the bits are used if *a* is a str,
        bytes, or bytearray.  For version 1 (provided for reproducing random
        sequences from older versions of Python), the algorithm for str and
        bytes generates a narrower range of seeds.

        """

        if version == 1 and isinstance(a, (str, bytes)):
            a = a.decode('latin-1') if isinstance(a, bytes) else a
            x = ord(a[0]) << 7 if a else 0
            for c in map(ord, a):
                x = ((1000003 * x) ^ c) & 0xFFFFFFFFFFFFFFFF
            x ^= len(a)
            a = -2 if x == -1 else x

        elif version == 2 and isinstance(a, (str, bytes, bytearray)):
            if isinstance(a, str):
                a = a.encode()
            a = int.from_bytes(a + _sha512(a).digest())

        elif not isinstance(a, (type(None), int, float, str, bytes, bytearray)):
            raise TypeError('The only supported seed types are: None,\n'
                            'int, float, str, bytes, and bytearray.')

        super().seed(a)
        self.gauss_next = None

    def getstate(self):
        """Return internal state; can be passed to setstate() later."""
        return self.VERSION, super().getstate(), self.gauss_next

    def setstate(self, state):
        """Restore internal state from object returned by getstate()."""
        version = state[0]
        if version == 3:
            version, internalstate, self.gauss_next = state
            super().setstate(internalstate)
        elif version == 2:
            version, internalstate, self.gauss_next = state
            # In version 2, the state was saved as signed ints, which causes
            #   inconsistencies between 32/64-bit systems. The state is
            #   really unsigned 32-bit ints, so we convert negative ints from
            #   version 2 to positive longs for version 3.
            try:
                internalstate = tuple(x % (2 ** 32) for x in internalstate)
            except ValueError as e:
                raise TypeError from e
            super().setstate(internalstate)
        else:
            raise ValueError("state with version %s passed to "
                             "Random.setstate() of version %s" %
                             (version, self.VERSION))


    ## -------------------------------------------------------
    ## ---- Methods below this point do not need to be overridden or extended
    ## ---- when subclassing for the purpose of using a different core generator.


    ## -------------------- pickle support  -------------------

    # Issue 17489: Since __reduce__ was defined to fix #759889 this is no
    # longer called; we leave it here because it has been here since random was
    # rewritten back in 2001 and why risk breaking something.
    def __getstate__(self):  # for pickle
        return self.getstate()

    def __setstate__(self, state):  # for pickle
        self.setstate(state)

    def __reduce__(self):
        return self.__class__, (), self.getstate()


    ## ---- internal support method for evenly distributed integers ----

    def __init_subclass__(cls, /, **kwargs):
        """Control how subclasses generate random integers.

        The algorithm a subclass can use depends on the random() and/or
        getrandbits() implementation available to it and determines
        whether it can generate random integers from arbitrarily large
        ranges.
        """

        for c in cls.__mro__:
            if '_randbelow' in c.__dict__:
                # just inherit it
                break
            if 'getrandbits' in c.__dict__:
                cls._randbelow = cls._randbelow_with_getrandbits
                break
            if 'random' in c.__dict__:
                cls._randbelow = cls._randbelow_without_getrandbits
                break

    def _randbelow_with_getrandbits(self, n):
        "Return a random int in the range [0,n).  Defined for n > 0."

        getrandbits = self.getrandbits
        k = n.bit_length()  # don't use (n-1) here because n can be 1
        r = getrandbits(k)  # 0 <= r < 2**k
        while r >= n:
            r = getrandbits(k)
        return r

    def _randbelow_without_getrandbits(self, n, maxsize=1<<BPF):
        """Return a random int in the range [0,n).  Defined for n > 0.

        The implementation does not use getrandbits, but only random.
        """

        random = self.random
        if n >= maxsize:
            _warn("Underlying random() generator does not supply \n"
                "enough bits to choose from a population range this large.\n"
                "To remove the range limitation, add a getrandbits() method.")
            return _floor(random() * n)
        rem = maxsize % n
        limit = (maxsize - rem) / maxsize   # int(limit * maxsize) % n == 0
        r = random()
        while r >= limit:
            r = random()
        return _floor(r * maxsize) % n

    _randbelow = _randbelow_with_getrandbits


    ## --------------------------------------------------------
    ## ---- Methods below this point generate custom distributions
    ## ---- based on the methods defined above.  They do not
    ## ---- directly touch the underlying generator and only
    ## ---- access randomness through the methods:  random(),
    ## ---- getrandbits(), or _randbelow().


    ## -------------------- bytes methods ---------------------

    def randbytes(self, n):
        """Generate n random bytes."""
        return self.getrandbits(n * 8).to_bytes(n, 'little')


    ## -------------------- integer methods  -------------------

    def randrange(self, start, stop=None, step=_ONE):
        """Choose a random item from range(stop) or range(start, stop[, step]).

        Roughly equivalent to ``choice(range(start, stop, step))`` but
        supports arbitrarily large ranges and is optimized for common cases.

        """

        # This code is a bit messy to make it fast for the
        # common case while still doing adequate error checking.
        try:
            istart = _index(start)
        except TypeError:
            istart = int(start)
            if istart != start:
                _warn('randrange() will raise TypeError in the future',
                      DeprecationWarning, 2)
                raise ValueError("non-integer arg 1 for randrange()")
            _warn('non-integer arguments to randrange() have been deprecated '
                  'since Python 3.10 and will be removed in a subsequent '
                  'version',
                  DeprecationWarning, 2)
        if stop is None:
            # We don't check for "step != 1" because it hasn't been
            # type checked and converted to an integer yet.
            if step is not _ONE:
                raise TypeError('Missing a non-None stop argument')
            if istart > 0:
                return self._randbelow(istart)
            raise ValueError("empty range for randrange()")

        # stop argument supplied.
        try:
            istop = _index(stop)
        except TypeError:
            istop = int(stop)
            if istop != stop:
                _warn('randrange() will raise TypeError in the future',
                      DeprecationWarning, 2)
                raise ValueError("non-integer stop for randrange()")
            _warn('non-integer arguments to randrange() have been deprecated '
                  'since Python 3.10 and will be removed in a subsequent '
                  'version',
                  DeprecationWarning, 2)
        width = istop - istart
        try:
            istep = _index(step)
        except TypeError:
            istep = int(step)
            if istep != step:
                _warn('randrange() will raise TypeError in the future',
                      DeprecationWarning, 2)
                raise ValueError("non-integer step for randrange()")
            _warn('non-integer arguments to randrange() have been deprecated '
                  'since Python 3.10 and will be removed in a subsequent '
                  'version',
                  DeprecationWarning, 2)
        # Fast path.
        if istep == 1:
            if width > 0:
                return istart + self._randbelow(width)
            raise ValueError("empty range for randrange() (%d, %d, %d)" % (istart, istop, width))

        # Non-unit step argument supplied.
        if istep > 0:
            n = (width + istep - 1) // istep
        elif istep < 0:
            n = (width + istep + 1) // istep
        else:
            raise ValueError("zero step for randrange()")
        if n <= 0:
            raise ValueError("empty range for randrange()")
        return istart + istep * self._randbelow(n)

    def randint(self, a, b):
        """Return random integer in range [a, b], including both end points.
        """

        return self.randrange(a, b+1)


    ## -------------------- sequence methods  -------------------

    def choice(self, seq):
        """Choose a random element from a non-empty sequence."""

        # As an accommodation for NumPy, we don't use "if not seq"
        # because bool(numpy.array()) raises a ValueError.
        if not len(seq):
            raise IndexError('Cannot choose from an empty sequence')
        return seq[self._randbelow(len(seq))]

    def shuffle(self, x):
        """Shuffle list x in place, and return None."""

        randbelow = self._randbelow
        for i in reversed(range(1, len(x))):
            # pick an element in x[:i+1] with which to exchange x[i]
            j = randbelow(i + 1)
            x[i], x[j] = x[j], x[i]

    def sample(self, population, k, *, counts=None):
        """Chooses k unique random elements from a population sequence.

        Returns a new list containing elements from the population while
        leaving the original population unchanged.  The resulting list is
        in selection order so that all sub-slices will also be valid random
        samples.  This allows raffle winners (the sample) to be partitioned
        into grand prize and second place winners (the subslices).

        Members of the population need not be hashable or unique.  If the
        population contains repeats, then each occurrence is a possible
        selection in the sample.

        Repeated elements can be specified one at a time or with the optional
        counts parameter.  For example:

            sample(['red', 'blue'], counts=[4, 2], k=5)

        is equivalent to:

            sample(['red', 'red', 'red', 'red', 'blue', 'blue'], k=5)

        To choose a sample from a range of integers, use range() for the
        population argument.  This is especially fast and space efficient
        for sampling from a large population:

            sample(range(10000000), 60)

        """

        # Sampling without replacement entails tracking either potential
        # selections (the pool) in a list or previous selections in a set.

        # When the number of selections is small compared to the
        # population, then tracking selections is efficient, requiring
        # only a small set and an occasional reselection.  For
        # a larger number of selections, the pool tracking method is
        # preferred since the list takes less space than the
        # set and it doesn't suffer from frequent reselections.

        # The number of calls to _randbelow() is kept at or near k, the
        # theoretical minimum.  This is important because running time
        # is dominated by _randbelow() and because it extracts the
        # least entropy from the underlying random number generators.

        # Memory requirements are kept to the smaller of a k-length
        # set or an n-length list.

        # There are other sampling algorithms that do not require
        # auxiliary memory, but they were rejected because they made
        # too many calls to _randbelow(), making them slower and
        # causing them to eat more entropy than necessary.

        if not isinstance(population, _Sequence):
            raise TypeError("Population must be a sequence.  "
                            "For dicts or sets, use sorted(d).")
        n = len(population)
        if counts is not None:
            cum_counts = list(_accumulate(counts))
            if len(cum_counts) != n:
                raise ValueError('The number of counts does not match the population')
            total = cum_counts.pop()
            if not isinstance(total, int):
                raise TypeError('Counts must be integers')
            if total <= 0:
                raise ValueError('Total of counts must be greater than zero')
            selections = self.sample(range(total), k=k)
            bisect = _bisect
            return [population[bisect(cum_counts, s)] for s in selections]
        randbelow = self._randbelow
        if not 0 <= k <= n:
            raise ValueError("Sample larger than population or is negative")
        result = [None] * k
        setsize = 21        # size of a small set minus size of an empty list
        if k > 5:
            setsize += 4 ** _ceil(_log(k * 3, 4))  # table size for big sets
        if n <= setsize:
            # An n-length list is smaller than a k-length set.
            # Invariant:  non-selected at pool[0 : n-i]
            pool = list(population)
            for i in range(k):
                j = randbelow(n - i)
                result[i] = pool[j]
                pool[j] = pool[n - i - 1]  # move non-selected item into vacancy
        else:
            selected = set()
            selected_add = selected.add
            for i in range(k):
                j = randbelow(n)
                while j in selected:
                    j = randbelow(n)
                selected_add(j)
                result[i] = population[j]
        return result

    def choices(self, population, weights=None, *, cum_weights=None, k=1):
        """Return a k sized list of population elements chosen with replacement.

        If the relative weights or cumulative weights are not specified,
        the selections are made with equal probability.

        """
        random = self.random
        n = len(population)
        if cum_weights is None:
            if weights is None:
                floor = _floor
                n += 0.0    # convert to float for a small speed improvement
                return [population[floor(random() * n)] for i in _repeat(None, k)]
            try:
                cum_weights = list(_accumulate(weights))
            except TypeError:
                if not isinstance(weights, int):
                    raise
                k = weights
                raise TypeError(
                    f'The number of choices must be a keyword argument: {k=}'
                ) from None
        elif weights is not None:
            raise TypeError('Cannot specify both weights and cumulative weights')
        if len(cum_weights) != n:
            raise ValueError('The number of weights does not match the population')
        total = cum_weights[-1] + 0.0   # convert to float
        if total <= 0.0:
            raise ValueError('Total of weights must be greater than zero')
        if not _isfinite(total):
            raise ValueError('Total of weights must be finite')
        bisect = _bisect
        hi = n - 1
        return [population[bisect(cum_weights, random() * total, 0, hi)]
                for i in _repeat(None, k)]


    ## -------------------- real-valued distributions  -------------------

    def uniform(self, a, b):
        "Get a random number in the range [a, b) or [a, b] depending on rounding."
        return a + (b - a) * self.random()

    def triangular(self, low=0.0, high=1.0, mode=None):
        """Triangular distribution.

        Continuous distribution bounded by given lower and upper limits,
        and having a given mode value in-between.

        http://en.wikipedia.org/wiki/Triangular_distribution

        """
        u = self.random()
        try:
            c = 0.5 if mode is None else (mode - low) / (high - low)
        except ZeroDivisionError:
            return low
        if u > c:
            u = 1.0 - u
            c = 1.0 - c
            low, high = high, low
        return low + (high - low) * _sqrt(u * c)

    def normalvariate(self, mu=0.0, sigma=1.0):
        """Normal distribution.

        mu is the mean, and sigma is the standard deviation.

        """
        # Uses Kinderman and Monahan method. Reference: Kinderman,
        # A.J. and Monahan, J.F., "Computer generation of random
        # variables using the ratio of uniform deviates", ACM Trans
        # Math Software, 3, (1977), pp257-260.

        random = self.random
        while True:
            u1 = random()
            u2 = 1.0 - random()
            z = NV_MAGICCONST * (u1 - 0.5) / u2
            zz = z * z / 4.0
            if zz <= -_log(u2):
                break
        return mu + z * sigma

    def gauss(self, mu=0.0, sigma=1.0):
        """Gaussian distribution.

        mu is the mean, and sigma is the standard deviation.  This is
        slightly faster than the normalvariate() function.

        Not thread-safe without a lock around calls.

        """
        # When x and y are two variables from [0, 1), uniformly
        # distributed, then
        #
        #    cos(2*pi*x)*sqrt(-2*log(1-y))
        #    sin(2*pi*x)*sqrt(-2*log(1-y))
        #
        # are two *independent* variables with normal distribution
        # (mu = 0, sigma = 1).
        # (Lambert Meertens)
        # (corrected version; bug discovered by Mike Miller, fixed by LM)

        # Multithreading note: When two threads call this function
        # simultaneously, it is possible that they will receive the
        # same return value.  The window is very small though.  To
        # avoid this, you have to use a lock around all calls.  (I
        # didn't want to slow this down in the serial case by using a
        # lock here.)

        random = self.random
        z = self.gauss_next
        self.gauss_next = None
        if z is None:
            x2pi = random() * TWOPI
            g2rad = _sqrt(-2.0 * _log(1.0 - random()))
            z = _cos(x2pi) * g2rad
            self.gauss_next = _sin(x2pi) * g2rad

        return mu + z * sigma

    def lognormvariate(self, mu, sigma):
        """Log normal distribution.

        If you take the natural logarithm of this distribution, you'll get a
        normal distribution with mean mu and standard deviation sigma.
        mu can have any value, and sigma must be greater than zero.

        """
        return _exp(self.normalvariate(mu, sigma))

    def expovariate(self, lambd):
        """Exponential distribution.

        lambd is 1.0 divided by the desired mean.  It should be
        nonzero.  (The parameter would be called "lambda", but that is
        a reserved word in Python.)  Returned values range from 0 to
        positive infinity if lambd is positive, and from negative
        infinity to 0 if lambd is negative.

        """
        # lambd: rate lambd = 1/mean
        # ('lambda' is a Python reserved word)

        # we use 1-random() instead of random() to preclude the
        # possibility of taking the log of zero.
        return -_log(1.0 - self.random()) / lambd

    def vonmisesvariate(self, mu, kappa):
        """Circular data distribution.

        mu is the mean angle, expressed in radians between 0 and 2*pi, and
        kappa is the concentration parameter, which must be greater than or
        equal to zero.  If kappa is equal to zero, this distribution reduces
        to a uniform random angle over the range 0 to 2*pi.

        """
        # Based upon an algorithm published in: Fisher, N.I.,
        # "Statistical Analysis of Circular Data", Cambridge
        # University Press, 1993.

        # Thanks to Magnus Kessler for a correction to the
        # implementation of step 4.

        random = self.random
        if kappa <= 1e-6:
            return TWOPI * random()

        s = 0.5 / kappa
        r = s + _sqrt(1.0 + s * s)

        while True:
            u1 = random()
            z = _cos(_pi * u1)

            d = z / (r + z)
            u2 = random()
            if u2 < 1.0 - d * d or u2 <= (1.0 - d) * _exp(d):
                break

        q = 1.0 / r
        f = (q + z) / (1.0 + q * z)
        u3 = random()
        if u3 > 0.5:
            theta = (mu + _acos(f)) % TWOPI
        else:
            theta = (mu - _acos(f)) % TWOPI

        return theta

    def gammavariate(self, alpha, beta):
        """Gamma distribution.  Not the gamma function!

        Conditions on the parameters are alpha > 0 and beta > 0.

        The probability distribution function is:

                    x ** (alpha - 1) * math.exp(-x / beta)
          pdf(x) =  --------------------------------------
                      math.gamma(alpha) * beta ** alpha

        """
        # alpha > 0, beta > 0, mean is alpha*beta, variance is alpha*beta**2

        # Warning: a few older sources define the gamma distribution in terms
        # of alpha > -1.0
        if alpha <= 0.0 or beta <= 0.0:
            raise ValueError('gammavariate: alpha and beta must be > 0.0')

        random = self.random
        if alpha > 1.0:

            # Uses R.C.H. Cheng, "The generation of Gamma
            # variables with non-integral shape parameters",
            # Applied Statistics, (1977), 26, No. 1, p71-74

            ainv = _sqrt(2.0 * alpha - 1.0)
            bbb = alpha - LOG4
            ccc = alpha + ainv

            while True:
                u1 = random()
                if not 1e-7 < u1 < 0.9999999:
                    continue
                u2 = 1.0 - random()
                v = _log(u1 / (1.0 - u1)) / ainv
                x = alpha * _exp(v)
                z = u1 * u1 * u2
                r = bbb + ccc * v - x
                if r + SG_MAGICCONST - 4.5 * z >= 0.0 or r >= _log(z):
                    return x * beta

        elif alpha == 1.0:
            # expovariate(1/beta)
            return -_log(1.0 - random()) * beta

        else:
            # alpha is between 0 and 1 (exclusive)
            # Uses ALGORITHM GS of Statistical Computing - Kennedy & Gentle
            while True:
                u = random()
                b = (_e + alpha) / _e
                p = b * u
                if p <= 1.0:
                    x = p ** (1.0 / alpha)
                else:
                    x = -_log((b - p) / alpha)
                u1 = random()
                if p > 1.0:
                    if u1 <= x ** (alpha - 1.0):
                        break
                elif u1 <= _exp(-x):
                    break
            return x * beta

    def betavariate(self, alpha, beta):
        """Beta distribution.

        Conditions on the parameters are alpha > 0 and beta > 0.
        Returned values range between 0 and 1.

        """
        ## See
        ## http://mail.python.org/pipermail/python-bugs-list/2001-January/003752.html
        ## for Ivan Frohne's insightful analysis of why the original implementation:
        ##
        ##    def betavariate(self, alpha, beta):
        ##        # Discrete Event Simulation in C, pp 87-88.
        ##
        ##        y = self.expovariate(alpha)
        ##        z = self.expovariate(1.0/beta)
        ##        return z/(y+z)
        ##
        ## was dead wrong, and how it probably got that way.

        # This version due to Janne Sinkkonen, and matches all the std
        # texts (e.g., Knuth Vol 2 Ed 3 pg 134 "the beta distribution").
        y = self.gammavariate(alpha, 1.0)
        if y:
            return y / (y + self.gammavariate(beta, 1.0))
        return 0.0

    def paretovariate(self, alpha):
        """Pareto distribution.  alpha is the shape parameter."""
        # Jain, pg. 495

        u = 1.0 - self.random()
        return u ** (-1.0 / alpha)

    def weibullvariate(self, alpha, beta):
        """Weibull distribution.

        alpha is the scale parameter and beta is the shape parameter.

        """
        # Jain, pg. 499; bug fix courtesy Bill Arms

        u = 1.0 - self.random()
        return alpha * (-_log(u)) ** (1.0 / beta)


## ------------------------------------------------------------------
## --------------- Operating System Random Source  ------------------


class SystemRandom(Random):
    """Alternate random number generator using sources provided
    by the operating system (such as /dev/urandom on Unix or
    CryptGenRandom on Windows).

     Not available on all systems (see os.urandom() for details).

    """

    def random(self):
        """Get the next random number in the range 0.0 <= X < 1.0."""
        return (int.from_bytes(_urandom(7)) >> 3) * RECIP_BPF

    def getrandbits(self, k):
        """getrandbits(k) -> x.  Generates an int with k random bits."""
        if k < 0:
            raise ValueError('number of bits must be non-negative')
        numbytes = (k + 7) // 8                       # bits / 8 and rounded up
        x = int.from_bytes(_urandom(numbytes))
        return x >> (numbytes * 8 - k)                # trim excess bits

    def randbytes(self, n):
        """Generate n random bytes."""
        # os.urandom(n) fails with ValueError for n < 0
        # and returns an empty bytes string for n == 0.
        return _urandom(n)

    def seed(self, *args, **kwds):
        "Stub method.  Not used for a system random number generator."
        return None

    def _notimplemented(self, *args, **kwds):
        "Method should not be called for a system random number generator."
        raise NotImplementedError('System entropy source does not have state.')
    getstate = setstate = _notimplemented


# ----------------------------------------------------------------------
# Create one instance, seeded from current time, and export its methods
# as module-level functions.  The functions share state across all uses
# (both in the user's code and in the Python libraries), but that's fine
# for most programs and is easier for the casual user than making them
# instantiate their own Random() instance.

_inst = Random()
seed = _inst.seed
random = _inst.random
uniform = _inst.uniform
triangular = _inst.triangular
randint = _inst.randint
choice = _inst.choice
randrange = _inst.randrange
sample = _inst.sample
shuffle = _inst.shuffle
choices = _inst.choices
normalvariate = _inst.normalvariate
lognormvariate = _inst.lognormvariate
expovariate = _inst.expovariate
vonmisesvariate = _inst.vonmisesvariate
gammavariate = _inst.gammavariate
gauss = _inst.gauss
betavariate = _inst.betavariate
paretovariate = _inst.paretovariate
weibullvariate = _inst.weibullvariate
getstate = _inst.getstate
setstate = _inst.setstate
getrandbits = _inst.getrandbits
randbytes = _inst.randbytes


## ------------------------------------------------------
## ----------------- test program -----------------------

def _test_generator(n, func, args):
    from statistics import stdev, fmean as mean
    from time import perf_counter

    t0 = perf_counter()
    data = [func(*args) for i in _repeat(None, n)]
    t1 = perf_counter()

    xbar = mean(data)
    sigma = stdev(data, xbar)
    low = min(data)
    high = max(data)

    print(f'{t1 - t0:.3f} sec, {n} times {func.__name__}')
    print('avg %g, stddev %g, min %g, max %g\n' % (xbar, sigma, low, high))


def _test(N=2000):
    _test_generator(N, random, ())
    _test_generator(N, normalvariate, (0.0, 1.0))
    _test_generator(N, lognormvariate, (0.0, 1.0))
    _test_generator(N, vonmisesvariate, (0.0, 1.0))
    _test_generator(N, gammavariate, (0.01, 1.0))
    _test_generator(N, gammavariate, (0.1, 1.0))
    _test_generator(N, gammavariate, (0.1, 2.0))
    _test_generator(N, gammavariate, (0.5, 1.0))
    _test_generator(N, gammavariate, (0.9, 1.0))
    _test_generator(N, gammavariate, (1.0, 1.0))
    _test_generator(N, gammavariate, (2.0, 1.0))
    _test_generator(N, gammavariate, (20.0, 1.0))
    _test_generator(N, gammavariate, (200.0, 1.0))
    _test_generator(N, gauss, (0.0, 1.0))
    _test_generator(N, betavariate, (3.0, 3.0))
    _test_generator(N, triangular, (0.0, 1.0, 1.0 / 3.0))


## ------------------------------------------------------
## ------------------ fork support  ---------------------

if hasattr(_os, "fork"):
    _os.register_at_fork(after_in_child=_inst.seed)


if __name__ == '__main__':
    _test()
