"""
Define names for built-in types that aren't directly accessible as a builtin.
"""
import sys

# Iterators in Python aren't a matter of type but of protocol.  A large
# and changing number of builtin types implement *some* flavor of
# iterator.  Don't check the type!  Use hasattr to check for both
# "__iter__" and "__next__" attributes instead.

def _f(): pass
FunctionType = type(_f)
LambdaType = type(lambda: None)         # Same as FunctionType
CodeType = type(_f.__code__)
MappingProxyType = type(type.__dict__)
SimpleNamespace = type(sys.implementation)

def _cell_factory():
    a = 1
    def f():
        nonlocal a
    return f.__closure__[0]
CellType = type(_cell_factory())

def _g():
    yield 1
GeneratorType = type(_g())

async def _c(): pass
_c = _c()
CoroutineType = type(_c)
_c.close()  # Prevent ResourceWarning

async def _ag():
    yield
_ag = _ag()
AsyncGeneratorType = type(_ag)

class _C:
    def _m(self): pass
MethodType = type(_C()._m)

BuiltinFunctionType = type(len)
BuiltinMethodType = type([].append)     # Same as BuiltinFunctionType

WrapperDescriptorType = type(object.__init__)
MethodWrapperType = type(object().__str__)
MethodDescriptorType = type(str.join)
ClassMethodDescriptorType = type(dict.__dict__['fromkeys'])

ModuleType = type(sys)

try:
    raise TypeError
except TypeError as exc:
    TracebackType = type(exc.__traceback__)
    FrameType = type(exc.__traceback__.tb_frame)

# For Jython, the following two types are identical
GetSetDescriptorType = type(FunctionType.__code__)
MemberDescriptorType = type(FunctionType.__globals__)

del sys, _f, _g, _C, _c, _ag  # Not for export


# Provide a PEP 3115 compliant mechanism for class creation
def new_class(name, bases=(), kwds=None, exec_body=None):
    """Create a class object dynamically using the appropriate metaclass."""
    resolved_bases = resolve_bases(bases)
    meta, ns, kwds = prepare_class(name, resolved_bases, kwds)
    if exec_body is not None:
        exec_body(ns)
    if resolved_bases is not bases:
        ns['__orig_bases__'] = bases
    return meta(name, resolved_bases, ns, **kwds)

def resolve_bases(bases):
    """Resolve MRO entries dynamically as specified by PEP 560."""
    new_bases = list(bases)
    updated = False
    shift = 0
    for i, base in enumerate(bases):
        if isinstance(base, type):
            continue
        if not hasattr(base, "__mro_entries__"):
            continue
        new_base = base.__mro_entries__(bases)
        updated = True
        if not isinstance(new_base, tuple):
            raise TypeError("__mro_entries__ must return a tuple")
        else:
            new_bases[i+shift:i+shift+1] = new_base
            shift += len(new_base) - 1
    if not updated:
        return bases
    return tuple(new_bases)

def prepare_class(name, bases=(), kwds=None):
    """Call the __prepare__ method of the appropriate metaclass.

    Returns (metaclass, namespace, kwds) as a 3-tuple

    *metaclass* is the appropriate metaclass
    *namespace* is the prepared class namespace
    *kwds* is an updated copy of the passed in kwds argument with any
    'metaclass' entry removed. If no kwds argument is passed in, this will
    be an empty dict.
    """
    if kwds is None:
        kwds = {}
    else:
        kwds = dict(kwds) # Don't alter the provided mapping
    if 'metaclass' in kwds:
        meta = kwds.pop('metaclass')
    else:
        if bases:
            meta = type(bases[0])
        else:
            meta = type
    if isinstance(meta, type):
        # when meta is a type, we first determine the most-derived metaclass
        # instead of invoking the initial candidate directly
        meta = _calculate_meta(meta, bases)
    if hasattr(meta, '__prepare__'):
        ns = meta.__prepare__(name, bases, **kwds)
    else:
        ns = {}
    return meta, ns, kwds

def _calculate_meta(meta, bases):
    """Calculate the most derived metaclass."""
    winner = meta
    for base in bases:
        base_meta = type(base)
        if issubclass(winner, base_meta):
            continue
        if issubclass(base_meta, winner):
            winner = base_meta
            continue
        # else:
        raise TypeError("metaclass conflict: "
                        "the metaclass of a derived class "
                        "must be a (non-strict) subclass "
                        "of the metaclasses of all its bases")
    return winner

class DynamicClassAttribute:
    """Route attribute access on a class to __getattr__.

    This is a descriptor, used to define attributes that act differently when
    accessed through an instance and through a class.  Instance access remains
    normal, but access to an attribute through a class will be routed to the
    class's __getattr__ method; this is done by raising AttributeError.

    This allows one to have properties active on an instance, and have virtual
    attributes on the class with the same name.  (Enum used this between Python
    versions 3.4 - 3.9 .)

    Subclass from this to use a different method of accessing virtual attributes
    and still be treated properly by the inspect module. (Enum uses this since
    Python 3.10 .)

    """
    def __init__(self, fget=None, fset=None, fdel=None, doc=None):
        self.fget = fget
        self.fset = fset
        self.fdel = fdel
        # next two lines make DynamicClassAttribute act the same as property
        self.__doc__ = doc or fget.__doc__
        self.overwrite_doc = doc is None
        # support for abstract methods
        self.__isabstractmethod__ = bool(getattr(fget, '__isabstractmethod__', False))

    def __get__(self, instance, ownerclass=None):
        if instance is None:
            if self.__isabstractmethod__:
                return self
            raise AttributeError()
        elif self.fget is None:
            raise AttributeError("unreadable attribute")
        return self.fget(instance)

    def __set__(self, instance, value):
        if self.fset is None:
            raise AttributeError("can't set attribute")
        self.fset(instance, value)

    def __delete__(self, instance):
        if self.fdel is None:
            raise AttributeError("can't delete attribute")
        self.fdel(instance)

    def getter(self, fget):
        fdoc = fget.__doc__ if self.overwrite_doc else None
        result = type(self)(fget, self.fset, self.fdel, fdoc or self.__doc__)
        result.overwrite_doc = self.overwrite_doc
        return result

    def setter(self, fset):
        result = type(self)(self.fget, fset, self.fdel, self.__doc__)
        result.overwrite_doc = self.overwrite_doc
        return result

    def deleter(self, fdel):
        result = type(self)(self.fget, self.fset, fdel, self.__doc__)
        result.overwrite_doc = self.overwrite_doc
        return result


class _GeneratorWrapper:
    # TODO: Implement this in C.
    def __init__(self, gen):
        self.__wrapped = gen
        self.__isgen = gen.__class__ is GeneratorType
        self.__name__ = getattr(gen, '__name__', None)
        self.__qualname__ = getattr(gen, '__qualname__', None)
    def send(self, val):
        return self.__wrapped.send(val)
    def throw(self, tp, *rest):
        return self.__wrapped.throw(tp, *rest)
    def close(self):
        return self.__wrapped.close()
    @property
    def gi_code(self):
        return self.__wrapped.gi_code
    @property
    def gi_frame(self):
        return self.__wrapped.gi_frame
    @property
    def gi_running(self):
        return self.__wrapped.gi_running
    @property
    def gi_yieldfrom(self):
        return self.__wrapped.gi_yieldfrom
    cr_code = gi_code
    cr_frame = gi_frame
    cr_running = gi_running
    cr_await = gi_yieldfrom
    def __next__(self):
        return next(self.__wrapped)
    def __iter__(self):
        if self.__isgen:
            return self.__wrapped
        return self
    __await__ = __iter__

def coroutine(func):
    """Convert regular generator function to a coroutine."""

    if not callable(func):
        raise TypeError('types.coroutine() expects a callable')

    if (func.__class__ is FunctionType and
        getattr(func, '__code__', None).__class__ is CodeType):

        co_flags = func.__code__.co_flags

        # Check if 'func' is a coroutine function.
        # (0x180 == CO_COROUTINE | CO_ITERABLE_COROUTINE)
        if co_flags & 0x180:
            return func

        # Check if 'func' is a generator function.
        # (0x20 == CO_GENERATOR)
        if co_flags & 0x20:
            # TODO: Implement this in C.
            co = func.__code__
            # 0x100 == CO_ITERABLE_COROUTINE
            func.__code__ = co.replace(co_flags=co.co_flags | 0x100)
            return func

    # The following code is primarily to support functions that
    # return generator-like objects (for instance generators
    # compiled with Cython).

    # Delay functools and _collections_abc import for speeding up types import.
    import functools
    import _collections_abc
    @functools.wraps(func)
    def wrapped(*args, **kwargs):
        coro = func(*args, **kwargs)
        if (coro.__class__ is CoroutineType or
            coro.__class__ is GeneratorType and coro.gi_code.co_flags & 0x100):
            # 'coro' is a native coroutine object or an iterable coroutine
            return coro
        if (isinstance(coro, _collections_abc.Generator) and
            not isinstance(coro, _collections_abc.Coroutine)):
            # 'coro' is either a pure Python generator iterator, or it
            # implements collections.abc.Generator (and does not implement
            # collections.abc.Coroutine).
            return _GeneratorWrapper(coro)
        # 'coro' is either an instance of collections.abc.Coroutine or
        # some other object -- pass it through.
        return coro

    return wrapped

GenericAlias = type(list[int])
UnionType = type(int | str)

EllipsisType = type(Ellipsis)
NoneType = type(None)
NotImplementedType = type(NotImplemented)

__all__ = [n for n in globals() if n[:1] != '_']
