# Copyright 2007 Google, Inc. All Rights Reserved.
# Licensed to PSF under a Contributor Agreement.

"""Abstract Base Classes (ABCs) according to PEP 3119."""


def abstractmethod(funcobj):
    """A decorator indicating abstract methods.

    Requires that the metaclass is ABCMeta or derived from it.  A
    class that has a metaclass derived from ABCMeta cannot be
    instantiated unless all of its abstract methods are overridden.
    The abstract methods can be called using any of the normal
    'super' call mechanisms.  abstractmethod() may be used to declare
    abstract methods for properties and descriptors.

    Usage:

        class C(metaclass=ABCMeta):
            @abstractmethod
            def my_abstract_method(self, arg1, arg2, argN):
                ...
    """
    funcobj.__isabstractmethod__ = True
    return funcobj


class abstractclassmethod(classmethod):
    """A decorator indicating abstract classmethods.

    Deprecated, use 'classmethod' with 'abstractmethod' instead:

        class C(ABC):
            @classmethod
            @abstractmethod
            def my_abstract_classmethod(cls, ...):
                ...

    """

    __isabstractmethod__ = True

    def __init__(self, callable):
        callable.__isabstractmethod__ = True
        super().__init__(callable)


class abstractstaticmethod(staticmethod):
    """A decorator indicating abstract staticmethods.

    Deprecated, use 'staticmethod' with 'abstractmethod' instead:

        class C(ABC):
            @staticmethod
            @abstractmethod
            def my_abstract_staticmethod(...):
                ...

    """

    __isabstractmethod__ = True

    def __init__(self, callable):
        callable.__isabstractmethod__ = True
        super().__init__(callable)


class abstractproperty(property):
    """A decorator indicating abstract properties.

    Deprecated, use 'property' with 'abstractmethod' instead:

        class C(ABC):
            @property
            @abstractmethod
            def my_abstract_property(self):
                ...

    """

    __isabstractmethod__ = True


try:
    from _abc import (get_cache_token, _abc_init, _abc_register,
                      _abc_instancecheck, _abc_subclasscheck, _get_dump,
                      _reset_registry, _reset_caches)
except ImportError:
    from _py_abc import ABCMeta, get_cache_token
    ABCMeta.__module__ = 'abc'
else:
    class ABCMeta(type):
        """Metaclass for defining Abstract Base Classes (ABCs).

        Use this metaclass to create an ABC.  An ABC can be subclassed
        directly, and then acts as a mix-in class.  You can also register
        unrelated concrete classes (even built-in classes) and unrelated
        ABCs as 'virtual subclasses' -- these and their descendants will
        be considered subclasses of the registering ABC by the built-in
        issubclass() function, but the registering ABC won't show up in
        their MRO (Method Resolution Order) nor will method
        implementations defined by the registering ABC be callable (not
        even via super()).
        """
        def __new__(mcls, name, bases, namespace, /, **kwargs):
            cls = super().__new__(mcls, name, bases, namespace, **kwargs)
            _abc_init(cls)
            return cls

        def register(cls, subclass):
            """Register a virtual subclass of an ABC.

            Returns the subclass, to allow usage as a class decorator.
            """
            return _abc_register(cls, subclass)

        def __instancecheck__(cls, instance):
            """Override for isinstance(instance, cls)."""
            return _abc_instancecheck(cls, instance)

        def __subclasscheck__(cls, subclass):
            """Override for issubclass(subclass, cls)."""
            return _abc_subclasscheck(cls, subclass)

        def _dump_registry(cls, file=None):
            """Debug helper to print the ABC registry."""
            print(f"Class: {cls.__module__}.{cls.__qualname__}", file=file)
            print(f"Inv. counter: {get_cache_token()}", file=file)
            (_abc_registry, _abc_cache, _abc_negative_cache,
             _abc_negative_cache_version) = _get_dump(cls)
            print(f"_abc_registry: {_abc_registry!r}", file=file)
            print(f"_abc_cache: {_abc_cache!r}", file=file)
            print(f"_abc_negative_cache: {_abc_negative_cache!r}", file=file)
            print(f"_abc_negative_cache_version: {_abc_negative_cache_version!r}",
                  file=file)

        def _abc_registry_clear(cls):
            """Clear the registry (for debugging or testing)."""
            _reset_registry(cls)

        def _abc_caches_clear(cls):
            """Clear the caches (for debugging or testing)."""
            _reset_caches(cls)


def update_abstractmethods(cls):
    """Recalculate the set of abstract methods of an abstract class.

    If a class has had one of its abstract methods implemented after the
    class was created, the method will not be considered implemented until
    this function is called. Alternatively, if a new abstract method has been
    added to the class, it will only be considered an abstract method of the
    class after this function is called.

    This function should be called before any use is made of the class,
    usually in class decorators that add methods to the subject class.

    Returns cls, to allow usage as a class decorator.

    If cls is not an instance of ABCMeta, does nothing.
    """
    if not hasattr(cls, '__abstractmethods__'):
        # We check for __abstractmethods__ here because cls might by a C
        # implementation or a python implementation (especially during
        # testing), and we want to handle both cases.
        return cls

    abstracts = set()
    # Check the existing abstract methods of the parents, keep only the ones
    # that are not implemented.
    for scls in cls.__bases__:
        for name in getattr(scls, '__abstractmethods__', ()):
            value = getattr(cls, name, None)
            if getattr(value, "__isabstractmethod__", False):
                abstracts.add(name)
    # Also add any other newly added abstract methods.
    for name, value in cls.__dict__.items():
        if getattr(value, "__isabstractmethod__", False):
            abstracts.add(name)
    cls.__abstractmethods__ = frozenset(abstracts)
    return cls


class ABC(metaclass=ABCMeta):
    """Helper class that provides a standard way to create an ABC using
    inheritance.
    """
    __slots__ = ()
