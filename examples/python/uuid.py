r"""UUID objects (universally unique identifiers) according to RFC 4122.

This module provides immutable UUID objects (class UUID) and the functions
uuid1(), uuid3(), uuid4(), uuid5() for generating version 1, 3, 4, and 5
UUIDs as specified in RFC 4122.

If all you want is a unique ID, you should probably call uuid1() or uuid4().
Note that uuid1() may compromise privacy since it creates a UUID containing
the computer's network address.  uuid4() creates a random UUID.

Typical usage:

    >>> import uuid

    # make a UUID based on the host ID and current time
    >>> uuid.uuid1()    # doctest: +SKIP
    UUID('a8098c1a-f86e-11da-bd1a-00112444be1e')

    # make a UUID using an MD5 hash of a namespace UUID and a name
    >>> uuid.uuid3(uuid.NAMESPACE_DNS, 'python.org')
    UUID('6fa459ea-ee8a-3ca4-894e-db77e160355e')

    # make a random UUID
    >>> uuid.uuid4()    # doctest: +SKIP
    UUID('16fd2706-8baf-433b-82eb-8c7fada847da')

    # make a UUID using a SHA-1 hash of a namespace UUID and a name
    >>> uuid.uuid5(uuid.NAMESPACE_DNS, 'python.org')
    UUID('886313e1-3b8a-5372-9b90-0c9aee199e5d')

    # make a UUID from a string of hex digits (braces and hyphens ignored)
    >>> x = uuid.UUID('{00010203-0405-0607-0809-0a0b0c0d0e0f}')

    # convert a UUID to a string of hex digits in standard form
    >>> str(x)
    '00010203-0405-0607-0809-0a0b0c0d0e0f'

    # get the raw 16 bytes of the UUID
    >>> x.bytes
    b'\x00\x01\x02\x03\x04\x05\x06\x07\x08\t\n\x0b\x0c\r\x0e\x0f'

    # make a UUID from a 16-byte string
    >>> uuid.UUID(bytes=x.bytes)
    UUID('00010203-0405-0607-0809-0a0b0c0d0e0f')
"""

import os
import sys

from enum import Enum, _simple_enum


__author__ = 'Ka-Ping Yee <ping@zesty.ca>'

# The recognized platforms - known behaviors
if sys.platform in ('win32', 'darwin'):
    _AIX = _LINUX = False
else:
    import platform
    _platform_system = platform.system()
    _AIX     = _platform_system == 'AIX'
    _LINUX   = _platform_system == 'Linux'

_MAC_DELIM = b':'
_MAC_OMITS_LEADING_ZEROES = False
if _AIX:
    _MAC_DELIM = b'.'
    _MAC_OMITS_LEADING_ZEROES = True

RESERVED_NCS, RFC_4122, RESERVED_MICROSOFT, RESERVED_FUTURE = [
    'reserved for NCS compatibility', 'specified in RFC 4122',
    'reserved for Microsoft compatibility', 'reserved for future definition']

int_ = int      # The built-in int type
bytes_ = bytes  # The built-in bytes type


@_simple_enum(Enum)
class SafeUUID:
    safe = 0
    unsafe = -1
    unknown = None


class UUID:
    """Instances of the UUID class represent UUIDs as specified in RFC 4122.
    UUID objects are immutable, hashable, and usable as dictionary keys.
    Converting a UUID to a string with str() yields something in the form
    '12345678-1234-1234-1234-123456789abc'.  The UUID constructor accepts
    five possible forms: a similar string of hexadecimal digits, or a tuple
    of six integer fields (with 32-bit, 16-bit, 16-bit, 8-bit, 8-bit, and
    48-bit values respectively) as an argument named 'fields', or a string
    of 16 bytes (with all the integer fields in big-endian order) as an
    argument named 'bytes', or a string of 16 bytes (with the first three
    fields in little-endian order) as an argument named 'bytes_le', or a
    single 128-bit integer as an argument named 'int'.

    UUIDs have these read-only attributes:

        bytes       the UUID as a 16-byte string (containing the six
                    integer fields in big-endian byte order)

        bytes_le    the UUID as a 16-byte string (with time_low, time_mid,
                    and time_hi_version in little-endian byte order)

        fields      a tuple of the six integer fields of the UUID,
                    which are also available as six individual attributes
                    and two derived attributes:

            time_low                the first 32 bits of the UUID
            time_mid                the next 16 bits of the UUID
            time_hi_version         the next 16 bits of the UUID
            clock_seq_hi_variant    the next 8 bits of the UUID
            clock_seq_low           the next 8 bits of the UUID
            node                    the last 48 bits of the UUID

            time                    the 60-bit timestamp
            clock_seq               the 14-bit sequence number

        hex         the UUID as a 32-character hexadecimal string

        int         the UUID as a 128-bit integer

        urn         the UUID as a URN as specified in RFC 4122

        variant     the UUID variant (one of the constants RESERVED_NCS,
                    RFC_4122, RESERVED_MICROSOFT, or RESERVED_FUTURE)

        version     the UUID version number (1 through 5, meaningful only
                    when the variant is RFC_4122)

        is_safe     An enum indicating whether the UUID has been generated in
                    a way that is safe for multiprocessing applications, via
                    uuid_generate_time_safe(3).
    """

    __slots__ = ('int', 'is_safe', '__weakref__')

    def __init__(self, hex=None, bytes=None, bytes_le=None, fields=None,
                       int=None, version=None,
                       *, is_safe=SafeUUID.unknown):
        r"""Create a UUID from either a string of 32 hexadecimal digits,
        a string of 16 bytes as the 'bytes' argument, a string of 16 bytes
        in little-endian order as the 'bytes_le' argument, a tuple of six
        integers (32-bit time_low, 16-bit time_mid, 16-bit time_hi_version,
        8-bit clock_seq_hi_variant, 8-bit clock_seq_low, 48-bit node) as
        the 'fields' argument, or a single 128-bit integer as the 'int'
        argument.  When a string of hex digits is given, curly braces,
        hyphens, and a URN prefix are all optional.  For example, these
        expressions all yield the same UUID:

        UUID('{12345678-1234-5678-1234-567812345678}')
        UUID('12345678123456781234567812345678')
        UUID('urn:uuid:12345678-1234-5678-1234-567812345678')
        UUID(bytes='\x12\x34\x56\x78'*4)
        UUID(bytes_le='\x78\x56\x34\x12\x34\x12\x78\x56' +
                      '\x12\x34\x56\x78\x12\x34\x56\x78')
        UUID(fields=(0x12345678, 0x1234, 0x5678, 0x12, 0x34, 0x567812345678))
        UUID(int=0x12345678123456781234567812345678)

        Exactly one of 'hex', 'bytes', 'bytes_le', 'fields', or 'int' must
        be given.  The 'version' argument is optional; if given, the resulting
        UUID will have its variant and version set according to RFC 4122,
        overriding the given 'hex', 'bytes', 'bytes_le', 'fields', or 'int'.

        is_safe is an enum exposed as an attribute on the instance.  It
        indicates whether the UUID has been generated in a way that is safe
        for multiprocessing applications, via uuid_generate_time_safe(3).
        """

        if [hex, bytes, bytes_le, fields, int].count(None) != 4:
            raise TypeError('one of the hex, bytes, bytes_le, fields, '
                            'or int arguments must be given')
        if hex is not None:
            hex = hex.replace('urn:', '').replace('uuid:', '')
            hex = hex.strip('{}').replace('-', '')
            if len(hex) != 32:
                raise ValueError('badly formed hexadecimal UUID string')
            int = int_(hex, 16)
        if bytes_le is not None:
            if len(bytes_le) != 16:
                raise ValueError('bytes_le is not a 16-char string')
            bytes = (bytes_le[4-1::-1] + bytes_le[6-1:4-1:-1] +
                     bytes_le[8-1:6-1:-1] + bytes_le[8:])
        if bytes is not None:
            if len(bytes) != 16:
                raise ValueError('bytes is not a 16-char string')
            assert isinstance(bytes, bytes_), repr(bytes)
            int = int_.from_bytes(bytes)  # big endian
        if fields is not None:
            if len(fields) != 6:
                raise ValueError('fields is not a 6-tuple')
            (time_low, time_mid, time_hi_version,
             clock_seq_hi_variant, clock_seq_low, node) = fields
            if not 0 <= time_low < 1<<32:
                raise ValueError('field 1 out of range (need a 32-bit value)')
            if not 0 <= time_mid < 1<<16:
                raise ValueError('field 2 out of range (need a 16-bit value)')
            if not 0 <= time_hi_version < 1<<16:
                raise ValueError('field 3 out of range (need a 16-bit value)')
            if not 0 <= clock_seq_hi_variant < 1<<8:
                raise ValueError('field 4 out of range (need an 8-bit value)')
            if not 0 <= clock_seq_low < 1<<8:
                raise ValueError('field 5 out of range (need an 8-bit value)')
            if not 0 <= node < 1<<48:
                raise ValueError('field 6 out of range (need a 48-bit value)')
            clock_seq = (clock_seq_hi_variant << 8) | clock_seq_low
            int = ((time_low << 96) | (time_mid << 80) |
                   (time_hi_version << 64) | (clock_seq << 48) | node)
        if int is not None:
            if not 0 <= int < 1<<128:
                raise ValueError('int is out of range (need a 128-bit value)')
        if version is not None:
            if not 1 <= version <= 5:
                raise ValueError('illegal version number')
            # Set the variant to RFC 4122.
            int &= ~(0xc000 << 48)
            int |= 0x8000 << 48
            # Set the version number.
            int &= ~(0xf000 << 64)
            int |= version << 76
        object.__setattr__(self, 'int', int)
        object.__setattr__(self, 'is_safe', is_safe)

    def __getstate__(self):
        d = {'int': self.int}
        if self.is_safe != SafeUUID.unknown:
            # is_safe is a SafeUUID instance.  Return just its value, so that
            # it can be un-pickled in older Python versions without SafeUUID.
            d['is_safe'] = self.is_safe.value
        return d

    def __setstate__(self, state):
        object.__setattr__(self, 'int', state['int'])
        # is_safe was added in 3.7; it is also omitted when it is "unknown"
        object.__setattr__(self, 'is_safe',
                           SafeUUID(state['is_safe'])
                           if 'is_safe' in state else SafeUUID.unknown)

    def __eq__(self, other):
        if isinstance(other, UUID):
            return self.int == other.int
        return NotImplemented

    # Q. What's the value of being able to sort UUIDs?
    # A. Use them as keys in a B-Tree or similar mapping.

    def __lt__(self, other):
        if isinstance(other, UUID):
            return self.int < other.int
        return NotImplemented

    def __gt__(self, other):
        if isinstance(other, UUID):
            return self.int > other.int
        return NotImplemented

    def __le__(self, other):
        if isinstance(other, UUID):
            return self.int <= other.int
        return NotImplemented

    def __ge__(self, other):
        if isinstance(other, UUID):
            return self.int >= other.int
        return NotImplemented

    def __hash__(self):
        return hash(self.int)

    def __int__(self):
        return self.int

    def __repr__(self):
        return '%s(%r)' % (self.__class__.__name__, str(self))

    def __setattr__(self, name, value):
        raise TypeError('UUID objects are immutable')

    def __str__(self):
        hex = '%032x' % self.int
        return '%s-%s-%s-%s-%s' % (
            hex[:8], hex[8:12], hex[12:16], hex[16:20], hex[20:])

    @property
    def bytes(self):
        return self.int.to_bytes(16)  # big endian

    @property
    def bytes_le(self):
        bytes = self.bytes
        return (bytes[4-1::-1] + bytes[6-1:4-1:-1] + bytes[8-1:6-1:-1] +
                bytes[8:])

    @property
    def fields(self):
        return (self.time_low, self.time_mid, self.time_hi_version,
                self.clock_seq_hi_variant, self.clock_seq_low, self.node)

    @property
    def time_low(self):
        return self.int >> 96

    @property
    def time_mid(self):
        return (self.int >> 80) & 0xffff

    @property
    def time_hi_version(self):
        return (self.int >> 64) & 0xffff

    @property
    def clock_seq_hi_variant(self):
        return (self.int >> 56) & 0xff

    @property
    def clock_seq_low(self):
        return (self.int >> 48) & 0xff

    @property
    def time(self):
        return (((self.time_hi_version & 0x0fff) << 48) |
                (self.time_mid << 32) | self.time_low)

    @property
    def clock_seq(self):
        return (((self.clock_seq_hi_variant & 0x3f) << 8) |
                self.clock_seq_low)

    @property
    def node(self):
        return self.int & 0xffffffffffff

    @property
    def hex(self):
        return '%032x' % self.int

    @property
    def urn(self):
        return 'urn:uuid:' + str(self)

    @property
    def variant(self):
        if not self.int & (0x8000 << 48):
            return RESERVED_NCS
        elif not self.int & (0x4000 << 48):
            return RFC_4122
        elif not self.int & (0x2000 << 48):
            return RESERVED_MICROSOFT
        else:
            return RESERVED_FUTURE

    @property
    def version(self):
        # The version bits are only meaningful for RFC 4122 UUIDs.
        if self.variant == RFC_4122:
            return int((self.int >> 76) & 0xf)


def _get_command_stdout(command, *args):
    import io, os, shutil, subprocess

    try:
        path_dirs = os.environ.get('PATH', os.defpath).split(os.pathsep)
        path_dirs.extend(['/sbin', '/usr/sbin'])
        executable = shutil.which(command, path=os.pathsep.join(path_dirs))
        if executable is None:
            return None
        # LC_ALL=C to ensure English output, stderr=DEVNULL to prevent output
        # on stderr (Note: we don't have an example where the words we search
        # for are actually localized, but in theory some system could do so.)
        env = dict(os.environ)
        env['LC_ALL'] = 'C'
        # Empty strings will be quoted by popen so we should just ommit it
        if args != ('',):
            command = (executable, *args)
        else:
            command = (executable,)
        proc = subprocess.Popen(command,
                                stdout=subprocess.PIPE,
                                stderr=subprocess.DEVNULL,
                                env=env)
        if not proc:
            return None
        stdout, stderr = proc.communicate()
        return io.BytesIO(stdout)
    except (OSError, subprocess.SubprocessError):
        return None


# For MAC (a.k.a. IEEE 802, or EUI-48) addresses, the second least significant
# bit of the first octet signifies whether the MAC address is universally (0)
# or locally (1) administered.  Network cards from hardware manufacturers will
# always be universally administered to guarantee global uniqueness of the MAC
# address, but any particular machine may have other interfaces which are
# locally administered.  An example of the latter is the bridge interface to
# the Touch Bar on MacBook Pros.
#
# This bit works out to be the 42nd bit counting from 1 being the least
# significant, or 1<<41.  We'll prefer universally administered MAC addresses
# over locally administered ones since the former are globally unique, but
# we'll return the first of the latter found if that's all the machine has.
#
# See https://en.wikipedia.org/wiki/MAC_address#Universal_vs._local

def _is_universal(mac):
    return not (mac & (1 << 41))


def _find_mac_near_keyword(command, args, keywords, get_word_index):
    """Searches a command's output for a MAC address near a keyword.

    Each line of words in the output is case-insensitively searched for
    any of the given keywords.  Upon a match, get_word_index is invoked
    to pick a word from the line, given the index of the match.  For
    example, lambda i: 0 would get the first word on the line, while
    lambda i: i - 1 would get the word preceding the keyword.
    """
    stdout = _get_command_stdout(command, args)
    if stdout is None:
        return None

    first_local_mac = None
    for line in stdout:
        words = line.lower().rstrip().split()
        for i in range(len(words)):
            if words[i] in keywords:
                try:
                    word = words[get_word_index(i)]
                    mac = int(word.replace(_MAC_DELIM, b''), 16)
                except (ValueError, IndexError):
                    # Virtual interfaces, such as those provided by
                    # VPNs, do not have a colon-delimited MAC address
                    # as expected, but a 16-byte HWAddr separated by
                    # dashes. These should be ignored in favor of a
                    # real MAC address
                    pass
                else:
                    if _is_universal(mac):
                        return mac
                    first_local_mac = first_local_mac or mac
    return first_local_mac or None


def _parse_mac(word):
    # Accept 'HH:HH:HH:HH:HH:HH' MAC address (ex: '52:54:00:9d:0e:67'),
    # but reject IPv6 address (ex: 'fe80::5054:ff:fe9' or '123:2:3:4:5:6:7:8').
    #
    # Virtual interfaces, such as those provided by VPNs, do not have a
    # colon-delimited MAC address as expected, but a 16-byte HWAddr separated
    # by dashes. These should be ignored in favor of a real MAC address
    parts = word.split(_MAC_DELIM)
    if len(parts) != 6:
        return
    if _MAC_OMITS_LEADING_ZEROES:
        # (Only) on AIX the macaddr value given is not prefixed by 0, e.g.
        # en0   1500  link#2      fa.bc.de.f7.62.4 110854824     0 160133733     0     0
        # not
        # en0   1500  link#2      fa.bc.de.f7.62.04 110854824     0 160133733     0     0
        if not all(1 <= len(part) <= 2 for part in parts):
            return
        hexstr = b''.join(part.rjust(2, b'0') for part in parts)
    else:
        if not all(len(part) == 2 for part in parts):
            return
        hexstr = b''.join(parts)
    try:
        return int(hexstr, 16)
    except ValueError:
        return


def _find_mac_under_heading(command, args, heading):
    """Looks for a MAC address under a heading in a command's output.

    The first line of words in the output is searched for the given
    heading. Words at the same word index as the heading in subsequent
    lines are then examined to see if they look like MAC addresses.
    """
    stdout = _get_command_stdout(command, args)
    if stdout is None:
        return None

    keywords = stdout.readline().rstrip().split()
    try:
        column_index = keywords.index(heading)
    except ValueError:
        return None

    first_local_mac = None
    for line in stdout:
        words = line.rstrip().split()
        try:
            word = words[column_index]
        except IndexError:
            continue

        mac = _parse_mac(word)
        if mac is None:
            continue
        if _is_universal(mac):
            return mac
        if first_local_mac is None:
            first_local_mac = mac

    return first_local_mac


# The following functions call external programs to 'get' a macaddr value to
# be used as basis for an uuid
def _ifconfig_getnode():
    """Get the hardware address on Unix by running ifconfig."""
    # This works on Linux ('' or '-a'), Tru64 ('-av'), but not all Unixes.
    keywords = (b'hwaddr', b'ether', b'address:', b'lladdr')
    for args in ('', '-a', '-av'):
        mac = _find_mac_near_keyword('ifconfig', args, keywords, lambda i: i+1)
        if mac:
            return mac
    return None

def _ip_getnode():
    """Get the hardware address on Unix by running ip."""
    # This works on Linux with iproute2.
    mac = _find_mac_near_keyword('ip', 'link', [b'link/ether'], lambda i: i+1)
    if mac:
        return mac
    return None

def _arp_getnode():
    """Get the hardware address on Unix by running arp."""
    import os, socket
    if not hasattr(socket, "gethostbyname"):
        return None
    try:
        ip_addr = socket.gethostbyname(socket.gethostname())
    except OSError:
        return None

    # Try getting the MAC addr from arp based on our IP address (Solaris).
    mac = _find_mac_near_keyword('arp', '-an', [os.fsencode(ip_addr)], lambda i: -1)
    if mac:
        return mac

    # This works on OpenBSD
    mac = _find_mac_near_keyword('arp', '-an', [os.fsencode(ip_addr)], lambda i: i+1)
    if mac:
        return mac

    # This works on Linux, FreeBSD and NetBSD
    mac = _find_mac_near_keyword('arp', '-an', [os.fsencode('(%s)' % ip_addr)],
                    lambda i: i+2)
    # Return None instead of 0.
    if mac:
        return mac
    return None

def _lanscan_getnode():
    """Get the hardware address on Unix by running lanscan."""
    # This might work on HP-UX.
    return _find_mac_near_keyword('lanscan', '-ai', [b'lan0'], lambda i: 0)

def _netstat_getnode():
    """Get the hardware address on Unix by running netstat."""
    # This works on AIX and might work on Tru64 UNIX.
    return _find_mac_under_heading('netstat', '-ian', b'Address')

def _ipconfig_getnode():
    """[DEPRECATED] Get the hardware address on Windows."""
    # bpo-40501: UuidCreateSequential() is now the only supported approach
    return _windll_getnode()

def _netbios_getnode():
    """[DEPRECATED] Get the hardware address on Windows."""
    # bpo-40501: UuidCreateSequential() is now the only supported approach
    return _windll_getnode()


# Import optional C extension at toplevel, to help disabling it when testing
try:
    import _uuid
    _generate_time_safe = getattr(_uuid, "generate_time_safe", None)
    _UuidCreate = getattr(_uuid, "UuidCreate", None)
    _has_uuid_generate_time_safe = _uuid.has_uuid_generate_time_safe
except ImportError:
    _uuid = None
    _generate_time_safe = None
    _UuidCreate = None
    _has_uuid_generate_time_safe = None


def _load_system_functions():
    """[DEPRECATED] Platform-specific functions loaded at import time"""


def _unix_getnode():
    """Get the hardware address on Unix using the _uuid extension module."""
    if _generate_time_safe:
        uuid_time, _ = _generate_time_safe()
        return UUID(bytes=uuid_time).node

def _windll_getnode():
    """Get the hardware address on Windows using the _uuid extension module."""
    if _UuidCreate:
        uuid_bytes = _UuidCreate()
        return UUID(bytes_le=uuid_bytes).node

def _random_getnode():
    """Get a random node ID."""
    # RFC 4122, $4.1.6 says "For systems with no IEEE address, a randomly or
    # pseudo-randomly generated value may be used; see Section 4.5.  The
    # multicast bit must be set in such addresses, in order that they will
    # never conflict with addresses obtained from network cards."
    #
    # The "multicast bit" of a MAC address is defined to be "the least
    # significant bit of the first octet".  This works out to be the 41st bit
    # counting from 1 being the least significant bit, or 1<<40.
    #
    # See https://en.wikipedia.org/wiki/MAC_address#Unicast_vs._multicast
    import random
    return random.getrandbits(48) | (1 << 40)


# _OS_GETTERS, when known, are targeted for a specific OS or platform.
# The order is by 'common practice' on the specified platform.
# Note: 'posix' and 'windows' _OS_GETTERS are prefixed by a dll/dlload() method
# which, when successful, means none of these "external" methods are called.
# _GETTERS is (also) used by test_uuid.py to SkipUnless(), e.g.,
#     @unittest.skipUnless(_uuid._ifconfig_getnode in _uuid._GETTERS, ...)
if _LINUX:
    _OS_GETTERS = [_ip_getnode, _ifconfig_getnode]
elif sys.platform == 'darwin':
    _OS_GETTERS = [_ifconfig_getnode, _arp_getnode, _netstat_getnode]
elif sys.platform == 'win32':
    # bpo-40201: _windll_getnode will always succeed, so these are not needed
    _OS_GETTERS = []
elif _AIX:
    _OS_GETTERS = [_netstat_getnode]
else:
    _OS_GETTERS = [_ifconfig_getnode, _ip_getnode, _arp_getnode,
                   _netstat_getnode, _lanscan_getnode]
if os.name == 'posix':
    _GETTERS = [_unix_getnode] + _OS_GETTERS
elif os.name == 'nt':
    _GETTERS = [_windll_getnode] + _OS_GETTERS
else:
    _GETTERS = _OS_GETTERS

_node = None

def getnode():
    """Get the hardware address as a 48-bit positive integer.

    The first time this runs, it may launch a separate program, which could
    be quite slow.  If all attempts to obtain the hardware address fail, we
    choose a random 48-bit number with its eighth bit set to 1 as recommended
    in RFC 4122.
    """
    global _node
    if _node is not None:
        return _node

    for getter in _GETTERS + [_random_getnode]:
        try:
            _node = getter()
        except:
            continue
        if (_node is not None) and (0 <= _node < (1 << 48)):
            return _node
    assert False, '_random_getnode() returned invalid value: {}'.format(_node)


_last_timestamp = None

def uuid1(node=None, clock_seq=None):
    """Generate a UUID from a host ID, sequence number, and the current time.
    If 'node' is not given, getnode() is used to obtain the hardware
    address.  If 'clock_seq' is given, it is used as the sequence number;
    otherwise a random 14-bit sequence number is chosen."""

    # When the system provides a version-1 UUID generator, use it (but don't
    # use UuidCreate here because its UUIDs don't conform to RFC 4122).
    if _generate_time_safe is not None and node is clock_seq is None:
        uuid_time, safely_generated = _generate_time_safe()
        try:
            is_safe = SafeUUID(safely_generated)
        except ValueError:
            is_safe = SafeUUID.unknown
        return UUID(bytes=uuid_time, is_safe=is_safe)

    global _last_timestamp
    import time
    nanoseconds = time.time_ns()
    # 0x01b21dd213814000 is the number of 100-ns intervals between the
    # UUID epoch 1582-10-15 00:00:00 and the Unix epoch 1970-01-01 00:00:00.
    timestamp = nanoseconds // 100 + 0x01b21dd213814000
    if _last_timestamp is not None and timestamp <= _last_timestamp:
        timestamp = _last_timestamp + 1
    _last_timestamp = timestamp
    if clock_seq is None:
        import random
        clock_seq = random.getrandbits(14) # instead of stable storage
    time_low = timestamp & 0xffffffff
    time_mid = (timestamp >> 32) & 0xffff
    time_hi_version = (timestamp >> 48) & 0x0fff
    clock_seq_low = clock_seq & 0xff
    clock_seq_hi_variant = (clock_seq >> 8) & 0x3f
    if node is None:
        node = getnode()
    return UUID(fields=(time_low, time_mid, time_hi_version,
                        clock_seq_hi_variant, clock_seq_low, node), version=1)

def uuid3(namespace, name):
    """Generate a UUID from the MD5 hash of a namespace UUID and a name."""
    from hashlib import md5
    digest = md5(
        namespace.bytes + bytes(name, "utf-8"),
        usedforsecurity=False
    ).digest()
    return UUID(bytes=digest[:16], version=3)

def uuid4():
    """Generate a random UUID."""
    return UUID(bytes=os.urandom(16), version=4)

def uuid5(namespace, name):
    """Generate a UUID from the SHA-1 hash of a namespace UUID and a name."""
    from hashlib import sha1
    hash = sha1(namespace.bytes + bytes(name, "utf-8")).digest()
    return UUID(bytes=hash[:16], version=5)

# The following standard UUIDs are for use with uuid3() or uuid5().

NAMESPACE_DNS = UUID('6ba7b810-9dad-11d1-80b4-00c04fd430c8')
NAMESPACE_URL = UUID('6ba7b811-9dad-11d1-80b4-00c04fd430c8')
NAMESPACE_OID = UUID('6ba7b812-9dad-11d1-80b4-00c04fd430c8')
NAMESPACE_X500 = UUID('6ba7b814-9dad-11d1-80b4-00c04fd430c8')
