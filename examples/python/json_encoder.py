"""Implementation of JSONEncoder
"""
import re

try:
    from _json import encode_basestring_ascii as c_encode_basestring_ascii
except ImportError:
    c_encode_basestring_ascii = None
try:
    from _json import encode_basestring as c_encode_basestring
except ImportError:
    c_encode_basestring = None
try:
    from _json import make_encoder as c_make_encoder
except ImportError:
    c_make_encoder = None

ESCAPE = re.compile(r'[\x00-\x1f\\"\b\f\n\r\t]')
ESCAPE_ASCII = re.compile(r'([\\"]|[^\ -~])')
HAS_UTF8 = re.compile(b'[\x80-\xff]')
ESCAPE_DCT = {
    '\\': '\\\\',
    '"': '\\"',
    '\b': '\\b',
    '\f': '\\f',
    '\n': '\\n',
    '\r': '\\r',
    '\t': '\\t',
}
for i in range(0x20):
    ESCAPE_DCT.setdefault(chr(i), '\\u{0:04x}'.format(i))
    #ESCAPE_DCT.setdefault(chr(i), '\\u%04x' % (i,))
del i

INFINITY = float('inf')

def py_encode_basestring(s):
    """Return a JSON representation of a Python string

    """
    def replace(match):
        return ESCAPE_DCT[match.group(0)]
    return '"' + ESCAPE.sub(replace, s) + '"'


encode_basestring = (c_encode_basestring or py_encode_basestring)


def py_encode_basestring_ascii(s):
    """Return an ASCII-only JSON representation of a Python string

    """
    def replace(match):
        s = match.group(0)
        try:
            return ESCAPE_DCT[s]
        except KeyError:
            n = ord(s)
            if n < 0x10000:
                return '\\u{0:04x}'.format(n)
                #return '\\u%04x' % (n,)
            else:
                # surrogate pair
                n -= 0x10000
                s1 = 0xd800 | ((n >> 10) & 0x3ff)
                s2 = 0xdc00 | (n & 0x3ff)
                return '\\u{0:04x}\\u{1:04x}'.format(s1, s2)
    return '"' + ESCAPE_ASCII.sub(replace, s) + '"'


encode_basestring_ascii = (
    c_encode_basestring_ascii or py_encode_basestring_ascii)

class JSONEncoder(object):
    """Extensible JSON <https://json.org> encoder for Python data structures.

    Supports the following objects and types by default:

    +-------------------+---------------+
    | Python            | JSON          |
    +===================+===============+
    | dict              | object        |
    +-------------------+---------------+
    | list, tuple       | array         |
    +-------------------+---------------+
    | str               | string        |
    +-------------------+---------------+
    | int, float        | number        |
    +-------------------+---------------+
    | True              | true          |
    +-------------------+---------------+
    | False             | false         |
    +-------------------+---------------+
    | None              | null          |
    +-------------------+---------------+

    To extend this to recognize other objects, subclass and implement a
    ``.default()`` method with another method that returns a serializable
    object for ``o`` if possible, otherwise it should call the superclass
    implementation (to raise ``TypeError``).

    """
    item_separator = ', '
    key_separator = ': '
    def __init__(self, *, skipkeys=False, ensure_ascii=True,
            check_circular=True, allow_nan=True, sort_keys=False,
            indent=None, separators=None, default=None):
        """Constructor for JSONEncoder, with sensible defaults.

        If skipkeys is false, then it is a TypeError to attempt
        encoding of keys that are not str, int, float or None.  If
        skipkeys is True, such items are simply skipped.

        If ensure_ascii is true, the output is guaranteed to be str
        objects with all incoming non-ASCII characters escaped.  If
        ensure_ascii is false, the output can contain non-ASCII characters.

        If check_circular is true, then lists, dicts, and custom encoded
        objects will be checked for circular references during encoding to
        prevent an infinite recursion (which would cause an RecursionError).
        Otherwise, no such check takes place.

        If allow_nan is true, then NaN, Infinity, and -Infinity will be
        encoded as such.  This behavior is not JSON specification compliant,
        but is consistent with most JavaScript based encoders and decoders.
        Otherwise, it will be a ValueError to encode such floats.

        If sort_keys is true, then the output of dictionaries will be
        sorted by key; this is useful for regression tests to ensure
        that JSON serializations can be compared on a day-to-day basis.

        If indent is a non-negative integer, then JSON array
        elements and object members will be pretty-printed with that
        indent level.  An indent level of 0 will only insert newlines.
        None is the most compact representation.

        If specified, separators should be an (item_separator, key_separator)
        tuple.  The default is (', ', ': ') if *indent* is ``None`` and
        (',', ': ') otherwise.  To get the most compact JSON representation,
        you should specify (',', ':') to eliminate whitespace.

        If specified, default is a function that gets called for objects
        that can't otherwise be serialized.  It should return a JSON encodable
        version of the object or raise a ``TypeError``.

        """

        self.skipkeys = skipkeys
        self.ensure_ascii = ensure_ascii
        self.check_circular = check_circular
        self.allow_nan = allow_nan
        self.sort_keys = sort_keys
        self.indent = indent
        if separators is not None:
            self.item_separator, self.key_separator = separators
        elif indent is not None:
            self.item_separator = ','
        if default is not None:
            self.default = default

    def default(self, o):
        """Implement this method in a subclass such that it returns
        a serializable object for ``o``, or calls the base implementation
        (to raise a ``TypeError``).

        For example, to support arbitrary iterators, you could
        implement default like this::

            def default(self, o):
                try:
                    iterable = iter(o)
                except TypeError:
                    pass
                else:
                    return list(iterable)
                # Let the base class default method raise the TypeError
                return JSONEncoder.default(self, o)

        """
        raise TypeError(f'Object of type {o.__class__.__name__} '
                        f'is not JSON serializable')

    def encode(self, o):
        """Return a JSON string representation of a Python data structure.

        >>> from json.encoder import JSONEncoder
        >>> JSONEncoder().encode({"foo": ["bar", "baz"]})
        '{"foo": ["bar", "baz"]}'

        """
        # This is for extremely simple cases and benchmarks.
        if isinstance(o, str):
            if self.ensure_ascii:
                return encode_basestring_ascii(o)
            else:
                return encode_basestring(o)
        # This doesn't pass the iterator directly to ''.join() because the
        # exceptions aren't as detailed.  The list call should be roughly
        # equivalent to the PySequence_Fast that ''.join() would do.
        chunks = self.iterencode(o, _one_shot=True)
        if not isinstance(chunks, (list, tuple)):
            chunks = list(chunks)
        return ''.join(chunks)

    def iterencode(self, o, _one_shot=False):
        """Encode the given object and yield each string
        representation as available.

        For example::

            for chunk in JSONEncoder().iterencode(bigobject):
                mysocket.write(chunk)

        """
        if self.check_circular:
            markers = {}
        else:
            markers = None
        if self.ensure_ascii:
            _encoder = encode_basestring_ascii
        else:
            _encoder = encode_basestring

        def floatstr(o, allow_nan=self.allow_nan,
                _repr=float.__repr__, _inf=INFINITY, _neginf=-INFINITY):
            # Check for specials.  Note that this type of test is processor
            # and/or platform-specific, so do tests which don't depend on the
            # internals.

            if o != o:
                text = 'NaN'
            elif o == _inf:
                text = 'Infinity'
            elif o == _neginf:
                text = '-Infinity'
            else:
                return _repr(o)

            if not allow_nan:
                raise ValueError(
                    "Out of range float values are not JSON compliant: " +
                    repr(o))

            return text


        if (_one_shot and c_make_encoder is not None
                and self.indent is None):
            _iterencode = c_make_encoder(
                markers, self.default, _encoder, self.indent,
                self.key_separator, self.item_separator, self.sort_keys,
                self.skipkeys, self.allow_nan)
        else:
            _iterencode = _make_iterencode(
                markers, self.default, _encoder, self.indent, floatstr,
                self.key_separator, self.item_separator, self.sort_keys,
                self.skipkeys, _one_shot)
        return _iterencode(o, 0)

def _make_iterencode(markers, _default, _encoder, _indent, _floatstr,
        _key_separator, _item_separator, _sort_keys, _skipkeys, _one_shot,
        ## HACK: hand-optimized bytecode; turn globals into locals
        ValueError=ValueError,
        dict=dict,
        float=float,
        id=id,
        int=int,
        isinstance=isinstance,
        list=list,
        str=str,
        tuple=tuple,
        _intstr=int.__repr__,
    ):

    if _indent is not None and not isinstance(_indent, str):
        _indent = ' ' * _indent

    def _iterencode_list(lst, _current_indent_level):
        if not lst:
            yield '[]'
            return
        if markers is not None:
            markerid = id(lst)
            if markerid in markers:
                raise ValueError("Circular reference detected")
            markers[markerid] = lst
        buf = '['
        if _indent is not None:
            _current_indent_level += 1
            newline_indent = '\n' + _indent * _current_indent_level
            separator = _item_separator + newline_indent
            buf += newline_indent
        else:
            newline_indent = None
            separator = _item_separator
        first = True
        for value in lst:
            if first:
                first = False
            else:
                buf = separator
            if isinstance(value, str):
                yield buf + _encoder(value)
            elif value is None:
                yield buf + 'null'
            elif value is True:
                yield buf + 'true'
            elif value is False:
                yield buf + 'false'
            elif isinstance(value, int):
                # Subclasses of int/float may override __repr__, but we still
                # want to encode them as integers/floats in JSON. One example
                # within the standard library is IntEnum.
                yield buf + _intstr(value)
            elif isinstance(value, float):
                # see comment above for int
                yield buf + _floatstr(value)
            else:
                yield buf
                if isinstance(value, (list, tuple)):
                    chunks = _iterencode_list(value, _current_indent_level)
                elif isinstance(value, dict):
                    chunks = _iterencode_dict(value, _current_indent_level)
                else:
                    chunks = _iterencode(value, _current_indent_level)
                yield from chunks
        if newline_indent is not None:
            _current_indent_level -= 1
            yield '\n' + _indent * _current_indent_level
        yield ']'
        if markers is not None:
            del markers[markerid]

    def _iterencode_dict(dct, _current_indent_level):
        if not dct:
            yield '{}'
            return
        if markers is not None:
            markerid = id(dct)
            if markerid in markers:
                raise ValueError("Circular reference detected")
            markers[markerid] = dct
        yield '{'
        if _indent is not None:
            _current_indent_level += 1
            newline_indent = '\n' + _indent * _current_indent_level
            item_separator = _item_separator + newline_indent
            yield newline_indent
        else:
            newline_indent = None
            item_separator = _item_separator
        first = True
        if _sort_keys:
            items = sorted(dct.items())
        else:
            items = dct.items()
        for key, value in items:
            if isinstance(key, str):
                pass
            # JavaScript is weakly typed for these, so it makes sense to
            # also allow them.  Many encoders seem to do something like this.
            elif isinstance(key, float):
                # see comment for int/float in _make_iterencode
                key = _floatstr(key)
            elif key is True:
                key = 'true'
            elif key is False:
                key = 'false'
            elif key is None:
                key = 'null'
            elif isinstance(key, int):
                # see comment for int/float in _make_iterencode
                key = _intstr(key)
            elif _skipkeys:
                continue
            else:
                raise TypeError(f'keys must be str, int, float, bool or None, '
                                f'not {key.__class__.__name__}')
            if first:
                first = False
            else:
                yield item_separator
            yield _encoder(key)
            yield _key_separator
            if isinstance(value, str):
                yield _encoder(value)
            elif value is None:
                yield 'null'
            elif value is True:
                yield 'true'
            elif value is False:
                yield 'false'
            elif isinstance(value, int):
                # see comment for int/float in _make_iterencode
                yield _intstr(value)
            elif isinstance(value, float):
                # see comment for int/float in _make_iterencode
                yield _floatstr(value)
            else:
                if isinstance(value, (list, tuple)):
                    chunks = _iterencode_list(value, _current_indent_level)
                elif isinstance(value, dict):
                    chunks = _iterencode_dict(value, _current_indent_level)
                else:
                    chunks = _iterencode(value, _current_indent_level)
                yield from chunks
        if newline_indent is not None:
            _current_indent_level -= 1
            yield '\n' + _indent * _current_indent_level
        yield '}'
        if markers is not None:
            del markers[markerid]

    def _iterencode(o, _current_indent_level):
        if isinstance(o, str):
            yield _encoder(o)
        elif o is None:
            yield 'null'
        elif o is True:
            yield 'true'
        elif o is False:
            yield 'false'
        elif isinstance(o, int):
            # see comment for int/float in _make_iterencode
            yield _intstr(o)
        elif isinstance(o, float):
            # see comment for int/float in _make_iterencode
            yield _floatstr(o)
        elif isinstance(o, (list, tuple)):
            yield from _iterencode_list(o, _current_indent_level)
        elif isinstance(o, dict):
            yield from _iterencode_dict(o, _current_indent_level)
        else:
            if markers is not None:
                markerid = id(o)
                if markerid in markers:
                    raise ValueError("Circular reference detected")
                markers[markerid] = o
            o = _default(o)
            yield from _iterencode(o, _current_indent_level)
            if markers is not None:
                del markers[markerid]
    return _iterencode
