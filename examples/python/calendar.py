"""Calendar printing functions

Note when comparing these calendars to the ones printed by cal(1): By
default, these calendars have Monday as the first day of the week, and
Sunday as the last (the European convention). Use setfirstweekday() to
set the first day of the week (0=Monday, 6=Sunday)."""

import sys
import datetime
import locale as _locale
from itertools import repeat

__all__ = ["IllegalMonthError", "IllegalWeekdayError", "setfirstweekday",
           "firstweekday", "isleap", "leapdays", "weekday", "monthrange",
           "monthcalendar", "prmonth", "month", "prcal", "calendar",
           "timegm", "month_name", "month_abbr", "day_name", "day_abbr",
           "Calendar", "TextCalendar", "HTMLCalendar", "LocaleTextCalendar",
           "LocaleHTMLCalendar", "weekheader",
           "MONDAY", "TUESDAY", "WEDNESDAY", "THURSDAY", "FRIDAY",
           "SATURDAY", "SUNDAY"]

# Exception raised for bad input (with string parameter for details)
error = ValueError

# Exceptions raised for bad input
class IllegalMonthError(ValueError):
    def __init__(self, month):
        self.month = month
    def __str__(self):
        return "bad month number %r; must be 1-12" % self.month


class IllegalWeekdayError(ValueError):
    def __init__(self, weekday):
        self.weekday = weekday
    def __str__(self):
        return "bad weekday number %r; must be 0 (Monday) to 6 (Sunday)" % self.weekday


# Constants for months referenced later
January = 1
February = 2

# Number of days per month (except for February in leap years)
mdays = [0, 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31]

# This module used to have hard-coded lists of day and month names, as
# English strings.  The classes following emulate a read-only version of
# that, but supply localized names.  Note that the values are computed
# fresh on each call, in case the user changes locale between calls.

class _localized_month:

    _months = [datetime.date(2001, i+1, 1).strftime for i in range(12)]
    _months.insert(0, lambda x: "")

    def __init__(self, format):
        self.format = format

    def __getitem__(self, i):
        funcs = self._months[i]
        if isinstance(i, slice):
            return [f(self.format) for f in funcs]
        else:
            return funcs(self.format)

    def __len__(self):
        return 13


class _localized_day:

    # January 1, 2001, was a Monday.
    _days = [datetime.date(2001, 1, i+1).strftime for i in range(7)]

    def __init__(self, format):
        self.format = format

    def __getitem__(self, i):
        funcs = self._days[i]
        if isinstance(i, slice):
            return [f(self.format) for f in funcs]
        else:
            return funcs(self.format)

    def __len__(self):
        return 7


# Full and abbreviated names of weekdays
day_name = _localized_day('%A')
day_abbr = _localized_day('%a')

# Full and abbreviated names of months (1-based arrays!!!)
month_name = _localized_month('%B')
month_abbr = _localized_month('%b')

# Constants for weekdays
(MONDAY, TUESDAY, WEDNESDAY, THURSDAY, FRIDAY, SATURDAY, SUNDAY) = range(7)


def isleap(year):
    """Return True for leap years, False for non-leap years."""
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def leapdays(y1, y2):
    """Return number of leap years in range [y1, y2).
       Assume y1 <= y2."""
    y1 -= 1
    y2 -= 1
    return (y2//4 - y1//4) - (y2//100 - y1//100) + (y2//400 - y1//400)


def weekday(year, month, day):
    """Return weekday (0-6 ~ Mon-Sun) for year, month (1-12), day (1-31)."""
    if not datetime.MINYEAR <= year <= datetime.MAXYEAR:
        year = 2000 + year % 400
    return datetime.date(year, month, day).weekday()


def monthrange(year, month):
    """Return weekday (0-6 ~ Mon-Sun) and number of days (28-31) for
       year, month."""
    if not 1 <= month <= 12:
        raise IllegalMonthError(month)
    day1 = weekday(year, month, 1)
    ndays = mdays[month] + (month == February and isleap(year))
    return day1, ndays


def _monthlen(year, month):
    return mdays[month] + (month == February and isleap(year))


def _prevmonth(year, month):
    if month == 1:
        return year-1, 12
    else:
        return year, month-1


def _nextmonth(year, month):
    if month == 12:
        return year+1, 1
    else:
        return year, month+1


class Calendar(object):
    """
    Base calendar class. This class doesn't do any formatting. It simply
    provides data to subclasses.
    """

    def __init__(self, firstweekday=0):
        self.firstweekday = firstweekday # 0 = Monday, 6 = Sunday

    def getfirstweekday(self):
        return self._firstweekday % 7

    def setfirstweekday(self, firstweekday):
        self._firstweekday = firstweekday

    firstweekday = property(getfirstweekday, setfirstweekday)

    def iterweekdays(self):
        """
        Return an iterator for one week of weekday numbers starting with the
        configured first one.
        """
        for i in range(self.firstweekday, self.firstweekday + 7):
            yield i%7

    def itermonthdates(self, year, month):
        """
        Return an iterator for one month. The iterator will yield datetime.date
        values and will always iterate through complete weeks, so it will yield
        dates outside the specified month.
        """
        for y, m, d in self.itermonthdays3(year, month):
            yield datetime.date(y, m, d)

    def itermonthdays(self, year, month):
        """
        Like itermonthdates(), but will yield day numbers. For days outside
        the specified month the day number is 0.
        """
        day1, ndays = monthrange(year, month)
        days_before = (day1 - self.firstweekday) % 7
        yield from repeat(0, days_before)
        yield from range(1, ndays + 1)
        days_after = (self.firstweekday - day1 - ndays) % 7
        yield from repeat(0, days_after)

    def itermonthdays2(self, year, month):
        """
        Like itermonthdates(), but will yield (day number, weekday number)
        tuples. For days outside the specified month the day number is 0.
        """
        for i, d in enumerate(self.itermonthdays(year, month), self.firstweekday):
            yield d, i % 7

    def itermonthdays3(self, year, month):
        """
        Like itermonthdates(), but will yield (year, month, day) tuples.  Can be
        used for dates outside of datetime.date range.
        """
        day1, ndays = monthrange(year, month)
        days_before = (day1 - self.firstweekday) % 7
        days_after = (self.firstweekday - day1 - ndays) % 7
        y, m = _prevmonth(year, month)
        end = _monthlen(y, m) + 1
        for d in range(end-days_before, end):
            yield y, m, d
        for d in range(1, ndays + 1):
            yield year, month, d
        y, m = _nextmonth(year, month)
        for d in range(1, days_after + 1):
            yield y, m, d

    def itermonthdays4(self, year, month):
        """
        Like itermonthdates(), but will yield (year, month, day, day_of_week) tuples.
        Can be used for dates outside of datetime.date range.
        """
        for i, (y, m, d) in enumerate(self.itermonthdays3(year, month)):
            yield y, m, d, (self.firstweekday + i) % 7

    def monthdatescalendar(self, year, month):
        """
        Return a matrix (list of lists) representing a month's calendar.
        Each row represents a week; week entries are datetime.date values.
        """
        dates = list(self.itermonthdates(year, month))
        return [ dates[i:i+7] for i in range(0, len(dates), 7) ]

    def monthdays2calendar(self, year, month):
        """
        Return a matrix representing a month's calendar.
        Each row represents a week; week entries are
        (day number, weekday number) tuples. Day numbers outside this month
        are zero.
        """
        days = list(self.itermonthdays2(year, month))
        return [ days[i:i+7] for i in range(0, len(days), 7) ]

    def monthdayscalendar(self, year, month):
        """
        Return a matrix representing a month's calendar.
        Each row represents a week; days outside this month are zero.
        """
        days = list(self.itermonthdays(year, month))
        return [ days[i:i+7] for i in range(0, len(days), 7) ]

    def yeardatescalendar(self, year, width=3):
        """
        Return the data for the specified year ready for formatting. The return
        value is a list of month rows. Each month row contains up to width months.
        Each month contains between 4 and 6 weeks and each week contains 1-7
        days. Days are datetime.date objects.
        """
        months = [
            self.monthdatescalendar(year, i)
            for i in range(January, January+12)
        ]
        return [months[i:i+width] for i in range(0, len(months), width) ]

    def yeardays2calendar(self, year, width=3):
        """
        Return the data for the specified year ready for formatting (similar to
        yeardatescalendar()). Entries in the week lists are
        (day number, weekday number) tuples. Day numbers outside this month are
        zero.
        """
        months = [
            self.monthdays2calendar(year, i)
            for i in range(January, January+12)
        ]
        return [months[i:i+width] for i in range(0, len(months), width) ]

    def yeardayscalendar(self, year, width=3):
        """
        Return the data for the specified year ready for formatting (similar to
        yeardatescalendar()). Entries in the week lists are day numbers.
        Day numbers outside this month are zero.
        """
        months = [
            self.monthdayscalendar(year, i)
            for i in range(January, January+12)
        ]
        return [months[i:i+width] for i in range(0, len(months), width) ]


class TextCalendar(Calendar):
    """
    Subclass of Calendar that outputs a calendar as a simple plain text
    similar to the UNIX program cal.
    """

    def prweek(self, theweek, width):
        """
        Print a single week (no newline).
        """
        print(self.formatweek(theweek, width), end='')

    def formatday(self, day, weekday, width):
        """
        Returns a formatted day.
        """
        if day == 0:
            s = ''
        else:
            s = '%2i' % day             # right-align single-digit days
        return s.center(width)

    def formatweek(self, theweek, width):
        """
        Returns a single week in a string (no newline).
        """
        return ' '.join(self.formatday(d, wd, width) for (d, wd) in theweek)

    def formatweekday(self, day, width):
        """
        Returns a formatted week day name.
        """
        if width >= 9:
            names = day_name
        else:
            names = day_abbr
        return names[day][:width].center(width)

    def formatweekheader(self, width):
        """
        Return a header for a week.
        """
        return ' '.join(self.formatweekday(i, width) for i in self.iterweekdays())

    def formatmonthname(self, theyear, themonth, width, withyear=True):
        """
        Return a formatted month name.
        """
        s = month_name[themonth]
        if withyear:
            s = "%s %r" % (s, theyear)
        return s.center(width)

    def prmonth(self, theyear, themonth, w=0, l=0):
        """
        Print a month's calendar.
        """
        print(self.formatmonth(theyear, themonth, w, l), end='')

    def formatmonth(self, theyear, themonth, w=0, l=0):
        """
        Return a month's calendar string (multi-line).
        """
        w = max(2, w)
        l = max(1, l)
        s = self.formatmonthname(theyear, themonth, 7 * (w + 1) - 1)
        s = s.rstrip()
        s += '\n' * l
        s += self.formatweekheader(w).rstrip()
        s += '\n' * l
        for week in self.monthdays2calendar(theyear, themonth):
            s += self.formatweek(week, w).rstrip()
            s += '\n' * l
        return s

    def formatyear(self, theyear, w=2, l=1, c=6, m=3):
        """
        Returns a year's calendar as a multi-line string.
        """
        w = max(2, w)
        l = max(1, l)
        c = max(2, c)
        colwidth = (w + 1) * 7 - 1
        v = []
        a = v.append
        a(repr(theyear).center(colwidth*m+c*(m-1)).rstrip())
        a('\n'*l)
        header = self.formatweekheader(w)
        for (i, row) in enumerate(self.yeardays2calendar(theyear, m)):
            # months in this row
            months = range(m*i+1, min(m*(i+1)+1, 13))
            a('\n'*l)
            names = (self.formatmonthname(theyear, k, colwidth, False)
                     for k in months)
            a(formatstring(names, colwidth, c).rstrip())
            a('\n'*l)
            headers = (header for k in months)
            a(formatstring(headers, colwidth, c).rstrip())
            a('\n'*l)
            # max number of weeks for this row
            height = max(len(cal) for cal in row)
            for j in range(height):
                weeks = []
                for cal in row:
                    if j >= len(cal):
                        weeks.append('')
                    else:
                        weeks.append(self.formatweek(cal[j], w))
                a(formatstring(weeks, colwidth, c).rstrip())
                a('\n' * l)
        return ''.join(v)

    def pryear(self, theyear, w=0, l=0, c=6, m=3):
        """Print a year's calendar."""
        print(self.formatyear(theyear, w, l, c, m), end='')


class HTMLCalendar(Calendar):
    """
    This calendar returns complete HTML pages.
    """

    # CSS classes for the day <td>s
    cssclasses = ["mon", "tue", "wed", "thu", "fri", "sat", "sun"]

    # CSS classes for the day <th>s
    cssclasses_weekday_head = cssclasses

    # CSS class for the days before and after current month
    cssclass_noday = "noday"

    # CSS class for the month's head
    cssclass_month_head = "month"

    # CSS class for the month
    cssclass_month = "month"

    # CSS class for the year's table head
    cssclass_year_head = "year"

    # CSS class for the whole year table
    cssclass_year = "year"

    def formatday(self, day, weekday):
        """
        Return a day as a table cell.
        """
        if day == 0:
            # day outside month
            return '<td class="%s">&nbsp;</td>' % self.cssclass_noday
        else:
            return '<td class="%s">%d</td>' % (self.cssclasses[weekday], day)

    def formatweek(self, theweek):
        """
        Return a complete week as a table row.
        """
        s = ''.join(self.formatday(d, wd) for (d, wd) in theweek)
        return '<tr>%s</tr>' % s

    def formatweekday(self, day):
        """
        Return a weekday name as a table header.
        """
        return '<th class="%s">%s</th>' % (
            self.cssclasses_weekday_head[day], day_abbr[day])

    def formatweekheader(self):
        """
        Return a header for a week as a table row.
        """
        s = ''.join(self.formatweekday(i) for i in self.iterweekdays())
        return '<tr>%s</tr>' % s

    def formatmonthname(self, theyear, themonth, withyear=True):
        """
        Return a month name as a table row.
        """
        if withyear:
            s = '%s %s' % (month_name[themonth], theyear)
        else:
            s = '%s' % month_name[themonth]
        return '<tr><th colspan="7" class="%s">%s</th></tr>' % (
            self.cssclass_month_head, s)

    def formatmonth(self, theyear, themonth, withyear=True):
        """
        Return a formatted month as a table.
        """
        v = []
        a = v.append
        a('<table border="0" cellpadding="0" cellspacing="0" class="%s">' % (
            self.cssclass_month))
        a('\n')
        a(self.formatmonthname(theyear, themonth, withyear=withyear))
        a('\n')
        a(self.formatweekheader())
        a('\n')
        for week in self.monthdays2calendar(theyear, themonth):
            a(self.formatweek(week))
            a('\n')
        a('</table>')
        a('\n')
        return ''.join(v)

    def formatyear(self, theyear, width=3):
        """
        Return a formatted year as a table of tables.
        """
        v = []
        a = v.append
        width = max(width, 1)
        a('<table border="0" cellpadding="0" cellspacing="0" class="%s">' %
          self.cssclass_year)
        a('\n')
        a('<tr><th colspan="%d" class="%s">%s</th></tr>' % (
            width, self.cssclass_year_head, theyear))
        for i in range(January, January+12, width):
            # months in this row
            months = range(i, min(i+width, 13))
            a('<tr>')
            for m in months:
                a('<td>')
                a(self.formatmonth(theyear, m, withyear=False))
                a('</td>')
            a('</tr>')
        a('</table>')
        return ''.join(v)

    def formatyearpage(self, theyear, width=3, css='calendar.css', encoding=None):
        """
        Return a formatted year as a complete HTML page.
        """
        if encoding is None:
            encoding = sys.getdefaultencoding()
        v = []
        a = v.append
        a('<?xml version="1.0" encoding="%s"?>\n' % encoding)
        a('<!DOCTYPE html PUBLIC "-//W3C//DTD XHTML 1.0 Strict//EN" "http://www.w3.org/TR/xhtml1/DTD/xhtml1-strict.dtd">\n')
        a('<html>\n')
        a('<head>\n')
        a('<meta http-equiv="Content-Type" content="text/html; charset=%s" />\n' % encoding)
        if css is not None:
            a('<link rel="stylesheet" type="text/css" href="%s" />\n' % css)
        a('<title>Calendar for %d</title>\n' % theyear)
        a('</head>\n')
        a('<body>\n')
        a(self.formatyear(theyear, width))
        a('</body>\n')
        a('</html>\n')
        return ''.join(v).encode(encoding, "xmlcharrefreplace")


class different_locale:
    def __init__(self, locale):
        self.locale = locale
        self.oldlocale = None

    def __enter__(self):
        self.oldlocale = _locale.setlocale(_locale.LC_TIME, None)
        _locale.setlocale(_locale.LC_TIME, self.locale)

    def __exit__(self, *args):
        if self.oldlocale is None:
            return
        _locale.setlocale(_locale.LC_TIME, self.oldlocale)


def _get_default_locale():
    locale = _locale.setlocale(_locale.LC_TIME, None)
    if locale == "C":
        with different_locale(""):
            # The LC_TIME locale does not seem to be configured:
            # get the user preferred locale.
            locale = _locale.setlocale(_locale.LC_TIME, None)
    return locale


class LocaleTextCalendar(TextCalendar):
    """
    This class can be passed a locale name in the constructor and will return
    month and weekday names in the specified locale.
    """

    def __init__(self, firstweekday=0, locale=None):
        TextCalendar.__init__(self, firstweekday)
        if locale is None:
            locale = _get_default_locale()
        self.locale = locale

    def formatweekday(self, day, width):
        with different_locale(self.locale):
            return super().formatweekday(day, width)

    def formatmonthname(self, theyear, themonth, width, withyear=True):
        with different_locale(self.locale):
            return super().formatmonthname(theyear, themonth, width, withyear)


class LocaleHTMLCalendar(HTMLCalendar):
    """
    This class can be passed a locale name in the constructor and will return
    month and weekday names in the specified locale.
    """
    def __init__(self, firstweekday=0, locale=None):
        HTMLCalendar.__init__(self, firstweekday)
        if locale is None:
            locale = _get_default_locale()
        self.locale = locale

    def formatweekday(self, day):
        with different_locale(self.locale):
            return super().formatweekday(day)

    def formatmonthname(self, theyear, themonth, withyear=True):
        with different_locale(self.locale):
            return super().formatmonthname(theyear, themonth, withyear)

# Support for old module level interface
c = TextCalendar()

firstweekday = c.getfirstweekday

def setfirstweekday(firstweekday):
    if not MONDAY <= firstweekday <= SUNDAY:
        raise IllegalWeekdayError(firstweekday)
    c.firstweekday = firstweekday

monthcalendar = c.monthdayscalendar
prweek = c.prweek
week = c.formatweek
weekheader = c.formatweekheader
prmonth = c.prmonth
month = c.formatmonth
calendar = c.formatyear
prcal = c.pryear


# Spacing of month columns for multi-column year calendar
_colwidth = 7*3 - 1         # Amount printed by prweek()
_spacing = 6                # Number of spaces between columns


def format(cols, colwidth=_colwidth, spacing=_spacing):
    """Prints multi-column formatting for year calendars"""
    print(formatstring(cols, colwidth, spacing))


def formatstring(cols, colwidth=_colwidth, spacing=_spacing):
    """Returns a string formatted from n strings, centered within n columns."""
    spacing *= ' '
    return spacing.join(c.center(colwidth) for c in cols)


EPOCH = 1970
_EPOCH_ORD = datetime.date(EPOCH, 1, 1).toordinal()


def timegm(tuple):
    """Unrelated but handy function to calculate Unix timestamp from GMT."""
    year, month, day, hour, minute, second = tuple[:6]
    days = datetime.date(year, month, 1).toordinal() - _EPOCH_ORD + day - 1
    hours = days*24 + hour
    minutes = hours*60 + minute
    seconds = minutes*60 + second
    return seconds


def main(args):
    import argparse
    parser = argparse.ArgumentParser()
    textgroup = parser.add_argument_group('text only arguments')
    htmlgroup = parser.add_argument_group('html only arguments')
    textgroup.add_argument(
        "-w", "--width",
        type=int, default=2,
        help="width of date column (default 2)"
    )
    textgroup.add_argument(
        "-l", "--lines",
        type=int, default=1,
        help="number of lines for each week (default 1)"
    )
    textgroup.add_argument(
        "-s", "--spacing",
        type=int, default=6,
        help="spacing between months (default 6)"
    )
    textgroup.add_argument(
        "-m", "--months",
        type=int, default=3,
        help="months per row (default 3)"
    )
    htmlgroup.add_argument(
        "-c", "--css",
        default="calendar.css",
        help="CSS to use for page"
    )
    parser.add_argument(
        "-L", "--locale",
        default=None,
        help="locale to use for month and weekday names"
    )
    parser.add_argument(
        "-e", "--encoding",
        default=None,
        help="encoding to use for output"
    )
    parser.add_argument(
        "-t", "--type",
        default="text",
        choices=("text", "html"),
        help="output type (text or html)"
    )
    parser.add_argument(
        "year",
        nargs='?', type=int,
        help="year number (1-9999)"
    )
    parser.add_argument(
        "month",
        nargs='?', type=int,
        help="month number (1-12, text only)"
    )

    options = parser.parse_args(args[1:])

    if options.locale and not options.encoding:
        parser.error("if --locale is specified --encoding is required")
        sys.exit(1)

    locale = options.locale, options.encoding

    if options.type == "html":
        if options.locale:
            cal = LocaleHTMLCalendar(locale=locale)
        else:
            cal = HTMLCalendar()
        encoding = options.encoding
        if encoding is None:
            encoding = sys.getdefaultencoding()
        optdict = dict(encoding=encoding, css=options.css)
        write = sys.stdout.buffer.write
        if options.year is None:
            write(cal.formatyearpage(datetime.date.today().year, **optdict))
        elif options.month is None:
            write(cal.formatyearpage(options.year, **optdict))
        else:
            parser.error("incorrect number of arguments")
            sys.exit(1)
    else:
        if options.locale:
            cal = LocaleTextCalendar(locale=locale)
        else:
            cal = TextCalendar()
        optdict = dict(w=options.width, l=options.lines)
        if options.month is None:
            optdict["c"] = options.spacing
            optdict["m"] = options.months
        if options.year is None:
            result = cal.formatyear(datetime.date.today().year, **optdict)
        elif options.month is None:
            result = cal.formatyear(options.year, **optdict)
        else:
            result = cal.formatmonth(options.year, options.month, **optdict)
        write = sys.stdout.write
        if options.encoding:
            result = result.encode(options.encoding)
            write = sys.stdout.buffer.write
        write(result)


if __name__ == "__main__":
    main(sys.argv)
