#  Author:      Fred L. Drake, Jr.
#               fdrake@acm.org
#
#  This is a simple little module I wrote to make life easier.  I didn't
#  see anything quite like it in the library, though I may have overlooked
#  something.  I wrote this when I was trying to read some heavily nested
#  tuples with fairly non-descriptive content.  This is modeled very much
#  after Lisp/Scheme - style pretty-printing of lists.  If you find it
#  useful, thank small children who sleep at night.

"""Support to pretty-print lists, tuples, & dictionaries recursively.

Very simple, but useful, especially in debugging data structures.

Classes
-------

PrettyPrinter()
    Handle pretty-printing operations onto a stream using a configured
    set of formatting parameters.

Functions
---------

pformat()
    Format a Python object into a pretty-printed representation.

pprint()
    Pretty-print a Python object to a stream [default is sys.stdout].

saferepr()
    Generate a 'standard' repr()-like value, but protect against recursive
    data structures.

"""

import collections as _collections
import dataclasses as _dataclasses
import re
import sys as _sys
import types as _types
from io import StringIO as _StringIO

__all__ = ["pprint","pformat","isreadable","isrecursive","saferepr",
           "PrettyPrinter", "pp"]


def pprint(object, stream=None, indent=1, width=80, depth=None, *,
           compact=False, sort_dicts=True, underscore_numbers=False):
    """Pretty-print a Python object to a stream [default is sys.stdout]."""
    printer = PrettyPrinter(
        stream=stream, indent=indent, width=width, depth=depth,
        compact=compact, sort_dicts=sort_dicts,
        underscore_numbers=underscore_numbers)
    printer.pprint(object)

def pformat(object, indent=1, width=80, depth=None, *,
            compact=False, sort_dicts=True, underscore_numbers=False):
    """Format a Python object into a pretty-printed representation."""
    return PrettyPrinter(indent=indent, width=width, depth=depth,
                         compact=compact, sort_dicts=sort_dicts,
                         underscore_numbers=underscore_numbers).pformat(object)

def pp(object, *args, sort_dicts=False, **kwargs):
    """Pretty-print a Python object"""
    pprint(object, *args, sort_dicts=sort_dicts, **kwargs)

def saferepr(object):
    """Version of repr() which can handle recursive data structures."""
    return PrettyPrinter()._safe_repr(object, {}, None, 0)[0]

def isreadable(object):
    """Determine if saferepr(object) is readable by eval()."""
    return PrettyPrinter()._safe_repr(object, {}, None, 0)[1]

def isrecursive(object):
    """Determine if object requires a recursive representation."""
    return PrettyPrinter()._safe_repr(object, {}, None, 0)[2]

class _safe_key:
    """Helper function for key functions when sorting unorderable objects.

    The wrapped-object will fallback to a Py2.x style comparison for
    unorderable types (sorting first comparing the type name and then by
    the obj ids).  Does not work recursively, so dict.items() must have
    _safe_key applied to both the key and the value.

    """

    __slots__ = ['obj']

    def __init__(self, obj):
        self.obj = obj

    def __lt__(self, other):
        try:
            return self.obj < other.obj
        except TypeError:
            return ((str(type(self.obj)), id(self.obj)) < \
                    (str(type(other.obj)), id(other.obj)))

def _safe_tuple(t):
    "Helper function for comparing 2-tuples"
    return _safe_key(t[0]), _safe_key(t[1])

class PrettyPrinter:
    def __init__(self, indent=1, width=80, depth=None, stream=None, *,
                 compact=False, sort_dicts=True, underscore_numbers=False):
        """Handle pretty printing operations onto a stream using a set of
        configured parameters.

        indent
            Number of spaces to indent for each level of nesting.

        width
            Attempted maximum number of columns in the output.

        depth
            The maximum depth to print out nested structures.

        stream
            The desired output stream.  If omitted (or false), the standard
            output stream available at construction will be used.

        compact
            If true, several items will be combined in one line.

        sort_dicts
            If true, dict keys are sorted.

        """
        indent = int(indent)
        width = int(width)
        if indent < 0:
            raise ValueError('indent must be >= 0')
        if depth is not None and depth <= 0:
            raise ValueError('depth must be > 0')
        if not width:
            raise ValueError('width must be != 0')
        self._depth = depth
        self._indent_per_level = indent
        self._width = width
        if stream is not None:
            self._stream = stream
        else:
            self._stream = _sys.stdout
        self._compact = bool(compact)
        self._sort_dicts = sort_dicts
        self._underscore_numbers = underscore_numbers

    def pprint(self, object):
        if self._stream is not None:
            self._format(object, self._stream, 0, 0, {}, 0)
            self._stream.write("\n")

    def pformat(self, object):
        sio = _StringIO()
        self._format(object, sio, 0, 0, {}, 0)
        return sio.getvalue()

    def isrecursive(self, object):
        return self.format(object, {}, 0, 0)[2]

    def isreadable(self, object):
        s, readable, recursive = self.format(object, {}, 0, 0)
        return readable and not recursive

    def _format(self, object, stream, indent, allowance, context, level):
        objid = id(object)
        if objid in context:
            stream.write(_recursion(object))
            self._recursive = True
            self._readable = False
            return
        rep = self._repr(object, context, level)
        max_width = self._width - indent - allowance
        if len(rep) > max_width:
            p = self._dispatch.get(type(object).__repr__, None)
            if p is not None:
                context[objid] = 1
                p(self, object, stream, indent, allowance, context, level + 1)
                del context[objid]
                return
            elif (_dataclasses.is_dataclass(object) and
                  not isinstance(object, type) and
                  object.__dataclass_params__.repr and
                  # Check dataclass has generated repr method.
                  hasattr(object.__repr__, "__wrapped__") and
                  "__create_fn__" in object.__repr__.__wrapped__.__qualname__):
                context[objid] = 1
                self._pprint_dataclass(object, stream, indent, allowance, context, level + 1)
                del context[objid]
                return
        stream.write(rep)

    def _pprint_dataclass(self, object, stream, indent, allowance, context, level):
        cls_name = object.__class__.__name__
        indent += len(cls_name) + 1
        items = [(f.name, getattr(object, f.name)) for f in _dataclasses.fields(object) if f.repr]
        stream.write(cls_name + '(')
        self._format_namespace_items(items, stream, indent, allowance, context, level)
        stream.write(')')

    _dispatch = {}

    def _pprint_dict(self, object, stream, indent, allowance, context, level):
        write = stream.write
        write('{')
        if self._indent_per_level > 1:
            write((self._indent_per_level - 1) * ' ')
        length = len(object)
        if length:
            if self._sort_dicts:
                items = sorted(object.items(), key=_safe_tuple)
            else:
                items = object.items()
            self._format_dict_items(items, stream, indent, allowance + 1,
                                    context, level)
        write('}')

    _dispatch[dict.__repr__] = _pprint_dict

    def _pprint_ordered_dict(self, object, stream, indent, allowance, context, level):
        if not len(object):
            stream.write(repr(object))
            return
        cls = object.__class__
        stream.write(cls.__name__ + '(')
        self._format(list(object.items()), stream,
                     indent + len(cls.__name__) + 1, allowance + 1,
                     context, level)
        stream.write(')')

    _dispatch[_collections.OrderedDict.__repr__] = _pprint_ordered_dict

    def _pprint_list(self, object, stream, indent, allowance, context, level):
        stream.write('[')
        self._format_items(object, stream, indent, allowance + 1,
                           context, level)
        stream.write(']')

    _dispatch[list.__repr__] = _pprint_list

    def _pprint_tuple(self, object, stream, indent, allowance, context, level):
        stream.write('(')
        endchar = ',)' if len(object) == 1 else ')'
        self._format_items(object, stream, indent, allowance + len(endchar),
                           context, level)
        stream.write(endchar)

    _dispatch[tuple.__repr__] = _pprint_tuple

    def _pprint_set(self, object, stream, indent, allowance, context, level):
        if not len(object):
            stream.write(repr(object))
            return
        typ = object.__class__
        if typ is set:
            stream.write('{')
            endchar = '}'
        else:
            stream.write(typ.__name__ + '({')
            endchar = '})'
            indent += len(typ.__name__) + 1
        object = sorted(object, key=_safe_key)
        self._format_items(object, stream, indent, allowance + len(endchar),
                           context, level)
        stream.write(endchar)

    _dispatch[set.__repr__] = _pprint_set
    _dispatch[frozenset.__repr__] = _pprint_set

    def _pprint_str(self, object, stream, indent, allowance, context, level):
        write = stream.write
        if not len(object):
            write(repr(object))
            return
        chunks = []
        lines = object.splitlines(True)
        if level == 1:
            indent += 1
            allowance += 1
        max_width1 = max_width = self._width - indent
        for i, line in enumerate(lines):
            rep = repr(line)
            if i == len(lines) - 1:
                max_width1 -= allowance
            if len(rep) <= max_width1:
                chunks.append(rep)
            else:
                # A list of alternating (non-space, space) strings
                parts = re.findall(r'\S*\s*', line)
                assert parts
                assert not parts[-1]
                parts.pop()  # drop empty last part
                max_width2 = max_width
                current = ''
                for j, part in enumerate(parts):
                    candidate = current + part
                    if j == len(parts) - 1 and i == len(lines) - 1:
                        max_width2 -= allowance
                    if len(repr(candidate)) > max_width2:
                        if current:
                            chunks.append(repr(current))
                        current = part
                    else:
                        current = candidate
                if current:
                    chunks.append(repr(current))
        if len(chunks) == 1:
            write(rep)
            return
        if level == 1:
            write('(')
        for i, rep in enumerate(chunks):
            if i > 0:
                write('\n' + ' '*indent)
            write(rep)
        if level == 1:
            write(')')

    _dispatch[str.__repr__] = _pprint_str

    def _pprint_bytes(self, object, stream, indent, allowance, context, level):
        write = stream.write
        if len(object) <= 4:
            write(repr(object))
            return
        parens = level == 1
        if parens:
            indent += 1
            allowance += 1
            write('(')
        delim = ''
        for rep in _wrap_bytes_repr(object, self._width - indent, allowance):
            write(delim)
            write(rep)
            if not delim:
                delim = '\n' + ' '*indent
        if parens:
            write(')')

    _dispatch[bytes.__repr__] = _pprint_bytes

    def _pprint_bytearray(self, object, stream, indent, allowance, context, level):
        write = stream.write
        write('bytearray(')
        self._pprint_bytes(bytes(object), stream, indent + 10,
                           allowance + 1, context, level + 1)
        write(')')

    _dispatch[bytearray.__repr__] = _pprint_bytearray

    def _pprint_mappingproxy(self, object, stream, indent, allowance, context, level):
        stream.write('mappingproxy(')
        self._format(object.copy(), stream, indent + 13, allowance + 1,
                     context, level)
        stream.write(')')

    _dispatch[_types.MappingProxyType.__repr__] = _pprint_mappingproxy

    def _pprint_simplenamespace(self, object, stream, indent, allowance, context, level):
        if type(object) is _types.SimpleNamespace:
            # The SimpleNamespace repr is "namespace" instead of the class
            # name, so we do the same here. For subclasses; use the class name.
            cls_name = 'namespace'
        else:
            cls_name = object.__class__.__name__
        indent += len(cls_name) + 1
        items = object.__dict__.items()
        stream.write(cls_name + '(')
        self._format_namespace_items(items, stream, indent, allowance, context, level)
        stream.write(')')

    _dispatch[_types.SimpleNamespace.__repr__] = _pprint_simplenamespace

    def _format_dict_items(self, items, stream, indent, allowance, context,
                           level):
        write = stream.write
        indent += self._indent_per_level
        delimnl = ',\n' + ' ' * indent
        last_index = len(items) - 1
        for i, (key, ent) in enumerate(items):
            last = i == last_index
            rep = self._repr(key, context, level)
            write(rep)
            write(': ')
            self._format(ent, stream, indent + len(rep) + 2,
                         allowance if last else 1,
                         context, level)
            if not last:
                write(delimnl)

    def _format_namespace_items(self, items, stream, indent, allowance, context, level):
        write = stream.write
        delimnl = ',\n' + ' ' * indent
        last_index = len(items) - 1
        for i, (key, ent) in enumerate(items):
            last = i == last_index
            write(key)
            write('=')
            if id(ent) in context:
                # Special-case representation of recursion to match standard
                # recursive dataclass repr.
                write("...")
            else:
                self._format(ent, stream, indent + len(key) + 1,
                             allowance if last else 1,
                             context, level)
            if not last:
                write(delimnl)

    def _format_items(self, items, stream, indent, allowance, context, level):
        write = stream.write
        indent += self._indent_per_level
        if self._indent_per_level > 1:
            write((self._indent_per_level - 1) * ' ')
        delimnl = ',\n' + ' ' * indent
        delim = ''
        width = max_width = self._width - indent + 1
        it = iter(items)
        try:
            next_ent = next(it)
        except StopIteration:
            return
        last = False
        while not last:
            ent = next_ent
            try:
                next_ent = next(it)
            except StopIteration:
                last = True
                max_width -= allowance
                width -= allowance
            if self._compact:
                rep = self._repr(ent, context, level)
                w = len(rep) + 2
                if width < w:
                    width = max_width
                    if delim:
                        delim = delimnl
                if width >= w:
                    width -= w
                    write(delim)
                    delim = ', '
                    write(rep)
                    continue
            write(delim)
            delim = delimnl
            self._format(ent, stream, indent,
                         allowance if last else 1,
                         context, level)

    def _repr(self, object, context, level):
        repr, readable, recursive = self.format(object, context.copy(),
                                                self._depth, level)
        if not readable:
            self._readable = False
        if recursive:
            self._recursive = True
        return repr

    def format(self, object, context, maxlevels, level):
        """Format object for a specific context, returning a string
        and flags indicating whether the representation is 'readable'
        and whether the object represents a recursive construct.
        """
        return self._safe_repr(object, context, maxlevels, level)

    def _pprint_default_dict(self, object, stream, indent, allowance, context, level):
        if not len(object):
            stream.write(repr(object))
            return
        rdf = self._repr(object.default_factory, context, level)
        cls = object.__class__
        indent += len(cls.__name__) + 1
        stream.write('%s(%s,\n%s' % (cls.__name__, rdf, ' ' * indent))
        self._pprint_dict(object, stream, indent, allowance + 1, context, level)
        stream.write(')')

    _dispatch[_collections.defaultdict.__repr__] = _pprint_default_dict

    def _pprint_counter(self, object, stream, indent, allowance, context, level):
        if not len(object):
            stream.write(repr(object))
            return
        cls = object.__class__
        stream.write(cls.__name__ + '({')
        if self._indent_per_level > 1:
            stream.write((self._indent_per_level - 1) * ' ')
        items = object.most_common()
        self._format_dict_items(items, stream,
                                indent + len(cls.__name__) + 1, allowance + 2,
                                context, level)
        stream.write('})')

    _dispatch[_collections.Counter.__repr__] = _pprint_counter

    def _pprint_chain_map(self, object, stream, indent, allowance, context, level):
        if not len(object.maps):
            stream.write(repr(object))
            return
        cls = object.__class__
        stream.write(cls.__name__ + '(')
        indent += len(cls.__name__) + 1
        for i, m in enumerate(object.maps):
            if i == len(object.maps) - 1:
                self._format(m, stream, indent, allowance + 1, context, level)
                stream.write(')')
            else:
                self._format(m, stream, indent, 1, context, level)
                stream.write(',\n' + ' ' * indent)

    _dispatch[_collections.ChainMap.__repr__] = _pprint_chain_map

    def _pprint_deque(self, object, stream, indent, allowance, context, level):
        if not len(object):
            stream.write(repr(object))
            return
        cls = object.__class__
        stream.write(cls.__name__ + '(')
        indent += len(cls.__name__) + 1
        stream.write('[')
        if object.maxlen is None:
            self._format_items(object, stream, indent, allowance + 2,
                               context, level)
            stream.write('])')
        else:
            self._format_items(object, stream, indent, 2,
                               context, level)
            rml = self._repr(object.maxlen, context, level)
            stream.write('],\n%smaxlen=%s)' % (' ' * indent, rml))

    _dispatch[_collections.deque.__repr__] = _pprint_deque

    def _pprint_user_dict(self, object, stream, indent, allowance, context, level):
        self._format(object.data, stream, indent, allowance, context, level - 1)

    _dispatch[_collections.UserDict.__repr__] = _pprint_user_dict

    def _pprint_user_list(self, object, stream, indent, allowance, context, level):
        self._format(object.data, stream, indent, allowance, context, level - 1)

    _dispatch[_collections.UserList.__repr__] = _pprint_user_list

    def _pprint_user_string(self, object, stream, indent, allowance, context, level):
        self._format(object.data, stream, indent, allowance, context, level - 1)

    _dispatch[_collections.UserString.__repr__] = _pprint_user_string

    def _safe_repr(self, object, context, maxlevels, level):
        # Return triple (repr_string, isreadable, isrecursive).
        typ = type(object)
        if typ in _builtin_scalars:
            return repr(object), True, False

        r = getattr(typ, "__repr__", None)

        if issubclass(typ, int) and r is int.__repr__:
            if self._underscore_numbers:
                return f"{object:_d}", True, False
            else:
                return repr(object), True, False

        if issubclass(typ, dict) and r is dict.__repr__:
            if not object:
                return "{}", True, False
            objid = id(object)
            if maxlevels and level >= maxlevels:
                return "{...}", False, objid in context
            if objid in context:
                return _recursion(object), False, True
            context[objid] = 1
            readable = True
            recursive = False
            components = []
            append = components.append
            level += 1
            if self._sort_dicts:
                items = sorted(object.items(), key=_safe_tuple)
            else:
                items = object.items()
            for k, v in items:
                krepr, kreadable, krecur = self.format(
                    k, context, maxlevels, level)
                vrepr, vreadable, vrecur = self.format(
                    v, context, maxlevels, level)
                append("%s: %s" % (krepr, vrepr))
                readable = readable and kreadable and vreadable
                if krecur or vrecur:
                    recursive = True
            del context[objid]
            return "{%s}" % ", ".join(components), readable, recursive

        if (issubclass(typ, list) and r is list.__repr__) or \
           (issubclass(typ, tuple) and r is tuple.__repr__):
            if issubclass(typ, list):
                if not object:
                    return "[]", True, False
                format = "[%s]"
            elif len(object) == 1:
                format = "(%s,)"
            else:
                if not object:
                    return "()", True, False
                format = "(%s)"
            objid = id(object)
            if maxlevels and level >= maxlevels:
                return format % "...", False, objid in context
            if objid in context:
                return _recursion(object), False, True
            context[objid] = 1
            readable = True
            recursive = False
            components = []
            append = components.append
            level += 1
            for o in object:
                orepr, oreadable, orecur = self.format(
                    o, context, maxlevels, level)
                append(orepr)
                if not oreadable:
                    readable = False
                if orecur:
                    recursive = True
            del context[objid]
            return format % ", ".join(components), readable, recursive

        rep = repr(object)
        return rep, (rep and not rep.startswith('<')), False

_builtin_scalars = frozenset({str, bytes, bytearray, float, complex,
                              bool, type(None)})

def _recursion(object):
    return ("<Recursion on %s with id=%s>"
            % (type(object).__name__, id(object)))


def _perfcheck(object=None):
    import time
    if object is None:
        object = [("string", (1, 2), [3, 4], {5: 6, 7: 8})] * 100000
    p = PrettyPrinter()
    t1 = time.perf_counter()
    p._safe_repr(object, {}, None, 0, True)
    t2 = time.perf_counter()
    p.pformat(object)
    t3 = time.perf_counter()
    print("_safe_repr:", t2 - t1)
    print("pformat:", t3 - t2)

def _wrap_bytes_repr(object, width, allowance):
    current = b''
    last = len(object) // 4 * 4
    for i in range(0, len(object), 4):
        part = object[i: i+4]
        candidate = current + part
        if i == last:
            width -= allowance
        if len(repr(candidate)) > width:
            if current:
                yield repr(current)
            current = part
        else:
            current = candidate
    if current:
        yield repr(current)

if __name__ == "__main__":
    _perfcheck()
