"""Generic (shallow and deep) copying operations.

Interface summary:

        import copy

        x = copy.copy(y)        # make a shallow copy of y
        x = copy.deepcopy(y)    # make a deep copy of y

For module specific errors, copy.Error is raised.

The difference between shallow and deep copying is only relevant for
compound objects (objects that contain other objects, like lists or
class instances).

- A shallow copy constructs a new compound object and then (to the
  extent possible) inserts *the same objects* into it that the
  original contains.

- A deep copy constructs a new compound object and then, recursively,
  inserts *copies* into it of the objects found in the original.

Two problems often exist with deep copy operations that don't exist
with shallow copy operations:

 a) recursive objects (compound objects that, directly or indirectly,
    contain a reference to themselves) may cause a recursive loop

 b) because deep copy copies *everything* it may copy too much, e.g.
    administrative data structures that should be shared even between
    copies

Python's deep copy operation avoids these problems by:

 a) keeping a table of objects already copied during the current
    copying pass

 b) letting user-defined classes override the copying operation or the
    set of components copied

This version does not copy types like module, class, function, method,
nor stack trace, stack frame, nor file, socket, window, nor any
similar types.

Classes can use the same interfaces to control copying that they use
to control pickling: they can define methods called __getinitargs__(),
__getstate__() and __setstate__().  See the documentation for module
"pickle" for information on these methods.
"""

import types
import weakref
from copyreg import dispatch_table

class Error(Exception):
    pass
error = Error   # backward compatibility

try:
    from org.python.core import PyStringMap
except ImportError:
    PyStringMap = None

__all__ = ["Error", "copy", "deepcopy"]

def copy(x):
    """Shallow copy operation on arbitrary Python objects.

    See the module's __doc__ string for more info.
    """

    cls = type(x)

    copier = _copy_dispatch.get(cls)
    if copier:
        return copier(x)

    if issubclass(cls, type):
        # treat it as a regular class:
        return _copy_immutable(x)

    copier = getattr(cls, "__copy__", None)
    if copier is not None:
        return copier(x)

    reductor = dispatch_table.get(cls)
    if reductor is not None:
        rv = reductor(x)
    else:
        reductor = getattr(x, "__reduce_ex__", None)
        if reductor is not None:
            rv = reductor(4)
        else:
            reductor = getattr(x, "__reduce__", None)
            if reductor:
                rv = reductor()
            else:
                raise Error("un(shallow)copyable object of type %s" % cls)

    if isinstance(rv, str):
        return x
    return _reconstruct(x, None, *rv)


_copy_dispatch = d = {}

def _copy_immutable(x):
    return x
for t in (type(None), int, float, bool, complex, str, tuple,
          bytes, frozenset, type, range, slice, property,
          types.BuiltinFunctionType, type(Ellipsis), type(NotImplemented),
          types.FunctionType, weakref.ref):
    d[t] = _copy_immutable
t = getattr(types, "CodeType", None)
if t is not None:
    d[t] = _copy_immutable

d[list] = list.copy
d[dict] = dict.copy
d[set] = set.copy
d[bytearray] = bytearray.copy

if PyStringMap is not None:
    d[PyStringMap] = PyStringMap.copy

del d, t

def deepcopy(x, memo=None, _nil=[]):
    """Deep copy operation on arbitrary Python objects.

    See the module's __doc__ string for more info.
    """

    if memo is None:
        memo = {}

    d = id(x)
    y = memo.get(d, _nil)
    if y is not _nil:
        return y

    cls = type(x)

    copier = _deepcopy_dispatch.get(cls)
    if copier is not None:
        y = copier(x, memo)
    else:
        if issubclass(cls, type):
            y = _deepcopy_atomic(x, memo)
        else:
            copier = getattr(x, "__deepcopy__", None)
            if copier is not None:
                y = copier(memo)
            else:
                reductor = dispatch_table.get(cls)
                if reductor:
                    rv = reductor(x)
                else:
                    reductor = getattr(x, "__reduce_ex__", None)
                    if reductor is not None:
                        rv = reductor(4)
                    else:
                        reductor = getattr(x, "__reduce__", None)
                        if reductor:
                            rv = reductor()
                        else:
                            raise Error(
                                "un(deep)copyable object of type %s" % cls)
                if isinstance(rv, str):
                    y = x
                else:
                    y = _reconstruct(x, memo, *rv)

    # If is its own copy, don't memoize.
    if y is not x:
        memo[d] = y
        _keep_alive(x, memo) # Make sure x lives at least as long as d
    return y

_deepcopy_dispatch = d = {}

def _deepcopy_atomic(x, memo):
    return x
d[type(None)] = _deepcopy_atomic
d[type(Ellipsis)] = _deepcopy_atomic
d[type(NotImplemented)] = _deepcopy_atomic
d[int] = _deepcopy_atomic
d[float] = _deepcopy_atomic
d[bool] = _deepcopy_atomic
d[complex] = _deepcopy_atomic
d[bytes] = _deepcopy_atomic
d[str] = _deepcopy_atomic
d[types.CodeType] = _deepcopy_atomic
d[type] = _deepcopy_atomic
d[range] = _deepcopy_atomic
d[types.BuiltinFunctionType] = _deepcopy_atomic
d[types.FunctionType] = _deepcopy_atomic
d[weakref.ref] = _deepcopy_atomic
d[property] = _deepcopy_atomic

def _deepcopy_list(x, memo, deepcopy=deepcopy):
    y = []
    memo[id(x)] = y
    append = y.append
    for a in x:
        append(deepcopy(a, memo))
    return y
d[list] = _deepcopy_list

def _deepcopy_tuple(x, memo, deepcopy=deepcopy):
    y = [deepcopy(a, memo) for a in x]
    # We're not going to put the tuple in the memo, but it's still important we
    # check for it, in case the tuple contains recursive mutable structures.
    try:
        return memo[id(x)]
    except KeyError:
        pass
    for k, j in zip(x, y):
        if k is not j:
            y = tuple(y)
            break
    else:
        y = x
    return y
d[tuple] = _deepcopy_tuple

def _deepcopy_dict(x, memo, deepcopy=deepcopy):
    y = {}
    memo[id(x)] = y
    for key, value in x.items():
        y[deepcopy(key, memo)] = deepcopy(value, memo)
    return y
d[dict] = _deepcopy_dict
if PyStringMap is not None:
    d[PyStringMap] = _deepcopy_dict

def _deepcopy_method(x, memo): # Copy instance methods
    return type(x)(x.__func__, deepcopy(x.__self__, memo))
d[types.MethodType] = _deepcopy_method

del d

def _keep_alive(x, memo):
    """Keeps a reference to the object x in the memo.

    Because we remember objects by their id, we have
    to assure that possibly temporary objects are kept
    alive by referencing them.
    We store a reference at the id of the memo, which should
    normally not be used unless someone tries to deepcopy
    the memo itself...
    """
    try:
        memo[id(memo)].append(x)
    except KeyError:
        # aha, this is the first one :-)
        memo[id(memo)]=[x]

def _reconstruct(x, memo, func, args,
                 state=None, listiter=None, dictiter=None,
                 *, deepcopy=deepcopy):
    deep = memo is not None
    if deep and args:
        args = (deepcopy(arg, memo) for arg in args)
    y = func(*args)
    if deep:
        memo[id(x)] = y

    if state is not None:
        if deep:
            state = deepcopy(state, memo)
        if hasattr(y, '__setstate__'):
            y.__setstate__(state)
        else:
            if isinstance(state, tuple) and len(state) == 2:
                state, slotstate = state
            else:
                slotstate = None
            if state is not None:
                y.__dict__.update(state)
            if slotstate is not None:
                for key, value in slotstate.items():
                    setattr(y, key, value)

    if listiter is not None:
        if deep:
            for item in listiter:
                item = deepcopy(item, memo)
                y.append(item)
        else:
            for item in listiter:
                y.append(item)
    if dictiter is not None:
        if deep:
            for key, value in dictiter:
                key = deepcopy(key, memo)
                value = deepcopy(value, memo)
                y[key] = value
        else:
            for key, value in dictiter:
                y[key] = value
    return y

del types, weakref, PyStringMap
