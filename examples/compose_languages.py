#!/usr/bin/env python3
"""Composing two independently written languages in one file.

``sql.Core`` is a standalone mini-SQL grammar; ``jay.Sql`` splices it into
Jay's expression syntax, so queries are parsed (and syntax-checked!) by the
same parser as the host program — no string literals, no injection-prone
concatenation.  This mirrors the embedded-SQL motivation from the
extensible-syntax literature.

Run:  python examples/compose_languages.py
"""

import repro
from repro.errors import ParseError

PROGRAM = """
class ReportJob {
    void run(Database db) {
        int limit = 42;
        Rows rows = sql { select name, age from people where age < 42 };
        Rows all  = sql { SELECT * FROM people };
        this.emit(rows, all);
    }
}
"""

BROKEN = """
class ReportJob {
    void run(Database db) {
        Rows rows = sql { select from where };
    }
}
"""

# 1. Standalone: the SQL grammar is a language of its own.
sql = repro.compile_grammar("sql.Sql")
print("standalone SQL:", sql.parse("select a, b from t where a <= 10"))

# 2. Composed: the same modules, embedded in Jay expressions.
lang = repro.compile_grammar("jay.Extended")
tree = lang.parse(PROGRAM)
for query in tree.find_all("Select"):
    print("embedded query:", query)

# 3. Malformed queries are *parse* errors with positions, not runtime
#    surprises.
try:
    lang.parse(BROKEN)
except ParseError as error:
    print("broken query rejected:", error)

# 4. The other direction: reuse Jay's expression language inside a fresh
#    little configuration language, importing only the modules needed.
loader = repro.ModuleLoader()
loader.register_source(
    "demo.Config",
    """
    module demo.Config;

    import jay.Expressions;
    import jay.Identifiers;
    import jay.Symbols;
    import jay.Spacing;

    public Object Config = Spacing Setting+ EndOfInput ;

    generic Setting = <Set> Identifier ASSIGN Expression SEMI ;
    """,
)
config = repro.compile_grammar("demo.Config", loader=loader)
print(
    "config language:",
    config.parse("threshold = limit * 2 + 1; debug = !prod && verbose;"),
)
