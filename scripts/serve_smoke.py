#!/usr/bin/env python
"""Parse-service smoke: an NDJSON batch through a 2-worker pool.

Builds a small batch over the jay/calc grammars with two injected faults —
one request that must *time out* (the exponential pathological workload)
and one *oversized* input that must be rejected before queueing — drives it
through the same wire layer the ``repro-serve`` CLI uses, and asserts the
robustness envelope held:

- every normal request parsed ``ok`` (after the hung worker was recycled);
- the pathological request resolved ``timeout``;
- the oversized request resolved ``rejected``;
- the service never degraded to in-process fallback.

Run via ``make serve-smoke`` (after the ``serve``-marked pytest subset).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve import ParseService, GrammarSpec, encode_result, format_stats, serve_lines
from repro.workloads import slow_request_input

REPO = Path(__file__).resolve().parent.parent


def build_batch() -> list[str]:
    # negative_keywords.jay is intentionally invalid (it exercises the
    # reserved-word reject path in the profiler corpus); smoke only the
    # sources that must parse.
    jay_sources = [
        path
        for path in sorted((REPO / "examples" / "jay").glob("*.jay"))
        if not path.name.startswith("negative_")
    ]
    assert jay_sources, "examples/jay corpus missing"
    lines = []
    for index, path in enumerate(jay_sources * 3, 1):
        lines.append(json.dumps({"id": f"jay-{index}", "file": str(path), "grammar": "jay"}))
    for index, text in enumerate(["1+2*3", "(4-5)", "6*7+8"], 1):
        lines.append(json.dumps({"id": f"calc-{index}", "text": text, "grammar": "calc"}))
    # Injected fault 1: a request whose parse cannot finish -> timeout.
    lines.append(json.dumps({"id": "hung", "text": slow_request_input(), "grammar": "slow"}))
    # Injected fault 2: an input over the size limit -> rejected.
    lines.append(json.dumps({"id": "oversized", "text": "1" * 200_000, "grammar": "calc"}))
    return lines


def main() -> int:
    began = time.perf_counter()
    specs = {
        "jay": GrammarSpec(root="jay.Jay"),
        "calc": GrammarSpec(root="calc.Calculator"),
        "slow": GrammarSpec(factory="repro.workloads.pathological:exponential_setup"),
    }
    outcomes: dict[str, str] = {}
    with ParseService(
        specs, workers=2, timeout=1.5, max_input_chars=100_000, backpressure="block"
    ) as service:
        for result in serve_lines(service, build_batch()):
            outcomes[result.id] = result.outcome
            print(encode_result(result))
        stats = service.stats()

    print(file=sys.stderr)
    print(format_stats(stats), file=sys.stderr)

    problems = []
    if outcomes.pop("hung") != "timeout":
        problems.append("injected pathological request did not time out")
    if outcomes.pop("oversized") != "rejected":
        problems.append("injected oversized request was not rejected")
    normal_bad = {rid: out for rid, out in outcomes.items() if out != "ok"}
    if normal_bad:
        problems.append(f"normal requests failed: {normal_bad}")
    if stats.recycles < 1:
        problems.append("watchdog never recycled the hung worker")
    if stats.degraded:
        problems.append("service degraded to in-process fallback")
    if problems:
        print("serve-smoke FAILED: " + "; ".join(problems), file=sys.stderr)
        return 1
    print(
        f"serve-smoke ok: {len(outcomes)} parsed, 1 timeout, 1 rejected, "
        f"{stats.recycles} recycle(s), {time.perf_counter() - began:.1f}s",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
