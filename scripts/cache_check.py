#!/usr/bin/env python
"""Cache roundtrip smoke check for CI.

Exercises the on-disk compilation cache end to end in a throwaway
directory and exits non-zero on the first deviation:

1. cold compile into an empty cache  -> one miss, one store;
2. fresh ``CompilationCache`` over the same directory -> one hit,
   no warnings, identical parse result;
3. truncate the entry on disk        -> corruption is detected, warned
   about, and transparently rebuilt (another store);
4. a second fresh cache hits again   -> the rebuilt entry is valid.

Run as ``python scripts/cache_check.py`` (or ``make cache-check``).
Needs ``src`` on ``sys.path``; the script arranges that itself so it
works from a plain checkout.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.api import clear_language_cache
from repro.cache import CompilationCache

ROOT = "calc.Calculator"
PROGRAM = "2 * (3 + 4)"


def fail(message: str) -> None:
    print(f"cache-check: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-cache-check-") as tmp:
        cache_dir = Path(tmp)

        # 1. Cold: miss + store.
        cold = CompilationCache(cache_dir)
        reference = repro.compile_grammar(ROOT, cache=cold)
        expected = reference.parse(PROGRAM)
        if cold.stats.misses != 1 or cold.stats.stores != 1:
            fail(f"cold compile expected 1 miss/1 store, got {cold.stats}")
        entries = list(cache_dir.iterdir())
        if len(entries) != 1:
            fail(f"expected exactly one cache entry, found {len(entries)}")
        print(f"cache-check: cold compile stored {entries[0].name}")

        # 2. Warm: a fresh cache (and an empty LRU, as in a new process) hits.
        clear_language_cache()
        warm = CompilationCache(cache_dir)
        language = repro.compile_grammar(ROOT, cache=warm)
        if warm.stats.hits != 1 or warm.warnings:
            fail(f"warm compile expected a clean hit, got {warm.stats}, "
                 f"warnings={warm.warnings}")
        if language.parse(PROGRAM) != expected:
            fail("warm parse result differs from cold parse result")
        print("cache-check: warm hit reproduced the cold parse")

        # 3. Corrupt the entry: must be discarded, warned about, rebuilt.
        entry = entries[0]
        entry.write_bytes(entry.read_bytes()[: entry.stat().st_size // 2])
        clear_language_cache()
        recovering = CompilationCache(cache_dir)
        language = repro.compile_grammar(ROOT, cache=recovering)
        if recovering.stats.corrupt != 1 or recovering.stats.stores != 1:
            fail(f"corrupt entry expected 1 corrupt/1 store, got "
                 f"{recovering.stats}")
        if not recovering.warnings:
            fail("corruption produced no warning")
        if language.parse(PROGRAM) != expected:
            fail("rebuilt parser disagrees with the original")
        print(f"cache-check: corruption detected and rebuilt "
              f"({recovering.warnings[0]})")

        # 4. The rebuilt entry is itself a valid hit.
        clear_language_cache()
        verify = CompilationCache(cache_dir)
        repro.compile_grammar(ROOT, cache=verify)
        if verify.stats.hits != 1 or verify.warnings:
            fail(f"rebuilt entry did not hit cleanly: {verify.stats}, "
                 f"warnings={verify.warnings}")
        print("cache-check: rebuilt entry hits cleanly")

    print("cache-check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
