"""Parsing-machine smoke: compile, cross-check, disassemble.

``make vm-smoke`` runs this after the VM test file.  It exercises the
machine the way a client would, end to end, and fails loudly on any
divergence from the generated parser:

1. jay and xC: lower the fully-optimized grammar to bytecode, parse the
   seeded benchmark corpora, and require structurally identical trees
   from the machine and the generated parser;
2. real Python: parse a sample of the stdlib corpus (layout pre-pass
   included) through ``backend="vm"`` and compare trees the same way;
3. disassemble one grammar and sanity-check the listing/summary.

See docs/vm.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.runtime.node import structural_diff
from repro.vm import VMParser, compile_program, disassemble, summarize
from repro.workloads import generate_c_program, generate_jay_program, load_corpus, python_layout
from repro.workloads.pycorpus import ALLOWLIST

#: Corpus sample size for the real-Python leg — enough to hit layout,
#: deep nesting, and every statement family without E11-scale runtime.
PY_SAMPLE = 8


def check_seeded(root: str, corpus: list[str]) -> int:
    language = repro.compile_grammar(root)
    vm = VMParser(compile_program(language.prepared))
    for text in corpus:
        diff = structural_diff(language.parse(text), vm.reset(text).parse())
        if diff is not None:
            print(f"FAIL {root}: trees differ at {diff}", file=sys.stderr)
            return 1
    print(f"ok {root}: {len(corpus)} inputs, machine == generated")
    return 0


def check_python_sample() -> int:
    files, _ = load_corpus()
    sample = [cf for cf in files if cf.name not in ALLOWLIST][:PY_SAMPLE]
    language = repro.compile_grammar("python.Python")
    vm_session = language.session(backend="vm")
    session = language.session()
    nbytes = 0
    for cf in sample:
        text = python_layout(cf.text)
        diff = structural_diff(session.parse(text), vm_session.parse(text))
        if diff is not None:
            print(f"FAIL python corpus {cf.name}: trees differ at {diff}", file=sys.stderr)
            return 1
        nbytes += cf.nbytes
    print(f"ok python corpus sample: {len(sample)} files, {nbytes} bytes, machine == generated")
    return 0


def check_disasm(root: str) -> int:
    program = compile_program(repro.compile_grammar(root).prepared)
    listing = disassemble(program)
    summary = summarize(program)
    if sum(summary["opcodes"].values()) != summary["instructions"]:
        print(f"FAIL {root}: opcode histogram does not cover the program", file=sys.stderr)
        return 1
    print(
        f"ok disasm {root}: {summary['instructions']} instructions, "
        f"{summary['productions']} productions, {len(listing.splitlines())} listing lines"
    )
    return 0


def main() -> int:
    status = 0
    status |= check_seeded("jay.Jay", [generate_jay_program(size=14, seed=s) for s in (11, 22, 33)])
    status |= check_seeded("xc.XC", [generate_c_program(size=12, seed=s) for s in (44, 55)])
    status |= check_python_sample()
    status |= check_disasm("jay.Jay")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
