"""Record the benchmark trajectory into a versioned JSON file.

``make bench-record`` (or ``PYTHONPATH=src python scripts/bench_record.py``)
runs the E5 throughput measurement (generated parser and parsing machine,
all optimizations, per-grammar seeded corpora), the E3 cumulative
optimization ladder on the Jay corpus, the E11 real-Python corpus
throughput (every backend over ``examples/python/``), and the E12
incremental-reparse ratio (warm edit reparse vs cold parse, both
incremental backends, Jay and real-Python buffers), and *appends* one
record to ``BENCH_5.json``.  ``--backends`` restricts which backends the
E5/E11 sections measure (e.g. ``--backends vm`` for a machine-only
record).  Each record
carries enough provenance (machine, Python, options fingerprint, pipeline
version) that later PRs can diff performance against earlier ones instead
of re-deriving a baseline.  See docs/testing.md for the format.

The measured corpora are seeded and fixed-size, matching the fixtures in
``benchmarks/conftest.py`` where one exists, so numbers are comparable
across runs on the same machine.
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.codegen import generate_parser_source, load_parser
from repro.difftest.generator import SentenceGenerator
from repro.optim import Options, prepare
from repro.optim.pipeline import PIPELINE_VERSION
from repro.workloads import (
    generate_c_program,
    generate_jay_program,
    generate_json_document,
    load_corpus,
    python_layout,
)
from repro.workloads.pycorpus import ALLOWLIST

#: Bump when the record layout changes.
SCHEMA_VERSION = 1

#: Backends the E5/E11 sections can measure; ``--backends`` selects a subset.
E5_BACKENDS = ("generated", "vm")
E11_BACKENDS = ("interpreter", "closures", "generated", "vm")

#: Grammars measured by the E5 record, with their seeded corpora.
def _sentences(root: str, count: int, seed: int) -> list[str]:
    """``count`` seeded *valid* sentences of ``root`` (derivation candidates
    that the reference parser rejects are skipped, as in the fuzz harness)."""
    grammar = repro.load_grammar(root)
    prepared = prepare(grammar, Options.none(), check=False)
    generator = SentenceGenerator(prepared.grammar, random.Random(seed), max_length=600)
    language = repro.compile_grammar(grammar, cache=False)
    sentences: list[str] = []
    attempts = 0
    while len(sentences) < count and attempts < count * 20:
        attempts += 1
        sentence = generator.generate()
        if language.recognize(sentence):
            sentences.append(sentence)
    if len(sentences) < count:
        raise RuntimeError(f"{root}: only {len(sentences)}/{count} valid sentences")
    return sentences


def corpora() -> dict[str, list[str]]:
    return {
        "calc.Calculator": _sentences("calc.Calculator", 120, 7),
        "json.Json": [generate_json_document(size=150, seed=s) for s in (66, 77)],
        "jay.Jay": [generate_jay_program(size=14, seed=s) for s in (11, 22, 33)],
        "xc.XC": [generate_c_program(size=12, seed=s) for s in (44, 55)],
        "ml.ML": _sentences("ml.ML", 120, 9),
    }


def _compiled(grammar, options: Options):
    prepared = prepare(grammar, options)
    return load_parser(generate_parser_source(prepared))


def _best_of(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_e5(repeat: int, backends: tuple[str, ...] = E5_BACKENDS) -> dict[str, dict]:
    """Per-grammar chars/sec of the selected backends over the optimized
    grammar.  The generated parser keeps its historical top-level keys
    (``seconds``/``chars_per_sec``); other backends land under
    ``backends.<name>`` so earlier records diff cleanly."""
    results: dict[str, dict] = {}
    for root, corpus in corpora().items():
        grammar = repro.load_grammar(root)
        prepared = prepare(grammar, Options.all())
        chars = sum(len(text) for text in corpus)
        entry: dict = {"inputs": len(corpus), "chars": chars}
        if "generated" in backends:
            parser_cls = load_parser(generate_parser_source(prepared))
            for text in corpus:  # correctness before timing
                parser_cls(text).parse()
            seconds = _best_of(lambda: [parser_cls(t).parse() for t in corpus], repeat)
            entry["seconds"] = round(seconds, 6)
            entry["chars_per_sec"] = round(chars / seconds)
        if "vm" in backends:
            from repro.vm import VMParser, compile_program

            vm = VMParser(compile_program(prepared))
            for text in corpus:
                vm.reset(text).parse()
            seconds = _best_of(lambda: [vm.reset(t).parse() for t in corpus], repeat)
            entry.setdefault("backends", {})["vm"] = {
                "seconds": round(seconds, 6),
                "chars_per_sec": round(chars / seconds),
            }
        results[root] = entry
    return results


def measure_e3(repeat: int) -> dict[str, int]:
    """Chars/sec at every rung of the cumulative ladder (Jay corpus)."""
    corpus = [generate_jay_program(size=14, seed=s) for s in (11, 22, 33)]
    chars = sum(len(text) for text in corpus)
    grammar = repro.load_grammar("jay.Jay")
    ladder: dict[str, int] = {}
    for label, options in Options.cumulative():
        parser_cls = _compiled(grammar, options)
        seconds = _best_of(lambda: [parser_cls(t).parse() for t in corpus], repeat)
        ladder[label] = round(chars / seconds)
    return ladder


def measure_e11(repeat: int, backends: tuple[str, ...] = E11_BACKENDS) -> dict[str, dict]:
    """Real-Python corpus bytes/sec per backend (layout pre-pass included)."""
    from repro.interp import PackratInterpreter
    from repro.interp.closures import ClosureParser
    from repro.optim import prepare as optim_prepare

    sys.setrecursionlimit(100_000)  # the interpreter is stack-hungry
    files, _ = load_corpus()
    texts = [cf.text for cf in files if cf.name not in ALLOWLIST]
    nbytes = sum(cf.nbytes for cf in files if cf.name not in ALLOWLIST)

    grammar = repro.load_grammar("python.Python")
    full = optim_prepare(grammar, Options.all(), check=False)
    language = repro.compile_grammar(grammar)
    available = {
        "interpreter": lambda: PackratInterpreter(full.grammar, chunked=True).parse,
        "closures": lambda: ClosureParser(full.grammar, chunked=True).parse,
        "vm": lambda: language.session(backend="vm").parse,
        "generated": lambda: language.session().parse,
    }
    measured = {name: make() for name, make in available.items() if name in backends}
    results: dict[str, dict] = {}
    for name, parse in measured.items():
        seconds = _best_of(
            lambda parse=parse: [parse(python_layout(t)) for t in texts],
            repeat if name != "interpreter" else 1,
        )
        results[name] = {
            "files": len(texts),
            "bytes": nbytes,
            "seconds": round(seconds, 6),
            "bytes_per_sec": round(nbytes / seconds),
        }
    return results


#: Incremental backends the E12 section measures.
E12_BACKENDS = ("vm", "closures")


def measure_e12(edits: int = 8) -> dict[str, dict]:
    """Warm-vs-cold reparse ratio per incremental backend (see benchmark
    E12): a seeded identifier-rename script over a Jay program and a
    layouted real-Python stdlib source; ``speedup`` is total cold seconds
    over total warm seconds for the whole script."""
    from repro.workloads.pyedits import corpus_texts, rename_edits

    buffers = {
        "jay.Jay": (
            repro.compile_grammar("jay.Jay"),
            generate_jay_program(size=14, seed=11),
        ),
    }
    python_corpus = corpus_texts(limit=1, max_chars=40_000)
    if python_corpus:
        [(name, text)] = python_corpus
        buffers[f"python.Python ({name})"] = (repro.compile_grammar("python.Python"), text)

    results: dict[str, dict] = {}
    for key, (language, text) in buffers.items():
        entry: dict = {"chars": len(text), "edits": edits, "backends": {}}
        for backend in E12_BACKENDS:
            warm = language.incremental(backend=backend)
            warm.set_text(text)
            warm.parse()
            cold = language.incremental(backend=backend)
            current = text
            warm_s = cold_s = 0.0
            for edit in rename_edits(text, random.Random(5), edits):
                warm.apply_edit(edit.offset, edit.removed, edit.inserted)
                current = edit.apply(current)
                start = time.perf_counter()
                warm.parse()
                warm_s += time.perf_counter() - start
                cold.set_text(current)
                start = time.perf_counter()
                cold.parse()
                cold_s += time.perf_counter() - start
            entry["backends"][backend] = {
                "warm_seconds": round(warm_s, 6),
                "cold_seconds": round(cold_s, 6),
                "speedup": round(cold_s / warm_s, 2),
            }
        results[key] = entry
    return results


def build_record(label: str, repeat: int, backends: tuple[str, ...] | None = None) -> dict:
    e5_backends = tuple(b for b in E5_BACKENDS if backends is None or b in backends)
    e11_backends = tuple(b for b in E11_BACKENDS if backends is None or b in backends)
    return {
        "label": label,
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "machine": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "options": Options.all().cache_key(),
        "pipeline_version": PIPELINE_VERSION,
        "e5": measure_e5(repeat, e5_backends),
        "e3_cumulative": measure_e3(repeat),
        "e11_python_corpus": measure_e11(repeat, e11_backends),
        "e12_incremental": measure_e12(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_record", description="Append a benchmark record to BENCH_5.json."
    )
    parser.add_argument("--label", default="run", help="record label (e.g. a PR name)")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_5.json"),
        help="record file to append to",
    )
    parser.add_argument("--repeat", type=int, default=3, help="best-of-N timing")
    parser.add_argument(
        "--backends", metavar="NAME[,NAME…]",
        help="restrict the E5/E11 sections to a backend subset "
        f"(known: {', '.join(sorted(set(E5_BACKENDS) | set(E11_BACKENDS)))})",
    )
    args = parser.parse_args(argv)

    backends = None
    if args.backends:
        backends = tuple(t.strip() for t in args.backends.split(",") if t.strip())
        known = set(E5_BACKENDS) | set(E11_BACKENDS)
        unknown = [t for t in backends if t not in known]
        if unknown:
            print(f"error: unknown backend(s) {unknown}; known: {sorted(known)}", file=sys.stderr)
            return 1

    record = build_record(args.label, args.repeat, backends)

    output = Path(args.output)
    if output.exists():
        data = json.loads(output.read_text())
        if data.get("schema") != SCHEMA_VERSION:
            print(
                f"error: {output} has schema {data.get('schema')}, "
                f"expected {SCHEMA_VERSION}",
                file=sys.stderr,
            )
            return 1
    else:
        data = {"schema": SCHEMA_VERSION, "records": []}
    data["records"].append(record)
    output.write_text(json.dumps(data, indent=2, sort_keys=False) + "\n")

    print(f"recorded {args.label!r} -> {output}")
    for root, row in record["e5"].items():
        if "chars_per_sec" in row:
            print(f"  {root}: {row['chars_per_sec']:,} chars/s ({row['chars']} chars)")
        for backend, sub in row.get("backends", {}).items():
            print(f"  {root}/{backend}: {sub['chars_per_sec']:,} chars/s")
    for backend, row in record["e11_python_corpus"].items():
        print(
            f"  python-corpus/{backend}: {row['bytes_per_sec']:,} bytes/s "
            f"({row['files']} files)"
        )
    for key, row in record.get("e12_incremental", {}).items():
        for backend, sub in row["backends"].items():
            print(
                f"  incremental/{key}/{backend}: {sub['speedup']}x warm-vs-cold "
                f"({row['edits']} edits over {row['chars']} chars)"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
