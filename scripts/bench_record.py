"""Record the benchmark trajectory into a versioned JSON file.

``make bench-record`` (or ``PYTHONPATH=src python scripts/bench_record.py``)
runs the E5 throughput measurement (generated parser, all optimizations,
per-grammar seeded corpora), the E3 cumulative optimization ladder on
the Jay corpus, and the E11 real-Python corpus throughput (all three
backends over ``examples/python/``), and *appends* one record to
``BENCH_5.json``.  Each record
carries enough provenance (machine, Python, options fingerprint, pipeline
version) that later PRs can diff performance against earlier ones instead
of re-deriving a baseline.  See docs/testing.md for the format.

The measured corpora are seeded and fixed-size, matching the fixtures in
``benchmarks/conftest.py`` where one exists, so numbers are comparable
across runs on the same machine.
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.codegen import generate_parser_source, load_parser
from repro.difftest.generator import SentenceGenerator
from repro.optim import Options, prepare
from repro.optim.pipeline import PIPELINE_VERSION
from repro.workloads import (
    generate_c_program,
    generate_jay_program,
    generate_json_document,
    load_corpus,
    python_layout,
)
from repro.workloads.pycorpus import ALLOWLIST

#: Bump when the record layout changes.
SCHEMA_VERSION = 1

#: Grammars measured by the E5 record, with their seeded corpora.
def _sentences(root: str, count: int, seed: int) -> list[str]:
    """``count`` seeded *valid* sentences of ``root`` (derivation candidates
    that the reference parser rejects are skipped, as in the fuzz harness)."""
    grammar = repro.load_grammar(root)
    prepared = prepare(grammar, Options.none(), check=False)
    generator = SentenceGenerator(prepared.grammar, random.Random(seed), max_length=600)
    language = repro.compile_grammar(grammar, cache=False)
    sentences: list[str] = []
    attempts = 0
    while len(sentences) < count and attempts < count * 20:
        attempts += 1
        sentence = generator.generate()
        if language.recognize(sentence):
            sentences.append(sentence)
    if len(sentences) < count:
        raise RuntimeError(f"{root}: only {len(sentences)}/{count} valid sentences")
    return sentences


def corpora() -> dict[str, list[str]]:
    return {
        "calc.Calculator": _sentences("calc.Calculator", 120, 7),
        "json.Json": [generate_json_document(size=150, seed=s) for s in (66, 77)],
        "jay.Jay": [generate_jay_program(size=14, seed=s) for s in (11, 22, 33)],
        "xc.XC": [generate_c_program(size=12, seed=s) for s in (44, 55)],
        "ml.ML": _sentences("ml.ML", 120, 9),
    }


def _compiled(grammar, options: Options):
    prepared = prepare(grammar, options)
    return load_parser(generate_parser_source(prepared))


def _best_of(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_e5(repeat: int) -> dict[str, dict]:
    """Per-grammar chars/sec of the fully optimized generated parser."""
    results: dict[str, dict] = {}
    for root, corpus in corpora().items():
        grammar = repro.load_grammar(root)
        parser_cls = _compiled(grammar, Options.all())
        for text in corpus:  # correctness before timing
            parser_cls(text).parse()
        chars = sum(len(text) for text in corpus)
        seconds = _best_of(lambda: [parser_cls(t).parse() for t in corpus], repeat)
        results[root] = {
            "inputs": len(corpus),
            "chars": chars,
            "seconds": round(seconds, 6),
            "chars_per_sec": round(chars / seconds),
        }
    return results


def measure_e3(repeat: int) -> dict[str, int]:
    """Chars/sec at every rung of the cumulative ladder (Jay corpus)."""
    corpus = [generate_jay_program(size=14, seed=s) for s in (11, 22, 33)]
    chars = sum(len(text) for text in corpus)
    grammar = repro.load_grammar("jay.Jay")
    ladder: dict[str, int] = {}
    for label, options in Options.cumulative():
        parser_cls = _compiled(grammar, options)
        seconds = _best_of(lambda: [parser_cls(t).parse() for t in corpus], repeat)
        ladder[label] = round(chars / seconds)
    return ladder


def measure_e11(repeat: int) -> dict[str, dict]:
    """Real-Python corpus bytes/sec per backend (layout pre-pass included)."""
    from repro.interp import PackratInterpreter
    from repro.interp.closures import ClosureParser
    from repro.optim import prepare as optim_prepare

    sys.setrecursionlimit(100_000)  # the interpreter is stack-hungry
    files, _ = load_corpus()
    texts = [cf.text for cf in files if cf.name not in ALLOWLIST]
    nbytes = sum(cf.nbytes for cf in files if cf.name not in ALLOWLIST)

    grammar = repro.load_grammar("python.Python")
    full = optim_prepare(grammar, Options.all(), check=False)
    session = repro.compile_grammar(grammar).session()
    backends = {
        "interpreter": PackratInterpreter(full.grammar, chunked=True).parse,
        "closures": ClosureParser(full.grammar, chunked=True).parse,
        "generated": session.parse,
    }
    results: dict[str, dict] = {}
    for name, parse in backends.items():
        seconds = _best_of(
            lambda parse=parse: [parse(python_layout(t)) for t in texts],
            repeat if name != "interpreter" else 1,
        )
        results[name] = {
            "files": len(texts),
            "bytes": nbytes,
            "seconds": round(seconds, 6),
            "bytes_per_sec": round(nbytes / seconds),
        }
    return results


def build_record(label: str, repeat: int) -> dict:
    return {
        "label": label,
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "machine": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "options": Options.all().cache_key(),
        "pipeline_version": PIPELINE_VERSION,
        "e5": measure_e5(repeat),
        "e3_cumulative": measure_e3(repeat),
        "e11_python_corpus": measure_e11(repeat),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_record", description="Append a benchmark record to BENCH_5.json."
    )
    parser.add_argument("--label", default="run", help="record label (e.g. a PR name)")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_5.json"),
        help="record file to append to",
    )
    parser.add_argument("--repeat", type=int, default=3, help="best-of-N timing")
    args = parser.parse_args(argv)

    record = build_record(args.label, args.repeat)

    output = Path(args.output)
    if output.exists():
        data = json.loads(output.read_text())
        if data.get("schema") != SCHEMA_VERSION:
            print(
                f"error: {output} has schema {data.get('schema')}, "
                f"expected {SCHEMA_VERSION}",
                file=sys.stderr,
            )
            return 1
    else:
        data = {"schema": SCHEMA_VERSION, "records": []}
    data["records"].append(record)
    output.write_text(json.dumps(data, indent=2, sort_keys=False) + "\n")

    print(f"recorded {args.label!r} -> {output}")
    for root, row in record["e5"].items():
        print(f"  {root}: {row['chars_per_sec']:,} chars/s ({row['chars']} chars)")
    for backend, row in record["e11_python_corpus"].items():
        print(
            f"  python-corpus/{backend}: {row['bytes_per_sec']:,} bytes/s "
            f"({row['files']} files)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
